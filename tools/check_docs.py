#!/usr/bin/env python3
"""Docs lint for CI: anchors, relative links, and module docstrings.

Checks, with no dependencies beyond the standard library:

* every internal anchor link (``[...](#heading)``) in
  ``docs/ARCHITECTURE.md`` resolves to a real heading (GitHub slug
  rules: lowercase, punctuation stripped, spaces to dashes, duplicate
  slugs suffixed ``-1``, ``-2``, ...);
* every relative file link in the checked markdown files points at an
  existing file;
* every module under ``src/repro/transport/`` has a non-empty module
  docstring (the transport layer is the subsystem the architecture doc
  narrates, so its modules must be self-describing).

Exit status 0 when clean, 1 with one ``ERROR:`` line per finding —
suitable both for the CI docs job and for ``tests/test_docs.py``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Markdown files whose anchors and relative links are verified.
CHECKED_DOCS = ("docs/ARCHITECTURE.md", "README.md", "benchmarks/README.md")

#: Sections the architecture doc must keep (each is the written contract
#: for one subsystem the code references by name); listed as the heading
#: text, checked as its GitHub anchor slug.
REQUIRED_ARCHITECTURE_HEADINGS = (
    "The SupplySchedule contract",
    "Horizon semantics",
    "Slot economy: reserved slots and pairing",
    "Pattern replication",
    "Cruise mode & induction",
    "Macro-cruise fast-forward",
    "Sharded execution & time sync",
    "Boundary wire format & shared-memory rings",
    "Observability & tracing",
    "Invariants the test suite pins",
)

#: Glob of modules that must carry a non-empty module docstring.
DOCSTRING_GLOB = "src/repro/transport/*.py"


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading text."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_anchors(text: str) -> set[str]:
    """All anchor slugs defined by the headings of ``text``."""
    counts: dict[str, int] = {}
    anchors: set[str] = set()
    for match in re.finditer(r"^#{1,6}\s+(.+?)\s*$", text, re.MULTILINE):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def check_markdown(path: Path) -> list[str]:
    """Broken internal anchors and relative links in one markdown file."""
    errors = []
    text = path.read_text(encoding="utf-8")
    anchors = markdown_anchors(text)
    try:
        rel = path.relative_to(ROOT)
    except ValueError:  # files outside the repo (tests use tmp dirs)
        rel = path
    for match in re.finditer(r"\]\(#([^)]+)\)", text):
        if match.group(1) not in anchors:
            errors.append(f"{rel}: broken internal anchor #{match.group(1)}")
    for match in re.finditer(r"\]\((?!#|https?://|mailto:)([^)#\s]+)(?:#[^)]*)?\)",
                             text):
        target = (path.parent / match.group(1)).resolve()
        if not target.exists():
            errors.append(f"{rel}: broken relative link {match.group(1)}")
    return errors


def check_docstrings(glob: str = DOCSTRING_GLOB) -> list[str]:
    """Modules matching ``glob`` that lack a non-empty module docstring."""
    errors = []
    paths = sorted(ROOT.glob(glob))
    if not paths:
        errors.append(f"docstring check matched no files: {glob}")
    for path in paths:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        doc = ast.get_docstring(tree)
        if not doc or not doc.strip():
            errors.append(
                f"{path.relative_to(ROOT)}: missing module docstring"
            )
    return errors


def check_required_anchors(path: Path) -> list[str]:
    """Required architecture sections missing from ``path``."""
    if not path.exists():
        return []  # the file-missing error is reported elsewhere
    anchors = markdown_anchors(path.read_text(encoding="utf-8"))
    try:
        rel = path.relative_to(ROOT)
    except ValueError:  # pragma: no cover - tests use tmp dirs
        rel = path
    return [
        f"{rel}: required section missing: {heading!r}"
        for heading in REQUIRED_ARCHITECTURE_HEADINGS
        if github_slug(heading) not in anchors
    ]


def run_checks() -> list[str]:
    """All findings across docs and docstrings (empty when clean)."""
    errors = []
    for name in CHECKED_DOCS:
        path = ROOT / name
        if not path.exists():
            errors.append(f"{name}: file missing")
        else:
            errors.extend(check_markdown(path))
    errors.extend(check_required_anchors(ROOT / "docs/ARCHITECTURE.md"))
    errors.extend(check_docstrings())
    return errors


def main() -> int:
    errors = run_checks()
    for error in errors:
        print(f"ERROR: {error}", file=sys.stderr)
    checked = ", ".join(CHECKED_DOCS)
    n_mods = len(list(ROOT.glob(DOCSTRING_GLOB)))
    print(f"checked {checked} + {n_mods} transport module docstrings: "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
