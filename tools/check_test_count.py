#!/usr/bin/env python3
"""Per-CI-job test-count delta: silent collection regressions fail loudly.

A refactor that renames a module, breaks an import under one matrix leg,
or mangles a ``-k`` expression can *deselect* whole test files while the
suite still exits green. Each CI job therefore runs::

    python tools/check_test_count.py JOB [pytest selection args...]

before its real pytest invocation. The tool collects (``--collect-only``)
with exactly the job's selection, compares the count against the
committed baseline in ``tools/test_counts.json``, and prints the delta.
Any mismatch fails: a shrink is the regression this guards against, and
a growth must be acknowledged by re-running with ``--update`` and
committing the new baseline alongside the tests that moved it.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

BASELINE = Path(__file__).resolve().parent / "test_counts.json"

#: Canonical pytest selection per CI job — the same argument vectors the
#: workflow passes on the command line (kept in sync with
#: ``.github/workflows/ci.yml``). ``tools/update_test_counts.py`` uses
#: this map to refresh every baseline in one invocation.
JOBS: dict[str, list[str]] = {
    "tier1": ["-m", "not slow"],
    "slow": ["-m", "slow"],
    "shard-shm": ["tests/test_shard.py", "tests/test_shard_wire.py",
                  "tests/test_burst_fuzz.py", "-m", "not slow",
                  "-k", "not (shm or pipe) or shm"],
    "shard-pipe": ["tests/test_shard.py", "tests/test_shard_wire.py",
                   "tests/test_burst_fuzz.py", "-m", "not slow",
                   "-k", "not (shm or pipe) or pipe"],
}


def collect_count(pytest_args: list[str]) -> int:
    """Number of tests pytest selects for this argument vector."""
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "--collect-only", "-q",
         *pytest_args],
        capture_output=True,
        text=True,
    )
    # 5 = no tests collected (a valid, loudly-failing count of 0);
    # anything else non-zero is a collection error worth surfacing.
    if proc.returncode not in (0, 5):
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"ERROR: pytest collection failed "
                         f"(exit {proc.returncode})")
    m = re.search(r"(\d+)(?:/\d+)? tests? collected", proc.stdout)
    if m is None:
        m = re.search(r"no tests collected", proc.stdout)
        if m is not None:
            return 0
        sys.stderr.write(proc.stdout)
        raise SystemExit("ERROR: could not parse pytest collection summary")
    return int(m.group(1))


def main(argv: list[str]) -> int:
    update = "--update" in argv
    argv = [a for a in argv if a != "--update"]
    if not argv:
        raise SystemExit(
            "usage: check_test_count.py [--update] JOB [pytest args...]")
    job, pytest_args = argv[0], argv[1:]
    counts = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    got = collect_count(pytest_args)
    want = counts.get(job)
    if update:
        counts[job] = got
        BASELINE.write_text(json.dumps(counts, indent=2, sort_keys=True)
                            + "\n")
        print(f"{job}: baseline set to {got}")
        return 0
    update_cmd = (f"python tools/update_test_counts.py {job}"
                  if job in JOBS else
                  "python tools/check_test_count.py --update "
                  + " ".join([job, *pytest_args]))
    if want is None:
        print(f"ERROR: no baseline for job {job!r} in {BASELINE.name}; "
              f"collected {got}. Record it (and commit the result) "
              f"with:\n    {update_cmd}")
        return 1
    delta = got - want
    print(f"{job}: collected {got}, baseline {want} (delta {delta:+d})")
    if delta == 0:
        return 0
    verb = "lost" if delta < 0 else "gained"
    print(f"ERROR: {job} {verb} {abs(delta)} collected test(s). "
          f"If intentional, update the baseline (and commit "
          f"{BASELINE.name}) with:\n    {update_cmd}")
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
