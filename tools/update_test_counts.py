#!/usr/bin/env python3
"""Refresh the committed test-count baselines in one invocation.

``tools/check_test_count.py`` fails any CI job whose collected test
count drifts from ``tools/test_counts.json`` — intentional test growth
therefore has to land with an updated baseline. This helper makes that
a one-liner::

    python tools/update_test_counts.py            # every job
    python tools/update_test_counts.py tier1 slow # a subset

It re-collects each job with the canonical selection from
``check_test_count.JOBS`` (the same argument vectors CI passes),
rewrites the baseline file, and prints the per-job deltas so the diff
that lands in review is self-explanatory. Run it with ``PYTHONPATH=src``
from the repository root, exactly like the test suite.
"""

from __future__ import annotations

import json
import sys

from check_test_count import BASELINE, JOBS, collect_count


def main(argv: list[str]) -> int:
    jobs = argv or list(JOBS)
    unknown = [j for j in jobs if j not in JOBS]
    if unknown:
        raise SystemExit(
            f"unknown job(s) {unknown}; known: {', '.join(JOBS)}")
    counts = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
    for job in jobs:
        got = collect_count(JOBS[job])
        old = counts.get(job)
        delta = "" if old is None else f" (was {old}, delta {got - old:+d})"
        counts[job] = got
        print(f"{job}: {got}{delta}")
    BASELINE.write_text(json.dumps(counts, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
