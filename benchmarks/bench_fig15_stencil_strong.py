"""Fig. 15 — stencil strong scaling (4096^2 grid, 32 iterations).

Five configurations: {1, 4} memory banks x {1, 4, 8} FPGAs. Paper results:
1.0x (254 ms), 3.5x (72 ms), 3.5x (72 ms), 12.3x (20 ms), 23.1x (11 ms).
Regenerated from the calibrated flow model; functional correctness of the
SPMD halo exchange is validated on the cycle simulator at a reduced grid.
"""

import numpy as np
import pytest

from repro.apps.stencil import (
    FIG15_POINTS,
    StencilModel,
    jacobi_reference,
    run_distributed_sim,
)
from repro.harness import Comparison, paperdata
from repro.network.topology import torus2d

GRID = 4096
ITERS = 32


def build_fig15_report() -> Comparison:
    model = StencilModel()
    cmp = Comparison("Fig. 15: stencil strong scaling (4096^2, 32 iters)",
                     unit="ms")
    base = model.time_s(GRID, GRID, ITERS, 1, 1, (1, 1))
    for p in FIG15_POINTS:
        t = model.time_s(GRID, GRID, ITERS, p.banks, p.num_fpgas, p.rank_grid)
        paper = paperdata.FIG15_STRONG_SCALING[p.label]
        cmp.add(f"{p.label} time", paper["time_ms"], round(t * 1e3, 1))
        cmp.add(f"{p.label} speedup", paper["speedup"], round(base / t, 2))
    return cmp


def test_fig15_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_fig15_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    for label, paper, measured, _ in cmp.rows:
        assert measured == pytest.approx(paper, rel=0.12), label


def test_fig15_key_shape_claims(benchmark):
    model = benchmark.pedantic(StencilModel, rounds=1, iterations=1)
    base = model.time_s(GRID, GRID, ITERS, 1, 1, (1, 1))
    t_4banks = model.time_s(GRID, GRID, ITERS, 4, 1, (1, 1))
    t_4fpgas = model.time_s(GRID, GRID, ITERS, 1, 4, (2, 2))
    t_both = model.time_s(GRID, GRID, ITERS, 4, 4, (2, 2))
    # "both show a nearly identical speedup of 3.5x, demonstrating that
    # communication and computation is fully overlapped".
    assert t_4fpgas == pytest.approx(t_4banks, rel=0.06)
    # "we get the exact product 3.5 * 3.5 = 12.3x as speedup".
    product = (base / t_4banks) * (base / t_4fpgas)
    assert base / t_both == pytest.approx(product, rel=0.1)


def test_fig15_overlap_inequality_holds_at_problem_size(benchmark):
    # §5.4.2: the halo-overlap inequality "is easily met when tackling
    # large problems".
    model = benchmark.pedantic(StencilModel, rounds=1, iterations=1)
    assert model.communication_overlapped(GRID, GRID, 4, (2, 2))
    assert model.communication_overlapped(GRID, GRID, 4, (2, 4))
    # ...and fails for absurdly small blocks, as the inequality predicts.
    assert not model.communication_overlapped(64, 64, 4, (2, 4))


def test_fig15_functional_correctness_reduced_grid(benchmark):
    rng = np.random.default_rng(5)
    grid = rng.normal(size=(32, 32)).astype(np.float32)
    out, _us = benchmark.pedantic(
        lambda: run_distributed_sim(grid, 5, (2, 2), topology=torus2d(2, 2)),
        rounds=1, iterations=1)
    ref = jacobi_reference(grid, 5)
    np.testing.assert_allclose(out.astype(np.float64), ref, atol=1e-5)


def test_bench_fig15(benchmark):
    rng = np.random.default_rng(6)
    grid = rng.normal(size=(24, 24)).astype(np.float32)

    def run():
        return run_distributed_sim(grid, 3, (2, 2), topology=torus2d(2, 2))

    out, _us = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_allclose(
        out.astype(np.float64), jacobi_reference(grid, 3), atol=1e-5
    )
