"""Ablation: routing scheme — minimal vs provably deadlock-free tree.

§4.3 routes with a deadlock-free scheme [8]; our generator verifies
minimal routing with the channel-dependency-graph check and falls back to
spanning-tree routing when the check fails. This ablation quantifies the
price of that fallback (path stretch and measured latency) on the
evaluation topologies.
"""

import pytest

from repro import NOCTUA, SMI_INT, SMIProgram, noctua_torus, ring
from repro.codegen.metadata import OpDecl
from repro.harness import format_table
from repro.network.routing import compute_routes, is_deadlock_free


def average_hops(routes) -> float:
    n = routes.topology.num_ranks
    total = sum(
        routes.hops(s, d) for s in range(n) for d in range(n) if s != d
    )
    return total / (n * (n - 1))


def measured_latency_us(topology, scheme: str, src: int, dst: int) -> float:
    prog = SMIProgram(topology, routing_scheme=scheme)
    marks: dict[str, int] = {}

    def sender(smi):
        ch = smi.open_send_channel(1, SMI_INT, dst, 0)
        yield from smi.push(ch, 1)

    def receiver(smi):
        ch = smi.open_recv_channel(1, SMI_INT, src, 0)
        yield from smi.pop(ch)
        marks["arrive"] = smi.cycle

    prog.add_kernel(sender, rank=src, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=dst, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=1_000_000)
    assert res.completed
    return NOCTUA.cycles_to_us(marks["arrive"])


def build_rows():
    rows = []
    for topology in (noctua_torus(), ring(8)):
        for scheme in ("shortest", "tree"):
            routes = compute_routes(topology, scheme)
            rows.append([
                topology.name,
                scheme,
                "yes" if is_deadlock_free(routes) else "NO",
                round(average_hops(routes), 2),
                round(measured_latency_us(topology, scheme, 0,
                                          topology.num_ranks - 1), 3),
            ])
    return rows


def test_routing_ablation_report(benchmark, capsys):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["topology", "scheme", "deadlock-free", "avg hops",
             "latency 0->last [us]"],
            rows, title="Ablation: routing scheme (minimal vs tree)"
        ))
    by_key = {(r[0], r[1]): r for r in rows}
    # Tree routing is always verified deadlock-free.
    for (topo, scheme), row in by_key.items():
        if scheme == "tree":
            assert row[2] == "yes"
    # The fallback costs path stretch on the torus.
    assert (by_key[("torus2x4", "tree")][3]
            >= by_key[("torus2x4", "shortest")][3])
    # Latency follows hop count.
    for topo in ("torus2x4", "ring8"):
        short = by_key[(topo, "shortest")]
        tree = by_key[(topo, "tree")]
        assert tree[4] >= short[4] - 0.1


def test_bench_routing_point(benchmark):
    hops = benchmark.pedantic(
        lambda: average_hops(compute_routes(noctua_torus(), "tree")),
        rounds=1, iterations=1,
    )
    assert hops >= 1.0
