"""Table 2 — collective support kernel resource consumption."""

import pytest

from repro.harness import Comparison, paperdata
from repro.resources import table2


def build_table2_report() -> Comparison:
    cmp = Comparison("Table 2: collective kernel resources", unit="count")
    measured = table2()
    for name, paper_row in paperdata.TABLE2.items():
        m = measured[name]
        for res in ("luts", "ffs", "m20ks", "dsps"):
            cmp.add(f"{name} {res}", paper_row[res], m[res])
        cmp.add(f"{name} % LUTs", paper_row["pct_luts"], round(m["pct_luts"], 2))
    return cmp


def test_table2_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_table2_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    for label, paper, measured, _ in cmp.rows:
        if "%" in label:
            assert measured == pytest.approx(paper, abs=0.06)
        else:
            assert measured == paper


def test_bench_table2(benchmark):
    result = benchmark.pedantic(table2, rounds=3, iterations=10)
    assert result["Broadcast"]["luts"] == 2560
