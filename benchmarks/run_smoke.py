"""Perf smoke runner: track simulator wall-clock and cycles over time.

Runs the bandwidth (Fig. 9) and broadcast (Fig. 10) kernels at small,
CI-friendly sizes, in both data-plane modes (``burst_mode`` on / off),
and writes ``BENCH_smoke.json`` next to this script:

* per point: simulated ``cycles`` (must be identical across modes — the
  burst fast path is required to be cycle-exact) and best-of-N
  wall-clock seconds per mode;
* per point: the burst/per-flit speedup, plus the headline speedup at
  the largest simulated message size.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.config import NOCTUA
from repro.core.datatypes import SMI_FLOAT
from repro.harness.runners import measure_bcast_sim_us, measure_stream_sim
from repro.network.topology import noctua_bus

#: Element counts for the bandwidth stream (Fig. 9 x-axis, in elements).
STREAM_SIZES = (1 << 10, 1 << 13, 1 << 15, 1 << 17)
QUICK_STREAM_SIZES = (1 << 10, 1 << 13)
#: Hop counts measured (Fig. 9 plots 1/4/7-hop series; 7 adds no new
#: scaling information over 4 for the smoke run).
STREAM_HOPS = (1, 4)

#: Element counts for the broadcast sweep (Fig. 10 x-axis).
BCAST_SIZES = (1 << 6, 1 << 9, 1 << 12)
QUICK_BCAST_SIZES = (1 << 6, 1 << 9)
BCAST_RANKS = 4


def _best_of(fn, repeats: int):
    value = None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def run_stream_points(sizes, repeats):
    points = []
    for hops in STREAM_HOPS:
        for n in sizes:
            point = {"kind": "bandwidth", "elements": int(n),
                     "bytes": int(n) * SMI_FLOAT.size, "hops": hops}
            for mode in (False, True):
                cfg = NOCTUA.with_(burst_mode=mode)
                cycles, wall = _best_of(
                    lambda: measure_stream_sim(n, hops, SMI_FLOAT, cfg),
                    repeats,
                )
                key = "burst" if mode else "flit"
                point[f"cycles_{key}"] = int(cycles)
                point[f"wall_s_{key}"] = round(wall, 4)
            point["cycle_exact"] = (
                point["cycles_burst"] == point["cycles_flit"])
            point["speedup"] = round(
                point["wall_s_flit"] / max(point["wall_s_burst"], 1e-9), 2
            )
            points.append(point)
    return points


def run_bcast_points(sizes, repeats):
    points = []
    topology = noctua_bus()
    for n in sizes:
        point = {"kind": "bcast", "elements": int(n), "ranks": BCAST_RANKS}
        for mode in (False, True):
            cfg = NOCTUA.with_(burst_mode=mode)
            us, wall = _best_of(
                lambda: measure_bcast_sim_us(n, topology, BCAST_RANKS, cfg),
                repeats,
            )
            key = "burst" if mode else "flit"
            point[f"cycles_{key}"] = int(round(us / cfg.cycles_to_us(1)))
            point[f"wall_s_{key}"] = round(wall, 4)
        point["cycle_exact"] = point["cycles_burst"] == point["cycles_flit"]
        point["speedup"] = round(
            point["wall_s_flit"] / max(point["wall_s_burst"], 1e-9), 2
        )
        points.append(point)
    return points


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, one repeat (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_smoke.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    repeats = 1 if args.quick else 3
    stream_sizes = QUICK_STREAM_SIZES if args.quick else STREAM_SIZES
    bcast_sizes = QUICK_BCAST_SIZES if args.quick else BCAST_SIZES

    points = run_stream_points(stream_sizes, repeats)
    points += run_bcast_points(bcast_sizes, repeats)

    largest_n = max(p["elements"] for p in points if p["kind"] == "bandwidth")
    headline = {
        "largest_stream_bytes": largest_n * SMI_FLOAT.size,
        "all_cycle_exact": all(p["cycle_exact"] for p in points),
    }
    for p in points:
        if p["kind"] == "bandwidth" and p["elements"] == largest_n:
            headline[f"speedup_at_largest_{p['hops']}hop"] = p["speedup"]
    report = {
        "benchmark": "smoke",
        "quick": bool(args.quick),
        "points": points,
        "headline": headline,
    }
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent / "BENCH_smoke.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")

    for p in points:
        tag = (f"hops={p['hops']}" if p["kind"] == "bandwidth"
               else f"ranks={p['ranks']}")
        print(f"{p['kind']:9s} {tag:7s} n={p['elements']:7d}  "
              f"cycles={p['cycles_burst']:9d} exact={p['cycle_exact']}  "
              f"flit={p['wall_s_flit']:.3f}s burst={p['wall_s_burst']:.3f}s "
              f"speedup={p['speedup']:.2f}x")
    print(f"headline: {report['headline']}")
    print(f"wrote {out}")
    if not report["headline"]["all_cycle_exact"]:
        print("ERROR: burst mode diverged from the per-flit reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
