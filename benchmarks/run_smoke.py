"""Perf smoke runner: track simulator wall-clock and cycles over time.

Runs the bandwidth (Fig. 9), broadcast (Fig. 10) and reduce (Fig. 11)
kernels at small, CI-friendly sizes, in both data-plane modes
(``burst_mode`` on / off), and writes ``BENCH_smoke.json`` next to this
script:

* per point: simulated ``cycles`` (must be identical across modes — the
  burst fast path is required to be cycle-exact) and best-of-N
  wall-clock seconds per mode;
* per point: the burst/per-flit speedup plus the burst planner's
  counters (window hit rate, mean committed window length, cascade
  co-plans, pattern-replication hit rate and mean train length, cruise
  induction hit rate and rounds), so the supply-schedule plane's
  effectiveness is tracked in the perf trajectory alongside raw speed;
* bandwidth points run on two buffer presets — the paper's shallow
  NOCTUA depths and the deep-buffer NOCTUA_DEEP regime, where the
  per-event information quantum spans multiple pattern rounds (trains
  exceed one round and cruise-mode induction engages);
* a macro-cruise sweep on the deep-buffer preset: the same p2p stream
  run under ordinary cruise (the per-round analytic plane) and under
  ``macro_cruise`` (the whole-program analytical fast-forward that bulk
  applies proven rounds without dispatching events), with cycle-exactness
  enforced, the wall-clock speedup recorded, and the fraction of
  simulated cycles covered by fast-forward windows attached per point;
* a tracing-overhead point: the canonical deep 1-hop stream run with
  the flight recorder off and on (``HardwareConfig.trace``), with
  cycle-exactness enforced and the wall-clock ratio recorded
  (``trace_overhead_off``, record-only); the traced arm also writes
  ``BENCH_trace_sample.json``, a Perfetto-loadable sample trace CI
  uploads as an artifact;
* a sharded-backend sweep over two workloads — the legacy 8-rank
  deep-buffer multi-stream fabric (each rank sends fully, then
  receives: its staggered drain serialises the shards) and a 16-rank
  *uniform-load stream* (concurrent send and recv kernels per rank, so
  every shard of any cut works at steady state for the whole run) —
  each run sequentially and on the sharded backend
  (``--backend``, default ``process``) at each ``--shards`` count
  (default 2 and 4), with cycle-exactness enforced, the honest
  sharded-vs-sequential wall-clock ratio recorded, and the per-shard
  wall-clock phase breakdown (compute / serialize / IPC wait) attached
  to every point;
* headline: per-hop-count speedups at the largest stream size, their
  replication/cruise rates for both buffer regimes, the deep-vs-shallow
  4-hop ratio, the collective planner hit rates, the
  sharded-vs-sequential ratios per shard count (from the uniform-load
  halo workload), the macro-cruise speedups and fast-forward coverage
  at the largest macro stream, and the analytical perfmodel's relative
  residual against the simulated cycle counts for the p2p/bcast/reduce
  kernels.

Every field is documented in ``benchmarks/README.md``.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--quick]
        [--fail-below-parity [THRESHOLD]]
        [--backend sharded|process] [--shards 2,4]

``--fail-below-parity`` exits non-zero if any burst point's speedup
drops below THRESHOLD x per-flit (default 0.85 — parity with an
allowance for timer noise on shared CI runners). Sharded points are
*record-only*: their wall-clock ratio depends on host core count and
load (a single-core or loaded CI box cannot show parallel speedup), so
the trend is tracked in the JSON instead of gated. Cycle divergence
always fails, regardless of flags.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.config import NOCTUA, NOCTUA_DEEP
from repro.core.datatypes import SMI_FLOAT
from repro.codegen.metadata import OpDecl
from repro.core.program import SMIProgram
from repro.harness.runners import (
    measure_bcast_sim_us,
    measure_reduce_sim_us,
    measure_stream_sim,
)
from repro.network.topology import noctua_bus
from repro.perfmodel import bcast_cycles, p2p_stream, reduce_cycles

#: Element counts for the bandwidth stream (Fig. 9 x-axis, in elements).
STREAM_SIZES = (1 << 10, 1 << 13, 1 << 15, 1 << 17)
QUICK_STREAM_SIZES = (1 << 10, 1 << 13)
#: Hop counts measured (Fig. 9 plots 1/4/7-hop series; 7 adds no new
#: scaling information over 4 for the smoke run).
STREAM_HOPS = (1, 4)

#: Element counts for the collective sweeps (Figs. 10-11 x-axis).
COLL_SIZES = (1 << 6, 1 << 9, 1 << 12)
QUICK_COLL_SIZES = (1 << 6, 1 << 9)
COLL_RANKS = 4

#: Buffer presets the bandwidth points sweep: the paper's shallow NOCTUA
#: depths and the deep-buffer regime where replication trains exceed one
#: round and cruise-mode induction engages. Collective points stay on
#: the shallow preset (their support kernels bound batching, not buffer
#: depth) to keep the CI run short.
BUFFER_PRESETS = (("noctua", NOCTUA), ("deep", NOCTUA_DEEP))

#: Element counts for the macro-cruise sweep. Run on the deep-buffer
#: preset only: macro-cruise is the analytical escalation of cruise-mode
#: induction, and cruise engages when the per-event information quantum
#: spans multiple pattern rounds — the deep regime. Sizes sit at and
#: above the cycle-sim/model threshold so the fast-forward covers a
#: long steady state.
MACRO_STREAM_SIZES = (1 << 16, 1 << 17)
QUICK_MACRO_STREAM_SIZES = (1 << 16,)
MACRO_STREAM_HOPS = (1, 4)

#: Per-stream element counts for the sharded-backend sweep (an 8-rank
#: deep-buffer fabric with one neighbour stream per rank pair).
SHARD_STREAM_ELEMENTS = 1 << 15
QUICK_SHARD_STREAM_ELEMENTS = 1 << 13
#: Shard counts swept by default (overridable with --shards).
SHARD_COUNTS = (2, 4)
#: Ranks in the uniform-load stream workload: 16 ranks give every shard
#: of a 2- or 4-way cut the same steady-state work, unlike the 8-rank
#: multistream whose staggered drain serialises the shards.
UNIFORM_STREAM_RANKS = 16

#: Element count for the tracing-overhead point (the canonical deep
#: 1-hop stream, run with the flight recorder off and on).
TRACE_STREAM_ELEMENTS = 1 << 15
QUICK_TRACE_STREAM_ELEMENTS = 1 << 13


def _best_of(fn, repeats: int):
    value = None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def _finish_point(point):
    point["cycle_exact"] = point["cycles_burst"] == point["cycles_flit"]
    point["speedup"] = round(
        point["wall_s_flit"] / max(point["wall_s_burst"], 1e-9), 2
    )
    return point


def run_stream_points(sizes, repeats):
    points = []
    for buffers, preset in BUFFER_PRESETS:
        for hops in STREAM_HOPS:
            for n in sizes:
                point = {"kind": "bandwidth", "elements": int(n),
                         "bytes": int(n) * SMI_FLOAT.size, "hops": hops,
                         "buffers": buffers, "backend": "sequential",
                         "shards": 1}
                for mode in (False, True):
                    cfg = preset.with_(burst_mode=mode)
                    stats: dict = {}
                    cycles, wall = _best_of(
                        lambda: measure_stream_sim(n, hops, SMI_FLOAT, cfg,
                                                   planner_stats=stats),
                        repeats,
                    )
                    key = "burst" if mode else "flit"
                    point[f"cycles_{key}"] = int(cycles)
                    point[f"wall_s_{key}"] = round(wall, 4)
                    if mode:
                        point["planner"] = stats
                points.append(_finish_point(point))
    return points


def run_collective_points(sizes, repeats):
    points = []
    topology = noctua_bus()
    for kind, measure in (("bcast", measure_bcast_sim_us),
                          ("reduce", measure_reduce_sim_us)):
        for n in sizes:
            point = {"kind": kind, "elements": int(n), "ranks": COLL_RANKS,
                     "backend": "sequential", "shards": 1}
            for mode in (False, True):
                cfg = NOCTUA.with_(burst_mode=mode)
                stats: dict = {}
                us, wall = _best_of(
                    lambda: measure(n, topology, COLL_RANKS, cfg,
                                    planner_stats=stats),
                    repeats,
                )
                key = "burst" if mode else "flit"
                point[f"cycles_{key}"] = int(round(us / cfg.cycles_to_us(1)))
                point[f"wall_s_{key}"] = round(wall, 4)
                if mode:
                    point["planner"] = stats
            points.append(_finish_point(point))
    return points


def run_macro_points(sizes, repeats, hops_list=MACRO_STREAM_HOPS):
    """Macro-cruise vs ordinary cruise on the deep-buffer p2p stream.

    Both arms run the full cruise gate chain (burst mode, pattern
    replication, cruise induction); the macro arm additionally enables
    ``macro_cruise``, the whole-program analytical fast-forward. The
    fast plane must stay cycle-exact; ``ff_coverage`` records the
    fraction of simulated time it bulk-applied without dispatch.
    """
    points = []
    cruise_cfg = NOCTUA_DEEP
    macro_cfg = NOCTUA_DEEP.with_(macro_cruise=True)
    for hops in hops_list:
        for n in sizes:
            point = {"kind": "macro_stream", "elements": int(n),
                     "bytes": int(n) * SMI_FLOAT.size, "hops": hops,
                     "buffers": "deep", "backend": "sequential",
                     "shards": 1}
            cycles_cruise, wall_cruise = _best_of(
                lambda: measure_stream_sim(n, hops, SMI_FLOAT, cruise_cfg),
                repeats,
            )
            stats: dict = {}
            cycles_macro, wall_macro = _best_of(
                lambda: measure_stream_sim(n, hops, SMI_FLOAT, macro_cfg,
                                           planner_stats=stats),
                repeats,
            )
            point["cycles_cruise"] = int(cycles_cruise)
            point["cycles_macro"] = int(cycles_macro)
            point["cycle_exact"] = cycles_cruise == cycles_macro
            point["wall_s_cruise"] = round(wall_cruise, 4)
            point["wall_s_macro"] = round(wall_macro, 4)
            point["speedup"] = round(
                wall_cruise / max(wall_macro, 1e-9), 2)
            point["planner"] = stats
            point["ff_coverage"] = round(
                stats["ff_cycles"] / max(int(cycles_macro), 1), 4)
            point["macro_chain_len"] = stats.get("mean_ff_chain_len", 0.0)
            points.append(point)
    return points


def run_trace_points(n, repeats, sample_out=None):
    """Flight-recorder cost on the canonical deep 1-hop stream.

    Runs the same stream with tracing off and on.
    ``trace_overhead_off`` is ``wall_s_off / wall_s_on`` — how much
    faster the untraced run is (record-only: the zero-overhead-off
    *cycle* contract is what the equivalence suites gate; this tracks
    the wall-clock cost of turning the recorder on). Cycle counts must
    be identical either way. When ``sample_out`` is given, the traced
    arm also writes its merged Perfetto trace there (the CI artifact).
    """
    import os

    off_cfg = NOCTUA_DEEP
    on_cfg = NOCTUA_DEEP.with_(trace=True)
    cycles_off, wall_off = _best_of(
        lambda: measure_stream_sim(n, 1, SMI_FLOAT, off_cfg), repeats)
    if sample_out is not None:
        os.environ["REPRO_TRACE_OUT"] = str(sample_out)
    try:
        cycles_on, wall_on = _best_of(
            lambda: measure_stream_sim(n, 1, SMI_FLOAT, on_cfg), repeats)
    finally:
        if sample_out is not None:
            os.environ.pop("REPRO_TRACE_OUT", None)
    return [{
        "kind": "trace_stream", "elements": int(n), "hops": 1,
        "buffers": "deep", "backend": "sequential", "shards": 1,
        "cycles_off": int(cycles_off), "cycles_on": int(cycles_on),
        "cycle_exact": cycles_off == cycles_on,
        "wall_s_off": round(wall_off, 4),
        "wall_s_on": round(wall_on, 4),
        "trace_overhead_off": round(wall_off / max(wall_on, 1e-9), 4),
    }]


def _collect_run_stats(res, planner_stats, timing, ends):
    """Fill the out-params shared by the shard-sweep workloads."""
    from repro.simulation.stats import collect_planner_stats

    if planner_stats is not None:
        stats = collect_planner_stats(res.transport)
        planner_stats.update(
            windows=stats.windows, takes=stats.takes,
            hit_rate=round(stats.hit_rate, 4),
            mean_window=round(stats.mean_window, 2),
            coplans=stats.coplans, replications=stats.replications,
            replicated_rounds=stats.replicated_rounds,
            mean_train_rounds=round(stats.mean_train_rounds, 2),
            cruise_rounds=stats.cruise_rounds,
        )
    if timing is not None:
        # Keep the last repeat's breakdown (the timed runs overwrite).
        timing[:] = list(getattr(res.transport, "shard_timing", []))
    return max(ends)


def measure_multistream_cycles(n, config, planner_stats=None,
                               num_ranks=8, timing=None):
    """One neighbour stream per rank pair over a ``num_ranks``-rank bus.

    Every rank both sends and receives (rank 0 sends only, the last
    rank receives only) — but within one kernel, in sequence: each rank
    finishes its send before it starts draining its receive, so the
    pipeline drains in a stagger that leaves earlier shards idle while
    later ones finish. Kept as the adversarial (serialising) workload
    of the sharded-backend sweep; ``measure_uniform_stream_cycles`` is
    the uniform-load counterpart. Returns the global end cycle (max
    per-rank finish). Results flow through ``smi.store`` so the
    workload runs identically under the process backend.
    """
    import numpy as np

    from repro.network.topology import bus

    topology = noctua_bus() if num_ranks == 8 else bus(num_ranks)
    prog = SMIProgram(topology, config=config)
    data = np.zeros(n, dtype=np.float32)

    def kernel(smi):
        if smi.rank < num_ranks - 1:
            snd = smi.open_send_channel(n, SMI_FLOAT, smi.rank + 1, 0)
            yield from snd.push_vec(data, width=8)
        if smi.rank > 0:
            rcv = smi.open_recv_channel(n, SMI_FLOAT, smi.rank - 1, 0)
            yield from rcv.pop_vec(n, width=8)
        smi.store("end", smi.cycle)

    for rank in range(num_ranks):
        ops = []
        if rank < num_ranks - 1:
            ops.append(OpDecl("send", 0, SMI_FLOAT, peer=rank + 1))
        if rank > 0:
            ops.append(OpDecl("recv", 0, SMI_FLOAT, peer=rank - 1))
        prog.add_kernel(kernel, rank=rank, ops=ops, name="stream")
    res = prog.run(max_cycles=500_000_000)
    assert res.completed, res.reason
    return _collect_run_stats(
        res, planner_stats, timing,
        [res.store(r, "end") for r in range(num_ranks)],
    )


def measure_uniform_stream_cycles(n, config, planner_stats=None,
                                  num_ranks=UNIFORM_STREAM_RANKS, timing=None):
    """Steady-state neighbour streams on a ``num_ranks``-rank bus.

    Each rank runs *concurrent* kernels — a sender streaming to
    ``rank + 1`` and, independently, a receiver draining from
    ``rank - 1`` — so once the pipeline fills, every rank (and hence
    every shard of a contiguous cut) is sending and receiving for the
    whole run: the uniform-load scaling workload the sharded headline
    ratio is taken from. (Running both directions at once instead
    deadlocks legitimately at depth — opposing streams share each
    rank's CKS chain on a bus, closing a §3.3 credit cycle — so
    uniformity comes from kernel concurrency, not counter-traffic.)
    Returns the global end cycle (max per-kernel finish).
    """
    import numpy as np

    from repro.network.topology import bus

    prog = SMIProgram(bus(num_ranks), config=config)
    data = np.zeros(n, dtype=np.float32)

    def sender(smi):
        snd = smi.open_send_channel(n, SMI_FLOAT, smi.rank + 1, 0)
        yield from snd.push_vec(data, width=8)
        smi.store("end_tx", smi.cycle)

    def receiver(smi):
        rcv = smi.open_recv_channel(n, SMI_FLOAT, smi.rank - 1, 0)
        yield from rcv.pop_vec(n, width=8)
        smi.store("end_rx", smi.cycle)

    for rank in range(num_ranks):
        if rank < num_ranks - 1:
            prog.add_kernel(sender, rank=rank, name="stream_tx",
                            ops=[OpDecl("send", 0, SMI_FLOAT, peer=rank + 1)])
        if rank > 0:
            prog.add_kernel(receiver, rank=rank, name="stream_rx",
                            ops=[OpDecl("recv", 0, SMI_FLOAT, peer=rank - 1)])
    res = prog.run(max_cycles=500_000_000)
    assert res.completed, res.reason
    ends = [res.store(r, "end_tx") for r in range(num_ranks - 1)]
    ends += [res.store(r, "end_rx") for r in range(1, num_ranks)]
    return _collect_run_stats(res, planner_stats, timing, ends)


#: The shard sweep's workloads: (name, measure fn, ranks).
SHARD_WORKLOADS = (
    ("multistream", measure_multistream_cycles, 8),
    ("uniform_stream", measure_uniform_stream_cycles, UNIFORM_STREAM_RANKS),
)


def run_shard_points(n, repeats, backend="process", shard_counts=SHARD_COUNTS):
    """Sharded-vs-sequential sweep over both deep-buffer workloads."""
    points = []
    base = NOCTUA_DEEP
    for workload, measure, ranks in SHARD_WORKLOADS:
        cycles_seq, wall_seq = _best_of(
            lambda: measure(n, base), repeats)
        for shards in shard_counts:
            cfg = base.with_(backend=backend, shards=shards)
            stats: dict = {}
            timing: list = []
            cycles_shard, wall_shard = _best_of(
                lambda: measure(n, cfg, planner_stats=stats, timing=timing),
                repeats,
            )
            points.append({
                "kind": "shard_stream",
                "workload": workload,
                "elements": int(n),
                "ranks": ranks,
                "buffers": "deep",
                "backend": backend,
                "shards": shards,
                "cycles_seq": int(cycles_seq),
                "cycles_shard": int(cycles_shard),
                "cycle_exact": cycles_seq == cycles_shard,
                "wall_s_seq": round(wall_seq, 4),
                "wall_s_shard": round(wall_shard, 4),
                "speedup": round(wall_seq / max(wall_shard, 1e-9), 2),
                "planner": stats,
                "timing": timing,
            })
    return points


def build_headline(points):
    largest_n = max(p["elements"] for p in points if p["kind"] == "bandwidth")
    headline = {
        "largest_stream_bytes": largest_n * SMI_FLOAT.size,
        "all_cycle_exact": all(p["cycle_exact"] for p in points),
    }
    for p in points:
        if p["kind"] != "bandwidth" or p["elements"] != largest_n:
            continue
        if p["buffers"] == "noctua":
            headline[f"speedup_at_largest_{p['hops']}hop"] = p["speedup"]
            headline[f"planner_hit_rate_{p['hops']}hop"] = \
                p["planner"]["hit_rate"]
            headline[f"planner_mean_window_{p['hops']}hop"] = \
                p["planner"]["mean_window"]
            headline[f"replication_hit_rate_{p['hops']}hop"] = \
                p["planner"]["replication_hit_rate"]
            headline[f"mean_train_rounds_{p['hops']}hop"] = \
                p["planner"]["mean_train_rounds"]
        else:
            headline[f"deep_speedup_at_largest_{p['hops']}hop"] = \
                p["speedup"]
            headline[f"deep_mean_train_rounds_{p['hops']}hop"] = \
                p["planner"]["mean_train_rounds"]
            headline[f"deep_cruise_rounds_{p['hops']}hop"] = \
                p["planner"]["cruise_rounds"]
            headline[f"deep_cruise_hit_rate_{p['hops']}hop"] = \
                p["planner"]["cruise_hit_rate"]
    shallow = headline.get("speedup_at_largest_4hop")
    deep = headline.get("deep_speedup_at_largest_4hop")
    if shallow and deep:
        # The deep-buffer regime's payoff: quanta spanning multiple
        # pattern rounds make the burst plane relatively faster.
        headline["deep_vs_shallow_4hop"] = round(deep / shallow, 2)
    for kind in ("bcast", "reduce"):
        coll = [p for p in points if p["kind"] == kind]
        if coll:
            biggest = max(coll, key=lambda p: p["elements"])
            headline[f"{kind}_planner_windows"] = \
                biggest["planner"]["windows"]
            headline[f"{kind}_planner_hit_rate"] = \
                biggest["planner"]["hit_rate"]
    shard = [p for p in points if p["kind"] == "shard_stream"]
    if shard:
        # Honest sharded-vs-sequential wall ratios: >1 means the forked
        # workers beat the boundary-exchange overhead; <1 is reported
        # as-is (a single-core or loaded box cannot show parallel
        # speedup at all). The headline ratio comes from the
        # uniform-load halo workload — the multistream workload's
        # staggered drain serialises the shards by construction and
        # stays visible in its own points.
        headline["shard_backend"] = shard[0]["backend"]
        uniform = [p for p in shard if p["workload"] == "uniform_stream"]
        for p in uniform or shard:
            headline[f"shard_vs_seq_{p['shards']}shards"] = p["speedup"]
    macro = [p for p in points if p["kind"] == "macro_stream"]
    if macro:
        largest_m = max(p["elements"] for p in macro)
        for p in macro:
            if p["elements"] != largest_m:
                continue
            headline[f"macro_speedup_{p['hops']}hop"] = p["speedup"]
            headline[f"macro_ff_coverage_{p['hops']}hop"] = p["ff_coverage"]
            headline[f"macro_chain_len_{p['hops']}hop"] = \
                p["macro_chain_len"]
    for p in points:
        if p["kind"] == "trace_stream":
            headline["trace_overhead_off"] = p["trace_overhead_off"]
    headline.update(_perfmodel_residuals(points))
    return headline


def _perfmodel_residuals(points):
    """Analytical-model vs simulated cycles at the largest sim points.

    ``(model - sim) / sim`` for the kernels the perfmodel extends beyond
    ``SIM_ELEMENT_LIMIT``: the shallow-preset p2p stream and the
    bcast/reduce collectives. Tracked so formula drift between the model
    (``src/repro/perfmodel/``) and the simulator shows up in the perf
    trajectory; ``tests/test_perfmodel_checked.py`` bounds it.
    """
    out = {}
    hops = noctua_bus().hop_matrix()
    chain_hops = (sum(hops[r][r + 1] for r in range(COLL_RANKS - 1))
                  / (COLL_RANKS - 1))
    bw = [p for p in points
          if p["kind"] == "bandwidth" and p["buffers"] == "noctua"]
    if bw:
        p = max(bw, key=lambda q: (q["elements"], q["hops"]))
        model = p2p_stream(p["elements"], SMI_FLOAT, p["hops"], NOCTUA,
                           app_width=8).cycles
        out["perfmodel_residual_p2p"] = round(
            (model - p["cycles_burst"]) / p["cycles_burst"], 4)
    for kind, model_fn in (("bcast", bcast_cycles),
                           ("reduce", reduce_cycles)):
        coll = [p for p in points if p["kind"] == kind]
        if coll:
            p = max(coll, key=lambda q: q["elements"])
            model = model_fn(p["elements"], SMI_FLOAT, COLL_RANKS,
                             chain_hops, NOCTUA)
            out[f"perfmodel_residual_{kind}"] = round(
                (model - p["cycles_burst"]) / p["cycles_burst"], 4)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, one repeat (CI smoke)")
    parser.add_argument("--fail-below-parity", nargs="?", type=float,
                        const=0.85, default=None, metavar="THRESHOLD",
                        help="exit non-zero if any burst point's speedup "
                             "falls below THRESHOLD (default 0.85)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_smoke.json "
                             "next to this script)")
    parser.add_argument("--backend", default="process",
                        choices=("sharded", "process"),
                        help="sharded backend measured by the shard sweep "
                             "(default: process — forked workers)")
    parser.add_argument("--shards", default=",".join(map(str, SHARD_COUNTS)),
                        help="comma-separated shard counts for the shard "
                             "sweep (default: 2,4; empty string skips it)")
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else 3
    stream_sizes = QUICK_STREAM_SIZES if args.quick else STREAM_SIZES
    coll_sizes = QUICK_COLL_SIZES if args.quick else COLL_SIZES
    macro_sizes = (QUICK_MACRO_STREAM_SIZES if args.quick
                   else MACRO_STREAM_SIZES)
    shard_n = (QUICK_SHARD_STREAM_ELEMENTS if args.quick
               else SHARD_STREAM_ELEMENTS)
    shard_counts = tuple(int(s) for s in args.shards.split(",") if s)

    backend = args.backend
    if backend == "process":
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            print("note: fork unavailable; shard sweep falls back to the "
                  "in-process sharded backend", file=sys.stderr)
            backend = "sharded"

    trace_n = (QUICK_TRACE_STREAM_ELEMENTS if args.quick
               else TRACE_STREAM_ELEMENTS)
    sample_out = Path(__file__).resolve().parent / "BENCH_trace_sample.json"

    points = run_stream_points(stream_sizes, repeats)
    points += run_collective_points(coll_sizes, repeats)
    points += run_macro_points(macro_sizes, repeats)
    points += run_trace_points(trace_n, repeats, sample_out=sample_out)
    if shard_counts:
        points += run_shard_points(shard_n, repeats, backend=backend,
                                   shard_counts=shard_counts)
    report = {
        "benchmark": "smoke",
        "quick": bool(args.quick),
        "points": points,
        "headline": build_headline(points),
    }
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent / "BENCH_smoke.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")

    from repro.harness.reporting import shard_timing_summary

    for p in points:
        if p["kind"] == "shard_stream":
            print(f"{p['kind']:9s} {p['backend']:>7s}x{p['shards']} "
                  f"{p['workload'][:12]:12s} n={p['elements']:7d}  "
                  f"cycles={p['cycles_shard']:9d} exact={p['cycle_exact']}  "
                  f"seq={p['wall_s_seq']:.3f}s "
                  f"shard={p['wall_s_shard']:.3f}s "
                  f"speedup={p['speedup']:.2f}x")
            if p["timing"]:
                print(shard_timing_summary(p["timing"]))
            continue
        if p["kind"] == "trace_stream":
            print(f"{p['kind']:9s} hops={p['hops']} deep   "
                  f"n={p['elements']:7d}  "
                  f"cycles={p['cycles_on']:9d} exact={p['cycle_exact']}  "
                  f"off={p['wall_s_off']:.3f}s on={p['wall_s_on']:.3f}s "
                  f"ratio={p['trace_overhead_off']:.2f}")
            continue
        if p["kind"] == "macro_stream":
            planner = p["planner"]
            print(f"{p['kind']:9s} hops={p['hops']} deep   "
                  f"n={p['elements']:7d}  "
                  f"cycles={p['cycles_macro']:9d} exact={p['cycle_exact']}  "
                  f"cruise={p['wall_s_cruise']:.3f}s "
                  f"macro={p['wall_s_macro']:.3f}s "
                  f"speedup={p['speedup']:.2f}x  "
                  f"ffwin={planner['ff_windows']} "
                  f"ffrounds={planner['ff_bulk_rounds']} "
                  f"ffcov={p['ff_coverage']:.2f} "
                  f"chain={p['macro_chain_len']:.1f}")
            continue
        tag = (f"hops={p['hops']} {p['buffers'][:4]}"
               if p["kind"] == "bandwidth" else f"ranks={p['ranks']}")
        planner = p["planner"]
        print(f"{p['kind']:9s} {tag:12s} n={p['elements']:7d}  "
              f"cycles={p['cycles_burst']:9d} exact={p['cycle_exact']}  "
              f"flit={p['wall_s_flit']:.3f}s burst={p['wall_s_burst']:.3f}s "
              f"speedup={p['speedup']:.2f}x  "
              f"hit={planner['hit_rate']:.2f} "
              f"meanwin={planner['mean_window']:.1f} "
              f"coplans={planner['coplans']} "
              f"trains={planner['replications']} "
              f"meantrain={planner['mean_train_rounds']:.1f} "
              f"cruise={planner['cruise_rounds']}")
    print(f"headline: {report['headline']}")
    print(f"wrote {out}")
    if not report["headline"]["all_cycle_exact"]:
        for p in points:
            if p["cycle_exact"]:
                continue
            if p["kind"] == "shard_stream":
                print(f"ERROR: sharded backend ({p['backend']} x"
                      f"{p['shards']}) diverged from the sequential "
                      f"reference ({p['cycles_shard']} vs "
                      f"{p['cycles_seq']} cycles)", file=sys.stderr)
            elif p["kind"] == "macro_stream":
                print(f"ERROR: macro-cruise diverged from the cruise "
                      f"reference (n={p['elements']} hops={p['hops']}: "
                      f"{p['cycles_macro']} vs {p['cycles_cruise']} "
                      "cycles)", file=sys.stderr)
            elif p["kind"] == "trace_stream":
                print(f"ERROR: tracing changed the simulated cycle count "
                      f"(n={p['elements']}: {p['cycles_on']} traced vs "
                      f"{p['cycles_off']} untraced)", file=sys.stderr)
            else:
                print(f"ERROR: burst mode diverged from the per-flit "
                      f"reference ({p['kind']} n={p['elements']}: "
                      f"{p['cycles_burst']} vs {p['cycles_flit']} "
                      "cycles)", file=sys.stderr)
        return 1
    if args.fail_below_parity is not None:
        # Points whose per-flit wall time is a few milliseconds measure
        # mostly interpreter warm-up and timer jitter on shared CI
        # runners; the parity gate only judges points large enough for
        # the ratio to be meaningful. Collective points run structurally
        # close to parity (their support kernels are per-flit rate-1, so
        # the planner has little to batch) — gate them against a wider
        # margin that still catches catastrophic regressions without
        # flaking on timer noise. Sharded points are record-only: their
        # sequential-vs-parallel wall ratio is a property of the host
        # (core count, load) as much as of the code — a single-core or
        # noisy CI box legitimately measures < 1x — so the trend lives
        # in BENCH_smoke.json's shard_vs_seq_* headline instead of a
        # pass/fail threshold. Cycle divergence on sharded points still
        # fails unconditionally above.
        def threshold(p):
            if p["kind"] == "bandwidth":
                return args.fail_below_parity
            return min(args.fail_below_parity, 0.7)

        # Macro points are record-only like shard points: their speedup
        # is cruise-vs-macro (tracked via the macro_speedup_* headline),
        # not the burst-vs-flit parity this gate judges.
        gated = [p for p in points
                 if p["kind"] not in ("shard_stream", "macro_stream",
                                      "trace_stream")
                 and p["wall_s_flit"] >= 0.025]
        slow = [p for p in gated if p["speedup"] < threshold(p)]
        if slow:
            for p in slow:
                print(f"ERROR: {p['kind']} n={p['elements']} regressed to "
                      f"{p['speedup']:.2f}x (< {threshold(p)}x "
                      "per-flit parity)", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
