"""Perf smoke runner: track simulator wall-clock and cycles over time.

Runs the bandwidth (Fig. 9), broadcast (Fig. 10) and reduce (Fig. 11)
kernels at small, CI-friendly sizes, in both data-plane modes
(``burst_mode`` on / off), and writes ``BENCH_smoke.json`` next to this
script:

* per point: simulated ``cycles`` (must be identical across modes — the
  burst fast path is required to be cycle-exact) and best-of-N
  wall-clock seconds per mode;
* per point: the burst/per-flit speedup plus the burst planner's
  counters (window hit rate, mean committed window length, cascade
  co-plans, pattern-replication hit rate and mean train length, cruise
  induction hit rate and rounds), so the supply-schedule plane's
  effectiveness is tracked in the perf trajectory alongside raw speed;
* bandwidth points run on two buffer presets — the paper's shallow
  NOCTUA depths and the deep-buffer NOCTUA_DEEP regime, where the
  per-event information quantum spans multiple pattern rounds (trains
  exceed one round and cruise-mode induction engages);
* headline: per-hop-count speedups at the largest stream size, their
  replication/cruise rates for both buffer regimes, the deep-vs-shallow
  4-hop ratio, and the collective planner hit rates.

Every field is documented in ``benchmarks/README.md``.

Usage::

    PYTHONPATH=src python benchmarks/run_smoke.py [--quick]
        [--fail-below-parity [THRESHOLD]]

``--fail-below-parity`` exits non-zero if any burst point's speedup
drops below THRESHOLD x per-flit (default 0.85 — parity with an
allowance for timer noise on shared CI runners). Cycle divergence always
fails, regardless of flags.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.config import NOCTUA, NOCTUA_DEEP
from repro.core.datatypes import SMI_FLOAT
from repro.harness.runners import (
    measure_bcast_sim_us,
    measure_reduce_sim_us,
    measure_stream_sim,
)
from repro.network.topology import noctua_bus

#: Element counts for the bandwidth stream (Fig. 9 x-axis, in elements).
STREAM_SIZES = (1 << 10, 1 << 13, 1 << 15, 1 << 17)
QUICK_STREAM_SIZES = (1 << 10, 1 << 13)
#: Hop counts measured (Fig. 9 plots 1/4/7-hop series; 7 adds no new
#: scaling information over 4 for the smoke run).
STREAM_HOPS = (1, 4)

#: Element counts for the collective sweeps (Figs. 10-11 x-axis).
COLL_SIZES = (1 << 6, 1 << 9, 1 << 12)
QUICK_COLL_SIZES = (1 << 6, 1 << 9)
COLL_RANKS = 4

#: Buffer presets the bandwidth points sweep: the paper's shallow NOCTUA
#: depths and the deep-buffer regime where replication trains exceed one
#: round and cruise-mode induction engages. Collective points stay on
#: the shallow preset (their support kernels bound batching, not buffer
#: depth) to keep the CI run short.
BUFFER_PRESETS = (("noctua", NOCTUA), ("deep", NOCTUA_DEEP))


def _best_of(fn, repeats: int):
    value = None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def _finish_point(point):
    point["cycle_exact"] = point["cycles_burst"] == point["cycles_flit"]
    point["speedup"] = round(
        point["wall_s_flit"] / max(point["wall_s_burst"], 1e-9), 2
    )
    return point


def run_stream_points(sizes, repeats):
    points = []
    for buffers, preset in BUFFER_PRESETS:
        for hops in STREAM_HOPS:
            for n in sizes:
                point = {"kind": "bandwidth", "elements": int(n),
                         "bytes": int(n) * SMI_FLOAT.size, "hops": hops,
                         "buffers": buffers}
                for mode in (False, True):
                    cfg = preset.with_(burst_mode=mode)
                    stats: dict = {}
                    cycles, wall = _best_of(
                        lambda: measure_stream_sim(n, hops, SMI_FLOAT, cfg,
                                                   planner_stats=stats),
                        repeats,
                    )
                    key = "burst" if mode else "flit"
                    point[f"cycles_{key}"] = int(cycles)
                    point[f"wall_s_{key}"] = round(wall, 4)
                    if mode:
                        point["planner"] = stats
                points.append(_finish_point(point))
    return points


def run_collective_points(sizes, repeats):
    points = []
    topology = noctua_bus()
    for kind, measure in (("bcast", measure_bcast_sim_us),
                          ("reduce", measure_reduce_sim_us)):
        for n in sizes:
            point = {"kind": kind, "elements": int(n), "ranks": COLL_RANKS}
            for mode in (False, True):
                cfg = NOCTUA.with_(burst_mode=mode)
                stats: dict = {}
                us, wall = _best_of(
                    lambda: measure(n, topology, COLL_RANKS, cfg,
                                    planner_stats=stats),
                    repeats,
                )
                key = "burst" if mode else "flit"
                point[f"cycles_{key}"] = int(round(us / cfg.cycles_to_us(1)))
                point[f"wall_s_{key}"] = round(wall, 4)
                if mode:
                    point["planner"] = stats
            points.append(_finish_point(point))
    return points


def build_headline(points):
    largest_n = max(p["elements"] for p in points if p["kind"] == "bandwidth")
    headline = {
        "largest_stream_bytes": largest_n * SMI_FLOAT.size,
        "all_cycle_exact": all(p["cycle_exact"] for p in points),
    }
    for p in points:
        if p["kind"] != "bandwidth" or p["elements"] != largest_n:
            continue
        if p["buffers"] == "noctua":
            headline[f"speedup_at_largest_{p['hops']}hop"] = p["speedup"]
            headline[f"planner_hit_rate_{p['hops']}hop"] = \
                p["planner"]["hit_rate"]
            headline[f"planner_mean_window_{p['hops']}hop"] = \
                p["planner"]["mean_window"]
            headline[f"replication_hit_rate_{p['hops']}hop"] = \
                p["planner"]["replication_hit_rate"]
            headline[f"mean_train_rounds_{p['hops']}hop"] = \
                p["planner"]["mean_train_rounds"]
        else:
            headline[f"deep_speedup_at_largest_{p['hops']}hop"] = \
                p["speedup"]
            headline[f"deep_mean_train_rounds_{p['hops']}hop"] = \
                p["planner"]["mean_train_rounds"]
            headline[f"deep_cruise_rounds_{p['hops']}hop"] = \
                p["planner"]["cruise_rounds"]
            headline[f"deep_cruise_hit_rate_{p['hops']}hop"] = \
                p["planner"]["cruise_hit_rate"]
    shallow = headline.get("speedup_at_largest_4hop")
    deep = headline.get("deep_speedup_at_largest_4hop")
    if shallow and deep:
        # The deep-buffer regime's payoff: quanta spanning multiple
        # pattern rounds make the burst plane relatively faster.
        headline["deep_vs_shallow_4hop"] = round(deep / shallow, 2)
    for kind in ("bcast", "reduce"):
        coll = [p for p in points if p["kind"] == kind]
        if coll:
            biggest = max(coll, key=lambda p: p["elements"])
            headline[f"{kind}_planner_windows"] = \
                biggest["planner"]["windows"]
            headline[f"{kind}_planner_hit_rate"] = \
                biggest["planner"]["hit_rate"]
    return headline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes, one repeat (CI smoke)")
    parser.add_argument("--fail-below-parity", nargs="?", type=float,
                        const=0.85, default=None, metavar="THRESHOLD",
                        help="exit non-zero if any burst point's speedup "
                             "falls below THRESHOLD (default 0.85)")
    parser.add_argument("--out", default=None,
                        help="output path (default: BENCH_smoke.json "
                             "next to this script)")
    args = parser.parse_args(argv)

    repeats = 2 if args.quick else 3
    stream_sizes = QUICK_STREAM_SIZES if args.quick else STREAM_SIZES
    coll_sizes = QUICK_COLL_SIZES if args.quick else COLL_SIZES

    points = run_stream_points(stream_sizes, repeats)
    points += run_collective_points(coll_sizes, repeats)
    report = {
        "benchmark": "smoke",
        "quick": bool(args.quick),
        "points": points,
        "headline": build_headline(points),
    }
    out = Path(args.out) if args.out else (
        Path(__file__).resolve().parent / "BENCH_smoke.json"
    )
    out.write_text(json.dumps(report, indent=2) + "\n")

    for p in points:
        tag = (f"hops={p['hops']} {p['buffers'][:4]}"
               if p["kind"] == "bandwidth" else f"ranks={p['ranks']}")
        planner = p["planner"]
        print(f"{p['kind']:9s} {tag:12s} n={p['elements']:7d}  "
              f"cycles={p['cycles_burst']:9d} exact={p['cycle_exact']}  "
              f"flit={p['wall_s_flit']:.3f}s burst={p['wall_s_burst']:.3f}s "
              f"speedup={p['speedup']:.2f}x  "
              f"hit={planner['hit_rate']:.2f} "
              f"meanwin={planner['mean_window']:.1f} "
              f"coplans={planner['coplans']} "
              f"trains={planner['replications']} "
              f"meantrain={planner['mean_train_rounds']:.1f} "
              f"cruise={planner['cruise_rounds']}")
    print(f"headline: {report['headline']}")
    print(f"wrote {out}")
    if not report["headline"]["all_cycle_exact"]:
        print("ERROR: burst mode diverged from the per-flit reference",
              file=sys.stderr)
        return 1
    if args.fail_below_parity is not None:
        # Points whose per-flit wall time is a few milliseconds measure
        # mostly interpreter warm-up and timer jitter on shared CI
        # runners; the parity gate only judges points large enough for
        # the ratio to be meaningful. Collective points run structurally
        # close to parity (their support kernels are per-flit rate-1, so
        # the planner has little to batch) — gate them against a wider
        # margin that still catches catastrophic regressions without
        # flaking on timer noise.
        def threshold(p):
            if p["kind"] == "bandwidth":
                return args.fail_below_parity
            return min(args.fail_below_parity, 0.7)

        gated = [p for p in points if p["wall_s_flit"] >= 0.025]
        slow = [p for p in gated if p["speedup"] < threshold(p)]
        if slow:
            for p in slow:
                print(f"ERROR: {p['kind']} n={p['elements']} regressed to "
                      f"{p['speedup']:.2f}x (< {threshold(p)}x "
                      "per-flit parity)", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
