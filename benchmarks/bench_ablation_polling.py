"""Ablation: the polling parameter R (§4.3).

"Higher values of R increase the bandwidth for applications with a sparse
communication pattern, but increases the per-connection latency for
applications where many incoming connections are active simultaneously."

Both halves of that trade-off are measured on the cycle simulator:
single-stream throughput rises with R, while the worst-case inter-service
gap seen by one of several concurrently active endpoints grows with R.
"""

import numpy as np
import pytest

from repro import NOCTUA, SMI_FLOAT, SMIProgram, noctua_torus
from repro.codegen.metadata import OpDecl
from repro.harness import format_table, measure_stream_sim

R_VALUES = (1, 2, 4, 8, 16)


def single_stream_bandwidth_gbps(R: int, n: int = 14_000) -> float:
    cfg = NOCTUA.with_(read_burst=R)
    cycles = measure_stream_sim(n, 1, SMI_FLOAT, cfg, topology=noctua_torus())
    return n * 4 * 8 / cfg.cycles_to_seconds(cycles) / 1e9


def contended_worst_gap_cycles(R: int, packets_each: int = 120):
    """Four saturated endpoints share ONE CKS (a bus endpoint rank has a
    single wired interface): measure the worst per-connection service gap
    seen at the receivers, plus the arbiter's own inter-accept gap
    statistics (the opt-in bounded ``record_accepts`` histogram). High R
    serves long bursts per endpoint, so the other connections wait
    longer — the dense-pattern cost of §4.3."""
    from repro import bus

    cfg = NOCTUA.with_(read_burst=R, record_accepts=True)
    prog = SMIProgram(bus(2), config=cfg)
    n = packets_each * SMI_FLOAT.elements_per_packet
    worst_gaps: dict[int, int] = {}

    def sender(smi):
        def stream(port):
            ch = smi.open_send_channel(n, SMI_FLOAT, 1, port)
            data = np.zeros(n, dtype=np.float32)
            yield from ch.push_vec(data, width=8)

        for port in range(1, 4):
            smi.engine.spawn(stream(port), f"tx{port}")
        yield from stream(0)

    def receiver(smi):
        done = []

        def drain(port):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, port)
            last = None
            worst = 0
            for _ in range(n):
                yield from ch.pop()
                if last is not None:
                    worst = max(worst, smi.cycle - last)
                last = smi.cycle
            worst_gaps[port] = worst
            done.append(port)

        for port in range(1, 4):
            smi.engine.spawn(drain(port), f"rx{port}")
        yield from drain(0)
        while len(done) < 4:
            yield smi.wait(64)

    prog.add_kernel(sender, rank=0,
                    ops=[OpDecl("send", p, SMI_FLOAT) for p in range(4)])
    prog.add_kernel(receiver, rank=1,
                    ops=[OpDecl("recv", p, SMI_FLOAT) for p in range(4)])
    res = prog.run(max_cycles=100_000_000)
    assert res.completed, res.reason
    # The shared CKS's accept histogram: one bounded counter per distinct
    # inter-accept gap, regardless of traffic volume.
    cks = next(iter(res.transport.rank(0).cks.values()))
    hist = cks.arbiter.accept_hist
    assert hist is not None and hist.count > 0
    return max(worst_gaps.values()), hist


def build_ablation_rows():
    rows = []
    for R in R_VALUES:
        worst, hist = contended_worst_gap_cycles(R)
        rows.append([
            f"R={R}",
            round(single_stream_bandwidth_gbps(R), 2),
            worst,
            round(hist.mean_gap, 2),
            hist.p50,
            hist.p99,
            hist.max_gap,
        ])
    return rows


def test_polling_ablation_report(benchmark, capsys):
    rows = benchmark.pedantic(build_ablation_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["R", "1-stream BW [Gbit/s]", "4-stream worst gap [cycles]",
             "CKS mean accept gap", "CKS p50 gap", "CKS p99 gap",
             "CKS max accept gap"],
            rows, title="Ablation: polling parameter R (§4.3)"
        ))
    bw = {row[0]: row[1] for row in rows}
    gap = {row[0]: row[2] for row in rows}
    # Sparse pattern: bandwidth grows monotonically with R...
    assert bw["R=1"] < bw["R=4"] <= bw["R=8"] + 0.5
    # R=1 throttles a single stream to ~(R+4)/R = 5 cycles/packet.
    assert bw["R=1"] == pytest.approx(35.0 * 2 / 5, rel=0.1)
    # ...but dense patterns pay more per-connection latency at high R.
    assert gap["R=16"] > gap["R=1"]


def test_bench_polling_single_point(benchmark):
    bw = benchmark.pedantic(
        lambda: single_stream_bandwidth_gbps(8, n=7_000),
        rounds=1, iterations=1,
    )
    assert bw > 20.0
