"""Table 3 — ping-pong message latency: SMI at 1/4/7 hops vs MPI+OpenCL."""

import pytest

from repro.harness import Comparison, measure_pingpong_us, paperdata
from repro.hostexec import NOCTUA_HOST


def build_table3_report() -> Comparison:
    cmp = Comparison("Table 3: one-way latency", unit="us")
    cmp.add("MPI+OpenCL", paperdata.TABLE3_LATENCY_US["MPI+OpenCL"],
            round(NOCTUA_HOST.p2p_latency_us(), 2), "host model")
    for hops in (1, 4, 7):
        cmp.add(f"SMI-{hops}", paperdata.TABLE3_LATENCY_US[f"SMI-{hops}"],
                round(measure_pingpong_us(hops), 3), "cycle sim")
    return cmp


def test_table3_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_table3_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    for label, paper, measured, _ in cmp.rows:
        assert measured == pytest.approx(paper, rel=0.05), label
    # Structural claims: latency grows linearly with hops; SMI is ~45x
    # below the host path at 1 hop.
    smi = {h: measure_pingpong_us(h) for h in (1, 4, 7)}
    per_hop_14 = (smi[4] - smi[1]) / 3
    per_hop_47 = (smi[7] - smi[4]) / 3
    assert per_hop_14 == pytest.approx(per_hop_47, rel=0.1)
    assert NOCTUA_HOST.p2p_latency_us() / smi[1] > 30


def test_bench_table3(benchmark):
    us = benchmark.pedantic(lambda: measure_pingpong_us(1), rounds=1, iterations=1)
    assert us < 1.0
