"""Fig. 11 — reduce time vs message size (FP32 SUM).

Expected shape (§5.3.4): "For small to medium-sized messages, SMI's Reduce
outperforms going over the host using OpenCL and MPI, but loses its benefit
at high message sizes" — the credit-based root is latency-sensitive and the
linear (non-tree) scheme congests the root rank.
"""

import os

import pytest

from repro.harness import (
    collective_sweep,
    format_table,
    host_collective_sweep,
    paperdata,
)
from repro.network.topology import noctua_bus, noctua_torus

DEFAULT_SIZES = [1, 8, 64, 512, 4096, 16384, 65536, 262144, 1048576]
FULL_SIZES = [2**k for k in range(0, 21)]


def sweep_sizes() -> list[int]:
    return FULL_SIZES if os.environ.get("REPRO_FULL_SWEEP") else DEFAULT_SIZES


def build_fig11_series() -> dict[str, list]:
    sizes = sweep_sizes()
    return {
        "SMI Torus - 8 Ranks": collective_sweep("reduce", sizes, noctua_torus(), 8),
        "SMI Torus - 4 Ranks": collective_sweep("reduce", sizes, noctua_torus(), 4),
        "SMI Bus - 8 Ranks": collective_sweep("reduce", sizes, noctua_bus(), 8),
        "SMI Bus - 4 Ranks": collective_sweep("reduce", sizes, noctua_bus(), 4),
        "MPI+OpenCL - 8 Ranks": host_collective_sweep("reduce", sizes, 8),
    }


def test_fig11_report(benchmark, capsys):
    series = benchmark.pedantic(build_fig11_series, rounds=1, iterations=1)
    sizes = sweep_sizes()
    rows = [
        [n] + [f"{series[k][i].value:,.1f} ({series[k][i].source})"
               for k in series]
        for i, n in enumerate(sizes)
    ]
    with capsys.disabled():
        print()
        print(format_table(["elems"] + list(series), rows,
                           title="Fig. 11: Reduce time [usec] vs size"))
        anchors = paperdata.FIG11_REDUCE_ANCHORS_US
        print(f"paper anchors (torus-8 vs MPI) [us]: {anchors}")

    smi8 = {n: p.value for n, p in zip(sizes, series["SMI Torus - 8 Ranks"])}
    bus8 = {n: p.value for n, p in zip(sizes, series["SMI Bus - 8 Ranks"])}
    mpi = {n: p.value for n, p in zip(sizes, series["MPI+OpenCL - 8 Ranks"])}
    # Small/medium messages: SMI wins.
    for n in (1, 64, 4096):
        assert smi8[n] < mpi[n]
    # Large messages: MPI+OpenCL wins (the crossover of Fig. 11).
    assert mpi[1048576] < smi8[1048576]
    # Latency sensitivity: the larger-diameter bus is slower than the torus
    # once credit round-trips matter (§5.3.4).
    assert bus8[1048576] > smi8[1048576]


def test_crossover_position(benchmark):
    """The SMI/MPI crossover lands in the paper's 10^4-10^6 element band."""
    sizes = [2**k for k in range(10, 21)]
    smi = benchmark.pedantic(
        lambda: collective_sweep("reduce", sizes, noctua_torus(), 8,
                                 sim_limit_elements=0),
        rounds=1, iterations=1)
    mpi = host_collective_sweep("reduce", sizes, 8)
    crossed = [n for n, s, m in zip(sizes, smi, mpi) if s.value > m.value]
    assert crossed, "expected a crossover within the sweep"
    assert 10_000 < crossed[0] <= 1_048_576


def test_bench_fig11_point(benchmark):
    from repro.harness import runners

    us = benchmark.pedantic(
        lambda: runners.measure_reduce_sim_us(1024, noctua_torus(), 8),
        rounds=1, iterations=1,
    )
    assert us > 0
