"""Table 1 — SMI resource consumption (interconnect + communication kernels).

Regenerates both rows of Table 1 from the resource model and compares every
cell against the paper's synthesis results (which the model must reproduce
exactly at the calibration points).
"""

import pytest

from repro.harness import Comparison, paperdata
from repro.resources import estimate, table1


def build_table1_report() -> Comparison:
    cmp = Comparison("Table 1: SMI resource consumption", unit="count")
    measured = table1()
    for cfg_name, paper_cfg in paperdata.TABLE1.items():
        m = measured[cfg_name]
        for component in ("interconnect", "comm_kernels"):
            vec = m[component]
            for res in ("luts", "ffs", "m20ks"):
                cmp.add(
                    f"{cfg_name} {component} {res}",
                    paper_cfg[component][res],
                    getattr(vec, res),
                )
        for res in ("luts", "ffs", "m20ks"):
            cmp.add(
                f"{cfg_name} % of max {res}",
                paper_cfg["pct"][res],
                round(m[f"pct_{res}"], 2),
            )
    return cmp


def test_table1_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_table1_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    # Absolute counts reproduce exactly; % rows within rounding.
    for label, paper, measured, _ in cmp.rows:
        if "% of max" in label:
            assert measured == pytest.approx(paper, abs=0.4)
        else:
            assert measured == paper


def test_bench_table1(benchmark):
    result = benchmark.pedantic(
        lambda: estimate(4).transport_total, rounds=3, iterations=10
    )
    assert result.luts == 32112
