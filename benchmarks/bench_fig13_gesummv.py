"""Fig. 13 — GESUMMV: distributed (2 FPGAs) speedup over single-FPGA.

Regenerates all three panels (square NxN, rectangular 2048xM and Nx2048)
from the memory-bandwidth flow model, checks the annotated SMI execution
times against the paper, and validates functional correctness + a real
measured speedup on the cycle simulator at a reduced size.
"""

import numpy as np
import pytest

from repro.apps.blas import gesummv_reference
from repro.apps.gesummv import GesummvModel, run_distributed_sim, run_single_sim
from repro.harness import Comparison, paperdata


def build_fig13_report() -> Comparison:
    model = GesummvModel()
    cmp = Comparison("Fig. 13: GESUMMV distributed times & speedups", unit="ms")
    for n, paper_ms in paperdata.FIG13_SQUARE_TIMES_MS.items():
        cmp.add(f"square {n}x{n}", paper_ms,
                round(model.distributed_time_s(n, n) * 1e3, 2), "flow model")
    for m, paper_ms in paperdata.FIG13_RECT_2048xM_TIMES_MS.items():
        cmp.add(f"rect 2048x{m}", paper_ms,
                round(model.distributed_time_s(2048, m) * 1e3, 2), "flow model")
    for n, paper_ms in paperdata.FIG13_RECT_Nx2048_TIMES_MS.items():
        cmp.add(f"rect {n}x2048", paper_ms,
                round(model.distributed_time_s(n, 2048) * 1e3, 2), "flow model")
    return cmp


def test_fig13_times_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_fig13_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    # Every annotated paper time within 25% (16384^2 deviates most: the
    # paper's x-vector re-reads at that size are not modelled).
    for label, paper, measured, _ in cmp.rows:
        assert measured == pytest.approx(paper, rel=0.25), label


def test_fig13_speedups_about_2x(benchmark):
    model = benchmark.pedantic(GesummvModel, rounds=1, iterations=1)
    for n, m in [(2048, 2048), (4096, 4096), (8192, 8192), (16384, 16384),
                 (2048, 4096), (2048, 16384), (16384, 2048)]:
        speedup = model.speedup(n, m)
        assert speedup == pytest.approx(
            paperdata.FIG13_EXPECTED_SPEEDUP, rel=0.05
        ), (n, m, speedup)


def test_fig13_cycle_sim_speedup_and_correctness(benchmark):
    """Reduced-size end-to-end run: numerics match NumPy and the
    distributed version wins once rows are long enough to be
    bandwidth-bound."""
    rng = np.random.default_rng(42)
    n = 384
    A = rng.normal(size=(n, n)).astype(np.float32)
    B = rng.normal(size=(n, n)).astype(np.float32)
    x = rng.normal(size=n).astype(np.float32)
    ref = gesummv_reference(1.5, -0.5, A, B, x)
    y_single, t_single = benchmark.pedantic(
        lambda: run_single_sim(1.5, -0.5, A, B, x), rounds=1, iterations=1)
    y_dist, t_dist = run_distributed_sim(1.5, -0.5, A, B, x)
    np.testing.assert_allclose(y_single, ref, rtol=1e-4)
    np.testing.assert_allclose(y_dist, ref, rtol=1e-4)
    assert t_single / t_dist > 1.5, (t_single, t_dist)


def test_bench_fig13(benchmark):
    rng = np.random.default_rng(0)
    n = 96
    A = rng.normal(size=(n, n)).astype(np.float32)
    B = rng.normal(size=(n, n)).astype(np.float32)
    x = rng.normal(size=n).astype(np.float32)
    y, _us = benchmark.pedantic(
        lambda: run_distributed_sim(1.0, 1.0, A, B, x), rounds=1, iterations=1
    )
    np.testing.assert_allclose(y, gesummv_reference(1.0, 1.0, A, B, x),
                               rtol=1e-4)
