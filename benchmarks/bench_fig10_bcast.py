"""Fig. 10 — broadcast time vs message size (FP32).

Five series: SMI on the torus with 8 and 4 ranks, SMI on the linear bus
with 8 and 4 ranks, and MPI+OpenCL with 8 ranks. Expected shape:

* SMI beats the host path at *every* size (§5.3.4);
* 8-rank and 4-rank SMI curves stay close (the pipelined relay chain makes
  time weakly dependent on rank count);
* topology (torus vs bus) matters little for SMI broadcast.
"""

import os

import pytest

from repro.harness import (
    collective_sweep,
    format_table,
    host_collective_sweep,
    paperdata,
)
from repro.network.topology import noctua_bus, noctua_torus

DEFAULT_SIZES = [1, 8, 64, 512, 4096, 16384, 65536, 262144, 1048576]
FULL_SIZES = [2**k for k in range(0, 21)]


def sweep_sizes() -> list[int]:
    return FULL_SIZES if os.environ.get("REPRO_FULL_SWEEP") else DEFAULT_SIZES


def build_fig10_series() -> dict[str, list]:
    sizes = sweep_sizes()
    return {
        "SMI Torus - 8 Ranks": collective_sweep("bcast", sizes, noctua_torus(), 8),
        "SMI Torus - 4 Ranks": collective_sweep("bcast", sizes, noctua_torus(), 4),
        "SMI Bus - 8 Ranks": collective_sweep("bcast", sizes, noctua_bus(), 8),
        "SMI Bus - 4 Ranks": collective_sweep("bcast", sizes, noctua_bus(), 4),
        "MPI+OpenCL - 8 Ranks": host_collective_sweep("bcast", sizes, 8),
    }


def test_fig10_report(benchmark, capsys):
    series = benchmark.pedantic(build_fig10_series, rounds=1, iterations=1)
    sizes = sweep_sizes()
    rows = [
        [n] + [f"{series[k][i].value:,.1f} ({series[k][i].source})"
               for k in series]
        for i, n in enumerate(sizes)
    ]
    with capsys.disabled():
        print()
        print(format_table(["elems"] + list(series), rows,
                           title="Fig. 10: Bcast time [usec] vs size"))
        anchors = paperdata.FIG10_BCAST_ANCHORS_US
        print(f"paper anchors (torus-8 vs MPI) [us]: {anchors}")

    smi8 = [p.value for p in series["SMI Torus - 8 Ranks"]]
    smi4 = [p.value for p in series["SMI Torus - 4 Ranks"]]
    bus8 = [p.value for p in series["SMI Bus - 8 Ranks"]]
    mpi = [p.value for p in series["MPI+OpenCL - 8 Ranks"]]
    # SMI achieves lower time than the host path for all sizes (§5.3.4).
    for s, m in zip(smi8, mpi):
        assert s < m, "SMI bcast must win at every plotted size"
    # Chain pipeline: 8 ranks within ~2.5x of 4 ranks everywhere.
    for a, b in zip(smi8, smi4):
        assert a < 2.5 * b
    # Topology robustness: bus within 2x of torus.
    for a, b in zip(bus8, smi8):
        assert a < 2 * b
    # Monotone growth with size.
    assert smi8 == sorted(smi8)


def test_bench_fig10_point(benchmark):
    from repro.harness import runners

    us = benchmark.pedantic(
        lambda: runners.measure_bcast_sim_us(2048, noctua_torus(), 8),
        rounds=1, iterations=1,
    )
    assert us > 0
