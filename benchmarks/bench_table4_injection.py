"""Table 4 — average injection rate (cycles per packet) vs the polling
parameter R (§5.3.3).

Setup per the paper: 4 CKS/CKR pairs (torus wiring), one application
endpoint streaming continuously; the CKS polls 5 inputs (the application,
the paired CKR, and the 3 sibling CKS modules).

Known fidelity limit (see EXPERIMENTS.md): at R >= 8 the measured gap
saturates at our fixed 2-cycle link slot instead of the paper's 1.8/1.69 —
their kernel-to-link clock ratio is higher than the modelled 2x. R = 1 and
R = 4 reproduce the paper's 5.0 and 2.5 exactly.
"""

import pytest

from repro.harness import Comparison, measure_injection_cycles, paperdata


def build_table4_report() -> Comparison:
    cmp = Comparison("Table 4: injection rate", unit="cycles/packet")
    for R, paper in paperdata.TABLE4_INJECTION_CYCLES.items():
        cmp.add(f"R={R}", paper, round(measure_injection_cycles(R), 2),
                "cycle sim")
    return cmp


def test_table4_report(benchmark, capsys):
    cmp = benchmark.pedantic(build_table4_report, rounds=1, iterations=1)
    with capsys.disabled():
        cmp.print()
    measured = {int(label.split("=")[1]): m for label, _p, m, _ in cmp.rows}
    # Exact anchors at low R.
    assert measured[1] == pytest.approx(5.0, rel=0.03)
    assert measured[4] == pytest.approx(2.5, rel=0.05)
    # Monotone non-increasing in R, with diminishing returns (shape).
    gaps = [measured[R] for R in (1, 4, 8, 16)]
    assert all(a >= b - 1e-9 for a, b in zip(gaps, gaps[1:]))
    assert gaps[0] - gaps[1] > gaps[1] - gaps[2] > gaps[2] - gaps[3] - 1e-9
    # Saturation stays within 30% of the paper at high R.
    assert measured[8] == pytest.approx(
        paperdata.TABLE4_INJECTION_CYCLES[8], rel=0.3
    )
    assert measured[16] == pytest.approx(
        paperdata.TABLE4_INJECTION_CYCLES[16], rel=0.3
    )


def test_bench_table4(benchmark):
    gap = benchmark.pedantic(
        lambda: measure_injection_cycles(8, packets=200), rounds=1, iterations=1
    )
    assert gap > 1.0
