"""Fig. 9 — bandwidth vs message size: SMI at 1/4/7 hops vs MPI+OpenCL.

Regenerates all four series of the figure plus the two peak-bandwidth
reference lines. Points up to the sim threshold run on the cycle
simulator; larger points use the validated analytical model (marked).

Expected shape (verified):
* SMI saturates above 90% of the 35 Gbit/s payload peak;
* network distance does not change the achieved bandwidth (§5.3.1);
* the host path plateaus at roughly one third of SMI's bandwidth.
"""

import os

import pytest

from repro.core.config import NOCTUA
from repro.harness import (
    Comparison,
    bandwidth_sweep,
    format_table,
    host_bandwidth_sweep,
    paperdata,
)
from repro.hostexec import NOCTUA_HOST, PCIE_PEAK_BPS

#: Sweep sizes: 1 KiB .. 4 MiB simulated/modelled by default; the paper's
#: full 256 MiB tail is pure model territory and adds no new shape, but can
#: be enabled with REPRO_FULL_SWEEP=1.
DEFAULT_SIZES = [2**k for k in range(10, 23)]
FULL_SIZES = paperdata.FIG9_SIZES_BYTES


def sweep_sizes() -> list[int]:
    return FULL_SIZES if os.environ.get("REPRO_FULL_SWEEP") else DEFAULT_SIZES


def build_fig9_series() -> dict[str, list]:
    sizes = sweep_sizes()
    return {
        "SMI - 1 hop": bandwidth_sweep(sizes, hops=1),
        "SMI - 4 hops": bandwidth_sweep(sizes, hops=4),
        "SMI - 7 hops": bandwidth_sweep(sizes, hops=7),
        "MPI+OpenCL": host_bandwidth_sweep(sizes),
    }


def test_fig9_report(benchmark, capsys):
    series = benchmark.pedantic(build_fig9_series, rounds=1, iterations=1)
    sizes = sweep_sizes()
    rows = []
    for i, size in enumerate(sizes):
        rows.append(
            [size]
            + [f"{series[k][i].value:.2f} ({series[k][i].source})"
               for k in series]
        )
    with capsys.disabled():
        print()
        print(format_table(
            ["bytes"] + list(series), rows,
            title="Fig. 9: bandwidth [Gbit/s] vs message size",
        ))
        print(f"QSFP peak: {paperdata.FIG9_QSFP_PEAK_GBITS} Gbit/s | "
              f"payload peak: {paperdata.FIG9_PAYLOAD_PEAK_GBITS} Gbit/s | "
              f"PCIe peak: {PCIE_PEAK_BPS/1e9:.0f} Gbit/s")
        cmp = Comparison("Fig. 9 anchors", unit="Gbit/s")
        cmp.add("SMI plateau", paperdata.FIG9_SMI_PLATEAU_GBITS,
                round(series["SMI - 1 hop"][-1].value, 2))
        cmp.add("MPI plateau", paperdata.FIG9_MPI_PLATEAU_GBITS,
                round(series["MPI+OpenCL"][-1].value, 2))
        cmp.print()

    # --- shape assertions -------------------------------------------------
    smi1 = [p.value for p in series["SMI - 1 hop"]]
    smi7 = [p.value for p in series["SMI - 7 hops"]]
    mpi = [p.value for p in series["MPI+OpenCL"]]
    # SMI saturates near (within 10% of) the payload peak.
    assert smi1[-1] > 0.9 * paperdata.FIG9_PAYLOAD_PEAK_GBITS
    assert smi1[-1] <= paperdata.FIG9_PAYLOAD_PEAK_GBITS + 1e-6
    # Hop-count invariance at large sizes.
    assert smi7[-1] == pytest.approx(smi1[-1], rel=0.02)
    # Host path is about one third of SMI (who-wins + factor).
    assert 2.0 < smi1[-1] / mpi[-1] < 4.0
    # SMI wins at every size (Fig. 9: curves never cross).
    for s, m in zip(smi1, mpi):
        assert s > m


def test_bench_fig9_single_point(benchmark):
    """pytest-benchmark hook: wall-clock cost of one 64 KiB sim point."""
    from repro.harness import measure_stream_sim

    cycles = benchmark.pedantic(
        lambda: measure_stream_sim(16384, 1), rounds=1, iterations=1
    )
    assert cycles > 0


def test_fig9_mpi_latency_dominated_at_small_sizes(benchmark):
    mpi = benchmark.pedantic(lambda: host_bandwidth_sweep([1024])[0].value, rounds=1, iterations=1)
    assert mpi < 1.0  # 1 KiB over a ~37 us path is far below 1 Gbit/s
