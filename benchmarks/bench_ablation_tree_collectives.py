"""Ablation: linear vs tree-based collective schemes (§4.4 / §5.3.4).

The paper's reference implementation ships linear collectives and notes
that the missing tree schemes cause "higher congestion in the root rank"
for Reduce. This ablation quantifies what the suggested tree extension
buys: latency for small broadcasts (depth log2 P vs P-1 relay hops) and
root decongestion for reductions.
"""

import pytest

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMIProgram, noctua_torus
from repro.codegen.metadata import OpDecl
from repro.harness import format_table


def _bcast_cycles(n: int, scheme: str) -> int:
    prog = SMIProgram(noctua_torus())
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0)
        for i in range(n):
            yield from chan.bcast(float(i) if smi.rank == 0 else None)
        marks[smi.rank] = smi.cycle

    prog.add_kernel(kernel, ranks="all",
                    ops=[OpDecl("bcast", 0, SMI_FLOAT, scheme=scheme)])
    res = prog.run(max_cycles=100_000_000)
    assert res.completed, res.reason
    return max(marks.values())


def _reduce_cycles(n: int, scheme: str, credits: int | None = None) -> int:
    cfg = NOCTUA if credits is None else NOCTUA.with_(reduce_credits=credits)
    prog = SMIProgram(noctua_torus(), config=cfg)
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0)
        for i in range(n):
            yield from chan.reduce(float(smi.rank + i))
        marks[smi.rank] = smi.cycle

    prog.add_kernel(
        kernel, ranks="all",
        ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD, scheme=scheme)],
    )
    res = prog.run(max_cycles=100_000_000)
    assert res.completed, res.reason
    return max(marks.values())


SIZES = (4, 64, 1024, 4096)


def build_ablation_rows():
    rows = []
    for n in SIZES:
        lb = _bcast_cycles(n, "linear")
        tb = _bcast_cycles(n, "tree")
        # Reduce compared at a credit buffer covering the message, so the
        # scheme effect (root congestion) is isolated from tile stalls;
        # the credit-bound case is reported by the test below.
        lr = _reduce_cycles(n, "linear", credits=max(256, n))
        tr = _reduce_cycles(n, "tree", credits=max(256, n))
        rows.append([
            n,
            NOCTUA.cycles_to_us(lb), NOCTUA.cycles_to_us(tb),
            f"{lb / tb:.2f}x",
            NOCTUA.cycles_to_us(lr), NOCTUA.cycles_to_us(tr),
            f"{lr / tr:.2f}x",
        ])
    return rows


def test_tree_ablation_report(benchmark, capsys):
    rows = benchmark.pedantic(build_ablation_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["elems", "bcast linear [us]", "bcast tree [us]", "bcast gain",
             "reduce linear [us]", "reduce tree [us]", "reduce gain"],
            rows,
            title="Ablation: linear vs tree collectives (8 ranks, torus, "
                  "credits >= message)",
        ))
    # Small broadcast: tree's log-depth rendezvous+relay wins.
    small = rows[0]
    assert small[2] < small[1]
    # Large reduce: tree decongests the root (>=1.5x on 8 ranks).
    big = rows[-1]
    gain = float(big[6].rstrip("x"))
    assert gain > 1.5


def test_tree_reduce_credit_bound_regime(benchmark, capsys):
    """With the default C=256, large tree reductions become credit-bound:
    the strict top-down credit propagation stalls the whole tree at every
    tile boundary, eroding the scheme gain — an honest cost of the simple
    tree credit protocol."""
    n = 4096

    def measure():
        return (_reduce_cycles(n, "linear"), _reduce_cycles(n, "tree"),
                _reduce_cycles(n, "linear", credits=n),
                _reduce_cycles(n, "tree", credits=n))

    lin_c, tree_c, lin_f, tree_f = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    with capsys.disabled():
        print(f"\nreduce 4096 elems: credit-bound linear/tree = "
              f"{lin_c}/{tree_c} cycles (gain {lin_c/tree_c:.2f}x); "
              f"credit-free = {lin_f}/{tree_f} (gain {lin_f/tree_f:.2f}x)")
    assert lin_f / tree_f > lin_c / tree_c  # stalls erode the tree gain


def test_bench_tree_reduce_point(benchmark):
    cycles = benchmark.pedantic(
        lambda: _reduce_cycles(512, "tree"), rounds=1, iterations=1
    )
    assert cycles > 0
