"""Fig. 16 — stencil weak scaling: average time per grid point (ns) for
varying grid sizes, 4 memory banks, 4 vs 8 ranks, 32 iterations.

Expected shape: ns/point decreases with grid size (fixed halo overheads
amortise) and converges to a compute-bound asymptote where "8 FPGAs achieve
a 2x speedup over 4 FPGAs".
"""

import pytest

from repro.apps.stencil import StencilModel
from repro.harness import Comparison, format_table, paperdata

ITERS = 32


def build_fig16_series() -> dict[str, dict[int, float]]:
    model = StencilModel()
    out4, out8 = {}, {}
    for size in paperdata.FIG16_GRID_SIZES:
        out4[size] = model.ns_per_point(size, size, ITERS, 4, 4, (2, 2))
        out8[size] = model.ns_per_point(size, size, ITERS, 4, 8, (2, 4))
    return {"4 Ranks": out4, "8 Ranks": out8}


def test_fig16_report(benchmark, capsys):
    series = benchmark.pedantic(build_fig16_series, rounds=1, iterations=1)
    rows = []
    for size in paperdata.FIG16_GRID_SIZES:
        rows.append([
            f"{size}x{size}",
            paperdata.FIG16_NS_PER_POINT_4RANKS[size],
            round(series["4 Ranks"][size], 3),
            paperdata.FIG16_NS_PER_POINT_8RANKS[size],
            round(series["8 Ranks"][size], 3),
        ])
    with capsys.disabled():
        print()
        print(format_table(
            ["grid", "paper 4R [ns]", "measured 4R [ns]",
             "paper 8R [ns]", "measured 8R [ns]"],
            rows, title="Fig. 16: stencil weak scaling (ns per grid point)"
        ))

    four = [series["4 Ranks"][s] for s in paperdata.FIG16_GRID_SIZES]
    eight = [series["8 Ranks"][s] for s in paperdata.FIG16_GRID_SIZES]
    # Decreasing towards an asymptote.
    assert four == sorted(four, reverse=True)
    assert eight == sorted(eight, reverse=True)
    # 8 ranks beat 4 ranks at every size; ~2x at large grids (§5.4.2).
    for a, b in zip(four, eight):
        assert b < a
    assert four[-1] / eight[-1] == pytest.approx(2.0, rel=0.15)
    # Large-grid asymptote near the paper's ~1.1-1.2 ns (4 ranks).
    assert four[-1] == pytest.approx(
        paperdata.FIG16_NS_PER_POINT_4RANKS[16384], rel=0.25
    )


def test_fig16_anchor_comparison(benchmark):
    cmp = Comparison("Fig. 16 anchors", unit="ns/point")
    series = benchmark.pedantic(build_fig16_series, rounds=1, iterations=1)
    for size in (1024, 4096, 16384):
        cmp.add(f"4R {size}^2", paperdata.FIG16_NS_PER_POINT_4RANKS[size],
                round(series["4 Ranks"][size], 3))
        cmp.add(f"8R {size}^2", paperdata.FIG16_NS_PER_POINT_8RANKS[size],
                round(series["8 Ranks"][size], 3))
    # All anchors within 2x (figure values are curve reads).
    assert cmp.max_abs_log_ratio() < 1.0


def test_bench_fig16(benchmark):
    model = StencilModel()

    def sweep():
        return [
            model.ns_per_point(s, s, ITERS, 4, 8, (2, 4))
            for s in paperdata.FIG16_GRID_SIZES
        ]

    values = benchmark.pedantic(sweep, rounds=3, iterations=2)
    assert len(values) == len(paperdata.FIG16_GRID_SIZES)
