"""Ablation: buffer sizing — endpoint FIFO depth and Reduce credits.

§4.2: "By increasing the buffer size, a sending rank can commit more data
to the network while continuing computations, which can in some cases
improve the overall runtime. This is considered an optimization parameter."

§4.4: the Reduce credit count C trades root buffer space against
credit-round-trip stalls (each tile boundary costs a latency-bound sync).
"""

import pytest

from repro import NOCTUA, SMI_ADD, SMI_FLOAT, SMI_INT, SMIProgram, bus, noctua_torus
from repro.codegen.metadata import OpDecl
from repro.harness import format_table


def bursty_producer_runtime_cycles(depth: int) -> int:
    """A producer alternating bursts of pushes with local compute: deeper
    endpoint buffers absorb the bursts and shorten the overall runtime."""
    # Short-cable configuration: the default 219-cycle link stores a
    # ~113-packet bandwidth-delay product that would absorb the whole
    # message; shrinking it isolates the *endpoint* buffer effect.
    cfg = NOCTUA.with_(endpoint_fifo_depth=depth, link_latency_cycles=16)
    prog = SMIProgram(bus(2), config=cfg)
    bursts, burst_len = 24, 35  # 5 packets per burst
    n = bursts * burst_len
    marks: dict[str, int] = {}

    def producer(smi):
        ch = smi.open_send_channel(n, SMI_INT, 1, 0)
        for _ in range(bursts):
            for i in range(burst_len):
                yield from smi.push(ch, i)
            yield smi.wait(20)  # local computation between bursts
        marks["end"] = smi.cycle

    def slow_consumer(smi):
        ch = smi.open_recv_channel(n, SMI_INT, 0, 0)
        for _ in range(n):
            yield from smi.pop(ch)
            yield smi.wait(3)  # consumer slower than the producer

    prog.add_kernel(producer, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(slow_consumer, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=10_000_000)
    assert res.completed, res.reason
    return marks["end"]


def reduce_runtime_cycles(credits: int, n: int = 3000) -> int:
    cfg = NOCTUA.with_(reduce_credits=credits)
    prog = SMIProgram(noctua_torus(), config=cfg)
    marks: dict[int, int] = {}

    def kernel(smi):
        chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0)
        for i in range(n):
            yield from chan.reduce(float(i))
        marks[smi.rank] = smi.cycle

    prog.add_kernel(
        kernel, ranks="all",
        ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)],
    )
    res = prog.run(max_cycles=100_000_000)
    assert res.completed, res.reason
    return max(marks.values())


DEPTHS = (1, 2, 4, 8, 16, 64)
CREDITS = (16, 64, 256, 1024)


def build_depth_rows():
    return [[d, bursty_producer_runtime_cycles(d)] for d in DEPTHS]


def build_credit_rows():
    return [[c, reduce_runtime_cycles(c)] for c in CREDITS]


def test_endpoint_depth_ablation(benchmark, capsys):
    rows = benchmark.pedantic(build_depth_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["endpoint depth [pkts]", "producer runtime [cycles]"],
            rows, title="Ablation: endpoint FIFO depth (§4.2)"
        ))
    runtimes = {d: t for d, t in rows}
    # Deeper buffers let the producer run ahead: monotone improvement
    # until the buffer covers the burst, then it flattens out.
    assert runtimes[64] < runtimes[1]
    assert runtimes[16] <= runtimes[2]
    # Correctness never depended on the depth (§3.3): all runs completed.


def test_reduce_credit_ablation(benchmark, capsys):
    rows = benchmark.pedantic(build_credit_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["credits C [elems]", "reduce runtime [cycles]"],
            rows, title="Ablation: Reduce credit buffer C (§4.4)"
        ))
    runtimes = {c: t for c, t in rows}
    # More credits => fewer latency-bound tile stalls => faster.
    assert runtimes[1024] < runtimes[16]
    # Diminishing returns once tiles are rare.
    gain_small = runtimes[16] - runtimes[64]
    gain_large = runtimes[256] - runtimes[1024]
    assert gain_small > gain_large


def test_bench_buffer_point(benchmark):
    cycles = benchmark.pedantic(
        lambda: bursty_producer_runtime_cycles(8), rounds=1, iterations=1
    )
    assert cycles > 0
