"""SMI transport layer: communication kernels, packing, collectives, builder."""

from .arbiter import PollingArbiter
from .builder import RankTransport, Transport, build_transport
from .ck import CKR, CKS
from .collectives import (
    SUPPORT_KERNELS,
    BcastKernel,
    CollectiveDescriptor,
    GatherKernel,
    ReduceKernel,
    ScatterKernel,
    SupportKernel,
)
from .packing import PacketPacker, PacketUnpacker
