"""Input polling arbitration for communication kernels (§4.3).

A CKS/CKR module has several input connections (application endpoints, the
paired CKR/CKS, other communication kernels, the network). The reference
implementation polls them with a configurable scheme: "when a CKS/CKR module
receives a packet from an incoming connection, it keeps reading from the same
connection up to R times (where R is an optimization parameter) while data is
available, before continuing to poll other ports. With R = 1, the CKS module
polls a different connection every cycle."

The arbiter below reproduces that behaviour cycle-by-cycle:

* polling an empty input costs one cycle and advances the pointer;
* a readable input is drained for up to R packets (one per cycle);
* when *all* inputs are empty the simulator parks the kernel on a wait-any
  condition instead of burning idle cycles; on wake-up it charges exactly the
  number of scan cycles the hardware pointer would have spent reaching the
  readable input, so the timing is identical to literal polling.

In burst mode the loop's full resume state lives on the arbiter object
rather than in generator locals, so the supply-schedule planner
(:mod:`repro.transport.planner`) can plan windows for this kernel from a
*peer's* engine event — extending a sleeping kernel's window, or waking a
parked one with its next window already committed (``_coplanned``).

Resume-state fields (the contract between this loop and the planner):

``_idx``
    The hardware polling pointer: index of the input the *next* poll
    inspects. Every committed window stores the pointer position the
    per-flit loop would have reached at the window's end, so per-flit
    resumption and later plans start from the identical rotation state.
``_resume_reads``
    ``-1`` when the next poll opens a FRESH round; ``>= 0`` when an
    R-round on ``inputs[_idx]`` is still open with that many reads done
    (a window may end mid-round — e.g. at an unknown-supply boundary —
    and the round's remaining budget must survive the resume).
``_plan_until``
    Absolute end cycle of the last committed window. While it lies in
    the future the loop sleeps it off in one event; peers' cascades move
    it further while this kernel sleeps. Committed takes/stages never
    extend past it, so state at ``_plan_until`` is exactly per-flit.
``_resume_state``
    What the kernel is doing *right now*: ``"run"`` (mid per-flit step —
    not co-plannable), ``"window"`` (sleeping off a committed window —
    extendable from ``_plan_until``), or ``"parked"`` (blocked on a
    wait-any of all inputs — co-plannable after an emulated wake-up).
``_coplanned`` / ``_blocked_on`` / ``_starved_on``
    Cross-event mailboxes: a peer's cascade marks a parked kernel whose
    wake it pre-planned, and every window records which FIFO's unknown
    backpressure or supply ended it, so the cascade only re-plans peers
    whose blocker actually changed.
``_pattern`` / ``_pattern_hist`` / ``_pattern_phase`` / ``_pattern_end``
    The steady-state replication plane: the confirmed
    :class:`~repro.transport.planner.WindowPattern` (or ``None``), the
    recent contiguous window signatures the detector folds periods out
    of, the index of the next window expected in a live pattern's
    cycle, and the absolute cycle the pattern's last committed round
    ends at — replication only ever continues a pattern contiguously
    from ``_pattern_end`` at phase 0.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..core.errors import SimulationError
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from ..simulation.stats import GapHistogram, PlannerStats


class PollingArbiter:
    """Round-robin R-burst polling over a fixed list of input FIFOs.

    ``record_accepts`` (opt-in) keeps a bounded :class:`GapHistogram` of
    inter-accept gaps for the polling ablation benchmark; the default is
    off so a long-running kernel carries no per-packet state.
    """

    __slots__ = ("inputs", "read_burst", "_idx", "packets_accepted",
                 "_wait_conds", "accept_hist", "_plan_miss", "_plan_skip",
                 "_plan_skip_len", "_resume_reads", "_plan_until",
                 "_resume_state", "_coplanned", "_blocked_on",
                 "_starved_on", "_pattern", "_pattern_hist",
                 "_pattern_phase", "_pattern_end", "_rep_miss",
                 "_rep_skip", "_rep_skip_len", "planner_stats")

    #: Consecutive planner misses before backing off, and how many polls
    #: to skip planning for once backed off — doubling on every repeat up
    #: to the cap, so workloads the planner can prove nothing about (or
    #: only single-take windows) converge to per-flit speed. A successful
    #: multi-take window resets the backoff. (Backing off never changes
    #: cycle counts — planning is cycle-neutral — only wall-clock speed.)
    PLAN_MISS_LIMIT = 2
    PLAN_SKIP_POLLS = 256
    PLAN_SKIP_MAX = 8192

    #: Initial replication-futility skip length (doubled by
    #: :meth:`SupplyPlanner._note_train` up to ``REP_SKIP_MAX`` there).
    REP_SKIP_POLLS = 64

    def __init__(self, inputs: list[Fifo], read_burst: int,
                 record_accepts: bool = False) -> None:
        if not inputs:
            raise SimulationError("polling arbiter needs at least one input")
        if read_burst < 1:
            raise SimulationError("read burst (R) must be >= 1")
        self.inputs = inputs
        self.read_burst = read_burst
        self._idx = 0
        self.packets_accepted = 0
        self.accept_hist: GapHistogram | None = (
            GapHistogram() if record_accepts else None
        )
        self._wait_conds = tuple(f.can_pop for f in inputs)
        self._plan_miss = 0
        self._plan_skip = 0
        self._plan_skip_len = self.PLAN_SKIP_POLLS
        # Planner resume state (see module docstring):
        self._resume_reads = -1       # >= 0: continue an open R-round
        self._plan_until = 0          # absolute end of the committed window
        self._resume_state = "run"    # "run" | "parked" | "window"
        self._coplanned = False       # a peer planned our window while parked
        self._blocked_on = None       # fifo backpressure that ended the last
        self._starved_on = None       # window / the input that starved it
        self._pattern = None          # confirmed WindowPattern (or None)
        self._pattern_hist: list = []  # recent (signature, end) windows
        self._pattern_phase = 0       # next expected window in the cycle
        self._pattern_end = 0         # absolute end of the pattern's train
        # Replication futility backoff (SupplyPlanner._note_train): when
        # recent trains keep committing single rounds, the saturated
        # steady state has nothing for replication to amortise — skip
        # the attempts (and the trace/signature tax) for a while.
        self._rep_miss = 0
        self._rep_skip = 0
        self._rep_skip_len = self.REP_SKIP_POLLS
        self.planner_stats = PlannerStats()

    def reset_backoff(self) -> None:
        """Forget all planning/replication futility state.

        Called by :meth:`SupplyPlanner.reset_backoff` when a plane is
        (re)wired: backoff lengths learned against one configuration say
        nothing about another. ``build_transport`` always constructs
        fresh arbiters, so there the call only pins the invariant; it
        has teeth for any wiring path that attaches already-running CKs
        to a planner (a long-lived ``SOLO_PLANNER`` wired by hand, a
        harness rewiring a plane in place).
        """
        self._plan_miss = 0
        self._plan_skip = 0
        self._plan_skip_len = self.PLAN_SKIP_POLLS
        self._rep_miss = 0
        self._rep_skip = 0
        self._rep_skip_len = self.REP_SKIP_POLLS

    def record_accept(self, cycle: int) -> None:
        """Count one accepted packet (histogram only if opted in)."""
        self.packets_accepted += 1
        if self.accept_hist is not None:
            self.accept_hist.record(cycle)

    def run(self, forward: Callable, engine, planner=None) -> Generator:
        """The kernel main loop: poll, and hand packets to ``forward``.

        ``forward(packet)`` must be a generator that completes the same-cycle
        routing decision and staging of the packet (it may internally stall
        on backpressure). One packet is accepted per cycle at most.

        ``planner(ck, engine, resume_reads, skip)``, if given, is the burst
        fast path (:meth:`repro.transport.planner.SupplyPlanner.plan`): a
        plain call that simulates this very loop forward over the *known*
        future, commits every take/stage it proved, stores the resume state
        on this arbiter (``_plan_until``/``_idx``/``_resume_reads``) and
        returns a truthy value — the loop then sleeps the whole committed
        window in one engine event and resumes in the exact per-flit state.
        ``None`` means nothing was provable; fall back to one per-flit
        step. While this kernel sleeps or parks, a peer's cascade may
        commit further windows on its behalf: a sleeping kernel simply
        finds ``_plan_until`` moved when it wakes, a parked one is
        preempted with ``_coplanned`` set and skips its wake-up scan.
        """
        inputs = self.inputs
        n = len(inputs)
        burst = self.read_burst
        while True:
            if planner is not None:
                until = self._plan_until
                if until > engine.cycle:
                    # A committed window (own, or planned by a peer's
                    # cascade) covers the near future: sleep it off.
                    self._resume_state = "window"
                    yield WaitCycles(until - engine.cycle)
                    self._resume_state = "run"
                    continue
                if self._plan_skip:
                    self._plan_skip -= 1
                else:
                    before = self.packets_accepted
                    plan = planner(self, engine, self._resume_reads, 0)
                    if plan is not None and \
                            self.packets_accepted - before > 3:
                        self._plan_miss = 0
                        self._plan_skip_len = self.PLAN_SKIP_POLLS
                    else:
                        # A failed attempt — or a window so short that
                        # planning cost more than the events it saved.
                        self._plan_miss += 1
                        if self._plan_miss >= self.PLAN_MISS_LIMIT:
                            # Nothing batchable here lately: poll per-flit
                            # for a while before trying to plan again,
                            # backing off harder each time it recurs.
                            self._plan_miss = 0
                            self._plan_skip = self._plan_skip_len
                            if self._plan_skip_len < self.PLAN_SKIP_MAX:
                                self._plan_skip_len *= 2
                    if plan is not None:
                        continue
            resume_reads = self._resume_reads
            fifo = inputs[self._idx]
            if resume_reads >= 0 or fifo.readable:
                reads = max(resume_reads, 0)
                self._resume_reads = -1
                if reads < burst and fifo.readable:
                    pkt = fifo.take()
                    self.record_accept(engine.cycle)
                    if engine.trace is not None:
                        engine.trace.emit(engine.cycle, "grant", fifo.name,
                                          "grant", args={"input": self._idx})
                    yield from forward(pkt)
                    reads += 1
                    if reads < burst:
                        # Stay in the round; the planner gets another look
                        # before the next per-flit read.
                        self._resume_reads = reads
                        continue
                self._idx = (self._idx + 1) % n
            else:
                self._idx = (self._idx + 1) % n
                if any(f.readable for f in inputs):
                    # Some other input has data: the scan costs this cycle.
                    yield TICK
                else:
                    # Nothing anywhere: park until any input becomes
                    # readable, then charge the scan distance the hardware
                    # pointer would have travelled.
                    self._resume_state = "parked"
                    yield self._wait_conds
                    self._resume_state = "run"
                    if self._coplanned:
                        # A peer's cascade planned our window while we were
                        # parked (and already emulated this wake-up): the
                        # loop top picks up the committed state.
                        self._coplanned = False
                        continue
                    scan = 0
                    while scan < n and not inputs[self._idx].readable:
                        self._idx = (self._idx + 1) % n
                        scan += 1
                    if scan:
                        if planner is not None and not self._plan_skip:
                            # Fuse the scan charge into the plan's sleep.
                            plan = planner(self, engine, -1, scan)
                            if plan is not None:
                                continue
                        yield WaitCycles(scan)
