"""Input polling arbitration for communication kernels (§4.3).

A CKS/CKR module has several input connections (application endpoints, the
paired CKR/CKS, other communication kernels, the network). The reference
implementation polls them with a configurable scheme: "when a CKS/CKR module
receives a packet from an incoming connection, it keeps reading from the same
connection up to R times (where R is an optimization parameter) while data is
available, before continuing to poll other ports. With R = 1, the CKS module
polls a different connection every cycle."

The arbiter below reproduces that behaviour cycle-by-cycle:

* polling an empty input costs one cycle and advances the pointer;
* a readable input is drained for up to R packets (one per cycle);
* when *all* inputs are empty the simulator parks the kernel on a wait-any
  condition instead of burning idle cycles; on wake-up it charges exactly the
  number of scan cycles the hardware pointer would have spent reaching the
  readable input, so the timing is identical to literal polling.
"""

from __future__ import annotations

from typing import Callable, Generator

from ..core.errors import SimulationError
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo


class PollingArbiter:
    """Round-robin R-burst polling over a fixed list of input FIFOs."""

    __slots__ = ("inputs", "read_burst", "_idx", "packets_accepted",
                 "_wait_conds", "accept_cycles")

    def __init__(self, inputs: list[Fifo], read_burst: int) -> None:
        if not inputs:
            raise SimulationError("polling arbiter needs at least one input")
        if read_burst < 1:
            raise SimulationError("read burst (R) must be >= 1")
        self.inputs = inputs
        self.read_burst = read_burst
        self._idx = 0
        self.packets_accepted = 0
        self.accept_cycles: list[int] = []
        self._wait_conds = tuple(f.can_pop for f in inputs)

    def run(self, forward: Callable, engine) -> Generator:
        """The kernel main loop: poll, and hand packets to ``forward``.

        ``forward(packet)`` must be a generator that completes the same-cycle
        routing decision and staging of the packet (it may internally stall
        on backpressure). One packet is accepted per cycle at most.
        """
        inputs = self.inputs
        n = len(inputs)
        burst = self.read_burst
        while True:
            fifo = inputs[self._idx]
            if fifo.readable:
                reads = 0
                while reads < burst and fifo.readable:
                    pkt = fifo.take()
                    self.packets_accepted += 1
                    self.accept_cycles.append(engine.cycle)
                    yield from forward(pkt)
                    reads += 1
                self._idx = (self._idx + 1) % n
            else:
                self._idx = (self._idx + 1) % n
                if any(f.readable for f in inputs):
                    # Some other input has data: the scan costs this cycle.
                    yield TICK
                else:
                    # Nothing anywhere: park until any input becomes
                    # readable, then charge the scan distance the hardware
                    # pointer would have travelled.
                    yield self._wait_conds
                    scan = 0
                    while scan < n and not inputs[self._idx].readable:
                        self._idx = (self._idx + 1) % n
                        scan += 1
                    if scan:
                        yield WaitCycles(scan)
