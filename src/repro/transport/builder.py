"""Transport construction: from program metadata to running hardware.

This is the simulator-side equivalent of the paper's code generator output
(Fig. 8): given the per-rank operation metadata, the topology and the routing
tables, instantiate every CKS/CKR pair, endpoint FIFO, inter-CK connection
and collective support kernel, and spawn them as daemon processes.

Per rank, one CKS/CKR pair is created for every *used* network interface
(the wired ones, or a single loopback pair for an isolated rank) — matching
Table 1's configurations, where a 1-QSFP build instantiates one pair and a
4-QSFP build four pairs plus the quadratically growing interconnect.

Ports are assigned to interfaces round-robin in ascending port order, so the
load of multiple endpoints spreads across the CKS/CKR pairs; the assignment
is deterministic and derivable by every rank from the metadata alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.metadata import OpDecl, ProgramPlan, RankPlan
from ..core.config import HardwareConfig
from ..core.errors import CodegenError, RoutingError
from ..network.fabric import Fabric
from ..network.link import Link
from ..network.routing import Routes
from ..simulation.engine import Engine
from ..simulation.fifo import Fifo
from .ck import CKR, CKS
from .collectives import SupportKernel, kernel_class
from .planner import SupplyPlanner


@dataclass
class RankTransport:
    """Handles into one rank's transport hardware, used by the API layer."""

    rank: int
    active_ifaces: list[int]
    iface_of_port: dict[int, int]
    send_endpoints: dict[int, Fifo] = field(default_factory=dict)
    recv_endpoints: dict[int, Fifo] = field(default_factory=dict)
    coll_ctrl: dict[int, Fifo] = field(default_factory=dict)
    coll_app_in: dict[int, Fifo] = field(default_factory=dict)
    coll_app_out: dict[int, Fifo] = field(default_factory=dict)
    support_kernels: dict[int, SupportKernel] = field(default_factory=dict)
    cks: dict[int, CKS] = field(default_factory=dict)
    ckr: dict[int, CKR] = field(default_factory=dict)
    ops_by_port: dict[tuple[str, int], OpDecl] = field(default_factory=dict)

    def send_endpoint(self, port: int) -> Fifo:
        try:
            return self.send_endpoints[port]
        except KeyError:
            raise CodegenError(
                f"rank {self.rank}: no send endpoint declared on port {port} "
                "(all ports must be known at build time, §2.2)"
            ) from None

    def recv_endpoint(self, port: int) -> Fifo:
        try:
            return self.recv_endpoints[port]
        except KeyError:
            raise CodegenError(
                f"rank {self.rank}: no receive endpoint declared on port "
                f"{port} (all ports must be known at build time, §2.2)"
            ) from None


@dataclass
class Transport:
    """The whole cluster's transport: per-rank handles plus shared fabric.

    A *sharded* build (``build_transport(..., shard_ranks=...)``) carries
    only the shard's own ranks and the links touching them; every
    directed link with exactly one endpoint inside the shard is listed in
    ``boundaries`` as ``(link, src_is_local)``, ready for the sharded
    backend to attach its :mod:`repro.shard.proxy` endpoints.
    """

    config: HardwareConfig
    routes: Routes
    fabric: Fabric
    ranks: dict[int, RankTransport]
    boundaries: list = field(default_factory=list)

    def rank(self, rank: int) -> RankTransport:
        return self.ranks[rank]


def _endpoint_depth(config: HardwareConfig, decl: OpDecl | None) -> int:
    if decl is not None and decl.buffer_depth is not None:
        return decl.buffer_depth
    return config.endpoint_fifo_depth


class _RouteProbe:
    """Packet stand-in for the static liveness walk (routing reads dst/port)."""

    __slots__ = ("src", "dst", "port")

    def __init__(self, src: int, dst: int, port: int) -> None:
        self.src = src
        self.dst = dst
        self.port = port


def _mark_flow_liveness(
    plan: ProgramPlan,
    ranks: dict[int, RankTransport],
    transit: list[Fifo],
) -> None:
    """Statically mark transport FIFOs no declared flow can ever traverse.

    For every declared send-capable operation, walk the packet's route
    through the *actual* CKS/CKR routing functions (one walk per possible
    destination; ``OpDecl.peer`` narrows that to one). Transit FIFOs not
    visited by any walk are marked ``flow_dead``: the burst planner may
    then treat them as provably empty at any future cycle, which is what
    lets it plan whole multi-round polling windows in a single engine
    event. Collective support kernels generate traffic patterns that
    depend on runtime communicators, so any collective declaration keeps
    every transit FIFO live (the analysis only ever errs towards "live").
    """
    if any(p.collective_ops() for p in plan.rank_plans.values()):
        return
    visited: set[int] = set()
    num_ranks = plan.num_ranks
    for rank, rank_plan in plan.rank_plans.items():
        for port, decl in rank_plan.send_ports().items():
            dsts = [decl.peer] if decl.peer is not None else range(num_ranks)
            for dst in dsts:
                _walk_flow(ranks, visited, rank, dst, port)
    for f in transit:
        if id(f) not in visited:
            f.flow_dead = True


def _walk_flow(
    ranks: dict[int, RankTransport],
    visited: set[int],
    src: int,
    dst: int,
    port: int,
) -> None:
    """Visit every transit FIFO the flow ``src -> dst`` on ``port`` crosses."""
    rt = ranks[src]
    if port not in rt.iface_of_port:
        return
    probe = _RouteProbe(src, dst, port)
    module: tuple[str, int, int] | None = ("cks", src, rt.iface_of_port[port])
    # A route can cross at most every CK module once; anything longer is a
    # wiring loop and the guard below turns it into a loud failure.
    guard = 4 * sum(len(r.cks) + len(r.ckr) for r in ranks.values()) + 4
    for _ in range(guard):
        kind, rank, iface = module
        ck = ranks[rank].cks[iface] if kind == "cks" else ranks[rank].ckr[iface]
        try:
            out = ck._route(probe)
        except RoutingError:
            return  # unreachable destination: no packet can take this path
        if isinstance(out, Link):
            visited.add(id(out.fifo))
            nrank, niface = out.dst
            module = ("ckr", nrank, niface)
            continue
        visited.add(id(out))
        nxt = _find_consumer(ranks, out)
        if nxt is None:
            return  # delivered to a receive endpoint: walk complete
        module = nxt
    raise CodegenError(
        f"flow-liveness walk {src}->{dst} port {port} did not terminate — "
        "transport wiring loop?"
    )


def _mark_flow_liveness_sharded(
    plan: ProgramPlan,
    routes: Routes,
    ranks: dict[int, RankTransport],
    fabric: Fabric,
    transit: list[Fifo],
) -> None:
    """Static flow-liveness for one shard of a partitioned fabric.

    The sequential analysis (:func:`_mark_flow_liveness`) walks flows
    through the *live* CK modules, which a shard does not have for
    remote ranks. The CK routing functions are pure table lookups,
    though, so this variant walks the same flows through the routing
    tables directly — crossing remote ranks abstractly and marking only
    the FIFOs that exist in this shard (internal transit FIFOs of local
    ranks, plus every boundary link the flow traverses). The result is
    the same set of locally-visible live FIFOs the sequential walk would
    produce; anything else is provably flow-dead, which is what keeps
    the per-shard burst planner's silence proofs (and therefore its
    windows) as strong as the sequential planner's.
    """
    if any(p.collective_ops() for p in plan.rank_plans.values()):
        return
    topology = routes.topology
    num_ranks = plan.num_ranks
    # Every rank's port->iface assignment, derivable from the metadata
    # alone by the builder's deterministic round-robin rule.
    iface_of_port: dict[int, dict[int, int]] = {}
    for rank in range(num_ranks):
        rank_plan = plan.rank_plans.get(rank)
        active = topology.interfaces_of(rank) or [0]
        ports = rank_plan.ports if rank_plan is not None else []
        iface_of_port[rank] = {
            port: active[idx % len(active)] for idx, port in enumerate(ports)
        }
    visited: set[int] = set()

    def mark(fifo) -> None:
        if fifo is not None:
            visited.add(id(fifo))

    guard = 4 * num_ranks * max(1, topology.num_interfaces) + 4
    for rank, rank_plan in plan.rank_plans.items():
        for port, decl in rank_plan.send_ports().items():
            if port not in iface_of_port[rank]:
                continue
            dsts = [decl.peer] if decl.peer is not None else range(num_ranks)
            for dst in dsts:
                kind, r, i = "cks", rank, iface_of_port[rank][port]
                for _ in range(guard):
                    rt = ranks.get(r)
                    if kind == "cks":
                        if dst == r:
                            if rt is not None:
                                mark(rt.cks[i].to_paired_ckr)
                            kind = "ckr"
                            continue
                        egress = routes.next_iface[r].get(dst)
                        if egress is None:
                            break  # unreachable: no packet takes this path
                        if egress == i:
                            link = fabric.tx_link.get((r, i))
                            if link is not None:
                                mark(link.fifo)
                            peer = topology.peer(r, i)
                            if peer is None:
                                break  # unwired egress: unroutable
                            kind, (r, i) = "ckr", peer
                        else:
                            if rt is not None:
                                mark(rt.cks[i].to_other_cks.get(egress))
                            i = egress
                    else:  # ckr
                        if dst != r:
                            if rt is not None:
                                mark(rt.ckr[i].to_paired_cks)
                            kind = "cks"
                            continue
                        home = iface_of_port[r].get(port)
                        if home is None or home == i:
                            break  # delivered (or no endpoint declared)
                        if rt is not None:
                            mark(rt.ckr[i].to_other_ckr.get(home))
                        i = home
                else:
                    raise CodegenError(
                        f"sharded flow-liveness walk {rank}->{dst} port "
                        f"{port} did not terminate — transport wiring loop?"
                    )
    for f in transit:
        if id(f) not in visited:
            f.flow_dead = True


def _find_consumer(
    ranks: dict[int, RankTransport], fifo: Fifo
) -> tuple[str, int, int] | None:
    """The CK module reading ``fifo``, or None for app-side endpoints."""
    for rank, rt in ranks.items():
        for i, cks in rt.cks.items():
            if fifo is cks.to_paired_ckr:
                return ("ckr", rank, i)
            for j, f in cks.to_other_cks.items():
                if fifo is f:
                    return ("cks", rank, j)
        for i, ckr in rt.ckr.items():
            if fifo is ckr.to_paired_cks:
                return ("cks", rank, i)
            for j, f in ckr.to_other_ckr.items():
                if fifo is f:
                    return ("ckr", rank, j)
    return None


def build_transport(
    engine: Engine,
    plan: ProgramPlan,
    routes: Routes,
    config: HardwareConfig,
    validate_wire: bool = False,
    shard_ranks: frozenset[int] | set[int] | None = None,
) -> Transport:
    """Instantiate and spawn the full transport for ``plan``.

    With ``shard_ranks`` the build is one shard's *plane* of a
    partitioned fabric: only those ranks' CK pairs, endpoints and
    support kernels are instantiated, the fabric keeps only links
    touching the shard, and cut links are reported in
    ``Transport.boundaries``. Static flow-liveness is skipped (its walk
    needs every rank's routing modules); the planner stays cycle-exact
    without it, merely conservative. The supply planner is wired
    per-shard, so planning cascades stop at the cut — the boundary
    proxies' committed supply schedules and pinned horizons are all a
    shard ever learns about its neighbours.
    """
    plan.validate()
    # Peer declarations must name ranks that exist, regardless of whether
    # the flow-liveness analysis (which consumes them) will run.
    for rank, rank_plan in plan.rank_plans.items():
        for decl in rank_plan.ops:
            if decl.peer is not None and decl.peer >= plan.num_ranks:
                raise CodegenError(
                    f"rank {rank} port {decl.port}: declared peer "
                    f"{decl.peer} does not exist (program has "
                    f"{plan.num_ranks} ranks)"
                )
    topology = routes.topology
    if plan.num_ranks > topology.num_ranks:
        raise CodegenError(
            f"program uses {plan.num_ranks} ranks but topology "
            f"{topology.name!r} has only {topology.num_ranks}"
        )
    fabric = Fabric(engine, topology, config, validate_wire=validate_wire,
                    local_ranks=shard_ranks)
    ranks: dict[int, RankTransport] = {}
    transit: list[Fifo] = [link.fifo for link in fabric.links()]

    for rank in range(plan.num_ranks):
        if shard_ranks is not None and rank not in shard_ranks:
            continue
        rank_plan = plan.rank_plans.get(rank, RankPlan(rank))
        active = topology.interfaces_of(rank) or [0]
        ports = rank_plan.ports
        iface_of_port = {
            port: active[idx % len(active)] for idx, port in enumerate(ports)
        }
        rt = RankTransport(rank=rank, active_ifaces=active,
                           iface_of_port=iface_of_port)
        ranks[rank] = rt

        send_decls = rank_plan.send_ports()
        recv_decls = rank_plan.recv_ports()
        for kind_map, kind in ((send_decls, "send"), (recv_decls, "recv")):
            for port, decl in kind_map.items():
                rt.ops_by_port[(kind, port)] = decl

        # --- endpoint FIFOs ------------------------------------------------
        # Endpoint FIFOs carry the HLS interface pipeline latency; their
        # capacity covers depth + latency so pipelining never throttles
        # the declared buffer depth (asynchronicity degree, §3.3).
        ep_lat = config.endpoint_latency_cycles
        for port, decl in send_decls.items():
            depth = _endpoint_depth(config, decl)
            rt.send_endpoints[port] = engine.fifo(
                f"rank{rank}.send_ep{port}",
                capacity=depth + ep_lat, latency=ep_lat,
            )
        for port, decl in recv_decls.items():
            depth = _endpoint_depth(config, decl)
            rt.recv_endpoints[port] = engine.fifo(
                f"rank{rank}.recv_ep{port}",
                capacity=depth + ep_lat, latency=ep_lat,
            )

        # --- inter-CK FIFOs -------------------------------------------------
        depth = config.inter_ck_fifo_depth
        cks2cks = {
            (i, j): engine.fifo(f"rank{rank}.cks{i}->cks{j}", depth)
            for i in active for j in active if i != j
        }
        ckr2ckr = {
            (i, j): engine.fifo(f"rank{rank}.ckr{i}->ckr{j}", depth)
            for i in active for j in active if i != j
        }
        ckr2cks = {i: engine.fifo(f"rank{rank}.ckr{i}->cks{i}", depth)
                   for i in active}
        cks2ckr = {i: engine.fifo(f"rank{rank}.cks{i}->ckr{i}", depth)
                   for i in active}
        transit.extend(cks2cks.values())
        transit.extend(ckr2ckr.values())
        transit.extend(ckr2cks.values())
        transit.extend(cks2ckr.values())

        # --- communication kernels ------------------------------------------
        egress = routes.next_iface[rank]
        port_home = dict(iface_of_port)
        for i in active:
            send_inputs = [
                rt.send_endpoints[p]
                for p in sorted(rt.send_endpoints)
                if iface_of_port[p] == i
            ]
            cks_inputs = (
                send_inputs
                + [ckr2cks[i]]
                + [cks2cks[(j, i)] for j in active if j != i]
            )
            cks = CKS(
                rank=rank, iface=i, inputs=cks_inputs,
                net_link=fabric.outgoing(rank, i),
                to_paired_ckr=cks2ckr[i],
                to_other_cks={j: cks2cks[(i, j)] for j in active if j != i},
                egress_iface=egress,
                read_burst=config.read_burst,
                burst_mode=config.burst_mode,
                record_accepts=config.record_accepts,
            )
            rt.cks[i] = cks
            cks.proc = engine.spawn(cks.process(engine), cks.name,
                                    daemon=True)

            net_in = fabric.incoming(rank, i)
            ckr_inputs = (
                ([net_in.fifo] if net_in is not None else [])
                + [ckr2ckr[(j, i)] for j in active if j != i]
                + [cks2ckr[i]]
            )
            ckr = CKR(
                rank=rank, iface=i, inputs=ckr_inputs,
                to_paired_cks=ckr2cks[i],
                to_other_ckr={j: ckr2ckr[(i, j)] for j in active if j != i},
                port_home_iface=port_home,
                recv_endpoints={
                    p: f for p, f in rt.recv_endpoints.items()
                    if iface_of_port[p] == i
                },
                read_burst=config.read_burst,
                burst_mode=config.burst_mode,
                record_accepts=config.record_accepts,
            )
            rt.ckr[i] = ckr
            ckr.proc = engine.spawn(ckr.process(engine), ckr.name,
                                    daemon=True)

        # --- collective support kernels --------------------------------------
        for decl in rank_plan.collective_ops():
            port = decl.port
            elem_capacity = config.endpoint_fifo_depth * decl.dtype.elements_per_packet
            ctrl = engine.fifo(f"rank{rank}.coll_ctrl{port}", capacity=4)
            app_in = engine.fifo(f"rank{rank}.coll_in{port}", capacity=elem_capacity)
            app_out = engine.fifo(f"rank{rank}.coll_out{port}", capacity=elem_capacity)
            rt.coll_ctrl[port] = ctrl
            rt.coll_app_in[port] = app_in
            rt.coll_app_out[port] = app_out
            kernel_cls = kernel_class(decl.kind, decl.scheme)
            kernel = kernel_cls(
                rank=rank, port=port, dtype=decl.dtype, config=config,
                ctrl=ctrl, app_in=app_in, app_out=app_out,
                send_ep=rt.send_endpoints[port],
                recv_ep=rt.recv_endpoints[port],
            )
            rt.support_kernels[port] = kernel
            kernel.proc = engine.spawn(kernel.process(engine), kernel.name,
                                       daemon=True)

    if config.burst_mode:
        # Only the burst planner consumes liveness and supply contracts;
        # the per-flit reference interpretation stays free of the analysis
        # (and its tripwires). A sharded build lacks remote ranks' CK
        # modules, so it runs the table-driven variant of the walk.
        if shard_ranks is None:
            _mark_flow_liveness(plan, ranks, transit)
        else:
            _mark_flow_liveness_sharded(plan, routes, ranks, fabric,
                                        transit)
        _wire_supply_planner(ranks, config)

    return Transport(config=config, routes=routes, fabric=fabric,
                     ranks=ranks, boundaries=fabric.boundary_links())


def _wire_supply_planner(ranks: dict[int, RankTransport],
                         config: HardwareConfig):
    """Publish the transport's supply-schedule contracts (burst mode only).

    Three facts the planner consumes are static properties of the wiring,
    so the builder declares them once:

    * every transit FIFO and link has exactly one *producer* CK process —
      registering it (``Fifo.register_producer``) enables producer-sleep
      horizons, transitively through parked CK chains and across links;
    * receive endpoints are written only by their home CKR, and a
      collective port's send endpoint and element stream only by its
      support kernel — registering those closes the loops the horizon
      recursion walks through app-facing layers;
    * every transit FIFO and link joins a single cluster-wide
      :class:`SupplyPlanner` with its producer and consumer CK, which is
      what lets one engine event plan windows across CK boundaries.

    App-written endpoints (p2p send endpoints, collective ``app_in`` /
    ``ctrl``) stay unregistered: kernels may push from helper processes
    the metadata cannot see, so their producer sets are not closed.

    ``config.pattern_replication`` gates the planner's steady-state
    replication plane for the whole cluster, and
    ``config.cruise_induction`` the cruise plane riding on it. Once the
    plane is wired, every arbiter's futility backoff is reset — a
    formality here (this builder always constructs fresh arbiters) that
    pins the invariant for every wiring path: a newly wired plane never
    inherits skip lengths escalated under another configuration.

    ``config.macro_cruise`` additionally marks every app-facing stream
    endpoint (p2p send and receive endpoints) with the planner as its
    ``macro_host``, so sleeping ``push_vec``/``pop_vec`` bursts register
    extendable lanes there, registers cross-shard boundary links in the
    planner's ``boundary_fifos`` (a fast-forward chain reaching one can
    never terminate on a recv lane, so the resolver refuses permanently
    and the shard drops the macro probe tax), and records every support
    kernel in the planner's plane registry — the global cruise condition consults it
    before raising the per-train take budget (an unfinished support
    kernel is an unproven plane, so macro degrades to ordinary cruise).
    """
    sp = SupplyPlanner(replication=config.pattern_replication,
                       cruise=config.cruise_induction,
                       macro=config.macro_cruise)
    for rt in ranks.values():
        for rank_cks in rt.cks.values():
            rank_cks.supply_planner = sp
        for rank_ckr in rt.ckr.values():
            rank_ckr.supply_planner = sp
    for rt in ranks.values():
        for i, cks in rt.cks.items():
            cks.to_paired_ckr.register_producer(cks.proc)
            sp.wire(cks.to_paired_ckr, producer=cks, consumer=rt.ckr[i])
            for j, fifo in cks.to_other_cks.items():
                fifo.register_producer(cks.proc)
                sp.wire(fifo, producer=cks, consumer=rt.cks[j])
            link = cks.net_link
            if link is not None:
                link.register_producer(cks.proc)
                dst_rank, dst_iface = link.dst
                # In a sharded build the far end may live in another
                # shard: the cascade then stops at the link — its fifo is
                # just another committed supply schedule to the peer.
                dst_rt = ranks.get(dst_rank)
                if dst_rt is not None:
                    sp.wire(link.fifo, producer=cks,
                            consumer=dst_rt.ckr[dst_iface])
                elif sp.macro:
                    # Boundary link of a sharded plane: the consumer CK
                    # is in another shard, so a macro chain walk ending
                    # here can never arm — register it so the resolver
                    # refuses permanently instead of probing every sweep.
                    sp.boundary_fifos.add(id(link.fifo))
        for i, ckr in rt.ckr.items():
            ckr.to_paired_cks.register_producer(ckr.proc)
            sp.wire(ckr.to_paired_cks, producer=ckr, consumer=rt.cks[i])
            for j, fifo in ckr.to_other_ckr.items():
                fifo.register_producer(ckr.proc)
                sp.wire(fifo, producer=ckr, consumer=rt.ckr[j])
            for fifo in ckr.recv_endpoints.values():
                fifo.register_producer(ckr.proc)
        for kernel in rt.support_kernels.values():
            kernel.send_ep.register_producer(kernel.proc)
            kernel.app_out.register_producer(kernel.proc)
        if sp.macro:
            for fifo in rt.send_endpoints.values():
                fifo.macro_host = sp
            for fifo in rt.recv_endpoints.values():
                fifo.macro_host = sp
            for kernel in rt.support_kernels.values():
                sp.support_planes.append(kernel)
    sp.reset_backoff()
    return sp
