"""Transport construction: from program metadata to running hardware.

This is the simulator-side equivalent of the paper's code generator output
(Fig. 8): given the per-rank operation metadata, the topology and the routing
tables, instantiate every CKS/CKR pair, endpoint FIFO, inter-CK connection
and collective support kernel, and spawn them as daemon processes.

Per rank, one CKS/CKR pair is created for every *used* network interface
(the wired ones, or a single loopback pair for an isolated rank) — matching
Table 1's configurations, where a 1-QSFP build instantiates one pair and a
4-QSFP build four pairs plus the quadratically growing interconnect.

Ports are assigned to interfaces round-robin in ascending port order, so the
load of multiple endpoints spreads across the CKS/CKR pairs; the assignment
is deterministic and derivable by every rank from the metadata alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..codegen.metadata import OpDecl, ProgramPlan, RankPlan
from ..core.config import HardwareConfig
from ..core.errors import CodegenError
from ..network.fabric import Fabric
from ..network.routing import Routes
from ..simulation.engine import Engine
from ..simulation.fifo import Fifo
from .ck import CKR, CKS
from .collectives import SupportKernel, kernel_class


@dataclass
class RankTransport:
    """Handles into one rank's transport hardware, used by the API layer."""

    rank: int
    active_ifaces: list[int]
    iface_of_port: dict[int, int]
    send_endpoints: dict[int, Fifo] = field(default_factory=dict)
    recv_endpoints: dict[int, Fifo] = field(default_factory=dict)
    coll_ctrl: dict[int, Fifo] = field(default_factory=dict)
    coll_app_in: dict[int, Fifo] = field(default_factory=dict)
    coll_app_out: dict[int, Fifo] = field(default_factory=dict)
    support_kernels: dict[int, SupportKernel] = field(default_factory=dict)
    cks: dict[int, CKS] = field(default_factory=dict)
    ckr: dict[int, CKR] = field(default_factory=dict)
    ops_by_port: dict[tuple[str, int], OpDecl] = field(default_factory=dict)

    def send_endpoint(self, port: int) -> Fifo:
        try:
            return self.send_endpoints[port]
        except KeyError:
            raise CodegenError(
                f"rank {self.rank}: no send endpoint declared on port {port} "
                "(all ports must be known at build time, §2.2)"
            ) from None

    def recv_endpoint(self, port: int) -> Fifo:
        try:
            return self.recv_endpoints[port]
        except KeyError:
            raise CodegenError(
                f"rank {self.rank}: no receive endpoint declared on port "
                f"{port} (all ports must be known at build time, §2.2)"
            ) from None


@dataclass
class Transport:
    """The whole cluster's transport: per-rank handles plus shared fabric."""

    config: HardwareConfig
    routes: Routes
    fabric: Fabric
    ranks: dict[int, RankTransport]

    def rank(self, rank: int) -> RankTransport:
        return self.ranks[rank]


def _endpoint_depth(config: HardwareConfig, decl: OpDecl | None) -> int:
    if decl is not None and decl.buffer_depth is not None:
        return decl.buffer_depth
    return config.endpoint_fifo_depth


def build_transport(
    engine: Engine,
    plan: ProgramPlan,
    routes: Routes,
    config: HardwareConfig,
    validate_wire: bool = False,
) -> Transport:
    """Instantiate and spawn the full transport for ``plan``."""
    plan.validate()
    topology = routes.topology
    if plan.num_ranks > topology.num_ranks:
        raise CodegenError(
            f"program uses {plan.num_ranks} ranks but topology "
            f"{topology.name!r} has only {topology.num_ranks}"
        )
    fabric = Fabric(engine, topology, config, validate_wire=validate_wire)
    ranks: dict[int, RankTransport] = {}

    for rank in range(plan.num_ranks):
        rank_plan = plan.rank_plans.get(rank, RankPlan(rank))
        active = topology.interfaces_of(rank) or [0]
        ports = rank_plan.ports
        iface_of_port = {
            port: active[idx % len(active)] for idx, port in enumerate(ports)
        }
        rt = RankTransport(rank=rank, active_ifaces=active,
                           iface_of_port=iface_of_port)
        ranks[rank] = rt

        send_decls = rank_plan.send_ports()
        recv_decls = rank_plan.recv_ports()
        for kind_map, kind in ((send_decls, "send"), (recv_decls, "recv")):
            for port, decl in kind_map.items():
                rt.ops_by_port[(kind, port)] = decl

        # --- endpoint FIFOs ------------------------------------------------
        # Endpoint FIFOs carry the HLS interface pipeline latency; their
        # capacity covers depth + latency so pipelining never throttles
        # the declared buffer depth (asynchronicity degree, §3.3).
        ep_lat = config.endpoint_latency_cycles
        for port, decl in send_decls.items():
            depth = _endpoint_depth(config, decl)
            rt.send_endpoints[port] = engine.fifo(
                f"rank{rank}.send_ep{port}",
                capacity=depth + ep_lat, latency=ep_lat,
            )
        for port, decl in recv_decls.items():
            depth = _endpoint_depth(config, decl)
            rt.recv_endpoints[port] = engine.fifo(
                f"rank{rank}.recv_ep{port}",
                capacity=depth + ep_lat, latency=ep_lat,
            )

        # --- inter-CK FIFOs -------------------------------------------------
        depth = config.inter_ck_fifo_depth
        cks2cks = {
            (i, j): engine.fifo(f"rank{rank}.cks{i}->cks{j}", depth)
            for i in active for j in active if i != j
        }
        ckr2ckr = {
            (i, j): engine.fifo(f"rank{rank}.ckr{i}->ckr{j}", depth)
            for i in active for j in active if i != j
        }
        ckr2cks = {i: engine.fifo(f"rank{rank}.ckr{i}->cks{i}", depth)
                   for i in active}
        cks2ckr = {i: engine.fifo(f"rank{rank}.cks{i}->ckr{i}", depth)
                   for i in active}

        # --- communication kernels ------------------------------------------
        egress = routes.next_iface[rank]
        port_home = dict(iface_of_port)
        for i in active:
            send_inputs = [
                rt.send_endpoints[p]
                for p in sorted(rt.send_endpoints)
                if iface_of_port[p] == i
            ]
            cks_inputs = (
                send_inputs
                + [ckr2cks[i]]
                + [cks2cks[(j, i)] for j in active if j != i]
            )
            cks = CKS(
                rank=rank, iface=i, inputs=cks_inputs,
                net_link=fabric.outgoing(rank, i),
                to_paired_ckr=cks2ckr[i],
                to_other_cks={j: cks2cks[(i, j)] for j in active if j != i},
                egress_iface=egress,
                read_burst=config.read_burst,
            )
            rt.cks[i] = cks
            engine.spawn(cks.process(engine), cks.name, daemon=True)

            net_in = fabric.incoming(rank, i)
            ckr_inputs = (
                ([net_in.fifo] if net_in is not None else [])
                + [ckr2ckr[(j, i)] for j in active if j != i]
                + [cks2ckr[i]]
            )
            ckr = CKR(
                rank=rank, iface=i, inputs=ckr_inputs,
                to_paired_cks=ckr2cks[i],
                to_other_ckr={j: ckr2ckr[(i, j)] for j in active if j != i},
                port_home_iface=port_home,
                recv_endpoints={
                    p: f for p, f in rt.recv_endpoints.items()
                    if iface_of_port[p] == i
                },
                read_burst=config.read_burst,
            )
            rt.ckr[i] = ckr
            engine.spawn(ckr.process(engine), ckr.name, daemon=True)

        # --- collective support kernels --------------------------------------
        for decl in rank_plan.collective_ops():
            port = decl.port
            elem_capacity = config.endpoint_fifo_depth * decl.dtype.elements_per_packet
            ctrl = engine.fifo(f"rank{rank}.coll_ctrl{port}", capacity=4)
            app_in = engine.fifo(f"rank{rank}.coll_in{port}", capacity=elem_capacity)
            app_out = engine.fifo(f"rank{rank}.coll_out{port}", capacity=elem_capacity)
            rt.coll_ctrl[port] = ctrl
            rt.coll_app_in[port] = app_in
            rt.coll_app_out[port] = app_out
            kernel_cls = kernel_class(decl.kind, decl.scheme)
            kernel = kernel_cls(
                rank=rank, port=port, dtype=decl.dtype, config=config,
                ctrl=ctrl, app_in=app_in, app_out=app_out,
                send_ep=rt.send_endpoints[port],
                recv_ep=rt.recv_endpoints[port],
            )
            rt.support_kernels[port] = kernel
            engine.spawn(kernel.process(engine), kernel.name, daemon=True)

    return Transport(config=config, routes=routes, fabric=fabric, ranks=ranks)
