"""Supply-schedule burst planning: the simulator's data-plane fast path.

The burst data plane moves whole polling windows through FIFO -> arbiter ->
CKS/CKR -> link in one engine event while staying cycle-identical to the
per-flit reference interpretation. This module is the planning layer that
makes that possible, organised around one contract:

**SupplySchedule.** Any flit source — an application channel's vectorised
push, a CK forwarding a planned window, a collective support kernel, an
inter-FPGA link — publishes ``(cycle, count)`` commitments about what it
will provably stage and when, simply by staging early with exact future
cycles; :meth:`repro.simulation.fifo.Fifo.present_schedule` exposes the
committed items and :meth:`Fifo.supply_horizon` the *horizon*: the cycle
below which no unknown arrival can turn visible. Horizons come from three
sources, in increasing power:

* the registered-FIFO handoff (``now + latency`` — a stage this cycle is
  invisible before that);
* static flow-liveness (a flow-dead FIFO is empty forever);
* **producer-sleep horizons**: with a closed, registered producer set, a
  producer blocked in the engine until cycle T provably stages nothing
  before T (:meth:`repro.simulation.engine.Engine.process_floor`), and the
  query recurses through parked producer chains — a CKS parked on inputs
  whose own producers sleep is itself asleep. This is what makes
  collective workloads plannable without static routes: runtime
  communicators keep every transit FIFO flow-live, but the support
  kernels' sleep states still bound every unknown.

:func:`plan_window` consumes supply schedules to simulate one CK's polling
loop forward over the known future only, committing every take/stage with
the exact per-flit cycles (R-round budgets, scan charges, parked gaps,
link pacing) and stopping at the first decision that depends on
information not yet in the simulation.

**Cascaded co-planning.** A single-CK plan saturates at one FIFO depth per
engine event on multi-hop paths: CK_a stages one ``inter_ck_fifo_depth``
window into the FIFO toward CK_b and stops at unknown backpressure; CK_b's
takes only become known at its own next event. :class:`SupplyPlanner`
breaks that fixpoint: when a committed plan stages into a FIFO whose
consumer CK is parked or sleeping a planned window, the consumer's next
window is planned *in the same engine event* (its commits are published as
the supply/slot schedule of the next hop), then the producer's plan is
extended against the freed slots, and so on along the pipeline — one
engine event plans a multi-hop stream end-to-end. Parked consumers get a
firm wake (:meth:`Engine.preempt`) since their planned takes may empty the
very FIFOs whose conditions would have woken them.
"""

from __future__ import annotations

from collections import deque
from heapq import merge as _heap_merge

from ..core.errors import RoutingError
from ..network.link import Link
from ..simulation.engine import FOREVER

#: Safety bound on planned takes per window (keeps commit lists small).
PLAN_MAX_TAKES = 2048

#: Snapshot depth per input per plan. Deeper queues (the link FIFOs hold a
#: full bandwidth-delay product) are cut here; the planner treats the cut
#: as an unknown-future boundary, which is always sound — and the cascade
#: re-snapshots on every extension, so truncation only bounds one pass.
PLAN_SNAPSHOT = 16

#: Total co-plan / extension attempts per cascade (per initiating event).
CASCADE_BUDGET = 64


class _TargetCursor:
    """Planning-time view of one routing target's future slot schedule.

    ``free``/``rels``/``rel_ptr``/``next_free`` mirror the per-flit
    ``_stage_with_backpressure`` stall model: a currently-free slot stages
    as soon as line pacing allows; a slot reserved by the consumer's own
    burst takes stages the cycle after it releases (the cycle a producer
    blocked on ``can_push`` would wake); with neither, the per-flit path
    would block open-endedly, so the plan must stop. The planner mirrors
    these fields into locals inside its hot loop and flushes them back on
    target switches.

    Cursors live for one cascade (one engine event) and are shared by all
    of its plan calls: a later extension must not re-pair a reserved slot
    release the first plan already staged against. :meth:`refresh` re-reads
    the slot schedule at the start of a later call — the committed stages
    are netted out of ``free`` by ``slot_plan`` itself, and ``rel_ptr``
    stays valid because within one event the pending-release list only ever
    grows at the tail (the wall clock does not move, so no release expires).
    """

    __slots__ = ("target", "fifo", "is_link", "free", "rels", "rel_ptr",
                 "rel_base", "next_free", "pace", "stage_cycles",
                 "stage_pkts", "stamp")

    def __init__(self, target, now: int, stamp: int) -> None:
        self.target = target
        self.is_link = isinstance(target, Link)
        self.fifo = target.fifo if self.is_link else target
        self.free, self.rels = self.fifo.slot_plan(now)
        self.rel_ptr = 0
        self.rel_base = self.fifo._reserved_paired
        self.next_free = target._next_free if self.is_link else 0
        self.pace = target.cycles_per_packet if self.is_link else 0
        self.stage_cycles: list[int] = []
        self.stage_pkts: list = []
        self.stamp = stamp  # plan-call counter of the last refresh

    def refresh(self, now: int) -> None:
        """Re-read committed slot state (later plan call, or rollback).

        All pairings so far are committed (``commit_pairings`` ran) or
        being discarded, so the re-read release list starts exactly past
        the committed ones: re-base the pointer. ``next_free`` likewise
        returns to the link's committed pacing state — after a commit the
        two agree, and after a declined window the cursor's speculative
        advance must be dropped.
        """
        self.free, self.rels = self.fifo.slot_plan(now)
        self.rel_base = self.fifo._reserved_paired
        self.rel_ptr = 0
        if self.is_link:
            self.next_free = self.target._next_free

    def commit_pairings(self) -> None:
        """Persist how many releases this cursor's stages consumed, so
        plans in later engine events do not hand the same slot out twice."""
        self.fifo._reserved_paired = self.rel_base + self.rel_ptr


class PlanResult:
    """One committed window: resume state plus the FIFOs it touched."""

    __slots__ = ("end", "idx", "resume_reads", "takes", "sources", "targets",
                 "blocked_on", "starved_on")

    def __init__(self, end, idx, resume_reads, takes, sources, targets,
                 blocked_on, starved_on):
        self.end = end                    # absolute cycle the window covers
        self.idx = idx                    # arbiter pointer at resume
        self.resume_reads = resume_reads  # -1 fresh, >= 0 mid-R-round
        self.takes = takes                # packets moved
        self.sources = sources            # input FIFOs taken from
        self.targets = targets            # FIFOs staged into (links: theirs)
        self.blocked_on = blocked_on      # fifo whose backpressure ended it
        self.starved_on = starved_on      # input whose unknown supply did


#: Horizon sentinel for truncated snapshots: more items exist physically
#: beyond the cut, so "drained" NEVER means "unreadable" — no horizon
#: (not even a producer-sleep one, which only bounds *unknown* arrivals)
#: may rescue a decision there.
_TRUNCATED = -1


def _snap_input(f, pkts_l, rdy_l, hz_l, j, now):
    """Lazily snapshot input ``j``'s supply schedule for a planning window.

    Fills ``pkts_l``/``rdy_l`` with the published commitments (items
    physically present, oldest first, with exact visibility cycles).
    ``hz_l`` gets the horizon below which "snapshot drained" provably
    means "unreadable" — ``_TRUNCATED`` for a cut snapshot, and ``None``
    as a placeholder otherwise: the (possibly recursive) producer-sleep
    query runs only if the plan actually drains the input.
    """
    if f._flow_dead:
        P = pkts_l[j] = ()
        rdy_l[j] = ()
        hz_l[j] = FOREVER
        return P
    P, rdy_l[j] = f.present_schedule(now, PLAN_SNAPSHOT)
    pkts_l[j] = P
    hz_l[j] = _TRUNCATED if len(P) >= PLAN_SNAPSHOT else None
    return P


def _silent_hz(ck, f, cycle):
    """``f``'s supply horizon under the planner's self-silence fixpoint.

    The unconditional horizon treats the planning kernel as "running now",
    which poisons any producer chain that loops back through it — a CKS
    asking about its paired CKR finds "it could wake from my own loopback
    stage next cycle". But while the plan's cursor sits at ``cycle``,
    every stage this kernel could still make lands at or after ``cycle``
    (the cursor only moves forward), and during a proposed park it makes
    none at all before the wake — so seeding the kernel's own floor with
    ``cycle`` is sound, by induction on the earliest cycle anything could
    deviate. Computed with a throwaway memo: the assumption is scoped to
    one decision, never to the cascade-wide cache.
    """
    proc = ck.proc
    if proc is None:
        return 0
    return f.supply_horizon({id(proc): cycle})


def plan_window(ck, engine, start, resume_reads, idx=None, memo=None,
                cursors=None, stamp=0):
    """Multi-round burst planner: one provable window for one CK.

    Simulates :meth:`PollingArbiter.run`'s per-flit state machine forward
    from the absolute cycle ``start`` over the *known* future only —
    supply schedules (items already committed, with their exact visibility
    cycles and horizons) and downstream slot schedules — and commits every
    take/stage it proved with the exact per-flit cycles, including R-round
    budgets, empty-input scan charges, and parked gaps whose wake-up cycle
    is already decided by an in-flight item. The plan stops at the first
    decision that depends on information not yet in the simulation (an
    arrival that has not been committed, a stall with no known release)
    and returns the exact per-flit resume state, so resuming — per-flit or
    by a later plan — is seamless and the cycle trajectory is identical to
    the literal interpretation.

    ``start`` may lie in the future (cascade extensions and co-plans plan
    from a CK's committed wake); snapshots are always taken against the
    current wall state, which is exactly what is provable. Returns a
    :class:`PlanResult` or ``None`` when nothing could be proved (the
    caller then falls back to one per-flit step).
    """
    arbiter = ck.arbiter
    inputs = arbiter.inputs
    n = len(inputs)
    burst = arbiter.read_burst
    now = engine.cycle
    c = start
    if idx is None:
        idx = arbiter._idx
    mode_reads = resume_reads  # -1 = FRESH, >= 0 = mid-round reads done
    route = ck._route
    route_memo = ck._route_memo
    pkts_l: list = [None] * n  # per-input snapshot: items
    rdy_l: list = [None] * n   # per-input snapshot: visibility cycles
    hz_l: list = [0] * n       # per-input snapshot: unknown-supply horizon
    ptr = [0] * n
    takes: list = [None] * n
    if cursors is None:
        cursors = {}  # id(target) -> _TargetCursor, shared per cascade
    total = 0
    ended = False  # plan hit an unknowable decision: stop where we are
    blocked_on = None  # fifo whose unknown backpressure ended the plan
    starved_on = None  # input whose unknown supply ended the plan
    if memo is None:
        memo = {}

    def starved(j, at):
        """Is drained input ``j`` of unknowable readability by ``at``?

        True when an unknown arrival could be visible at or before
        ``at``: always for a truncated snapshot (more items physically
        exist beyond the cut), otherwise when neither the cached
        unconditional horizon nor the self-silence retry exceeds ``at``.
        Only reached on give-up paths, so the closure stays off the hot
        take loop.
        """
        hz = hz_l[j]
        if hz is None:
            hz = hz_l[j] = inputs[j].supply_horizon(memo)
        return hz == _TRUNCATED or (
            hz <= at and _silent_hz(ck, inputs[j], at) <= at)

    # Cached cursor of the current routing target, mirrored into locals
    # (flushed back on switch and before commit).
    t_cur = None
    t_key = -1
    t_free = t_rp = t_nf = t_pace = 0
    t_isl = False
    t_rels = t_sc = t_sp = ()

    while not ended and total < PLAN_MAX_TAKES:
        P = pkts_l[idx]
        if P is None:
            P = _snap_input(inputs[idx], pkts_l, rdy_l, hz_l, idx, now)
        R = rdy_l[idx]
        p = ptr[idx]
        k = len(P)
        # ---- FRESH readability check / R-round over input idx ----------
        if mode_reads < 0:
            if p >= k:
                # Drained (or empty): provably unreadable only below the
                # input's unknown-supply horizon (computed on first use,
                # retried under the self-silence fixpoint before giving up).
                if starved(idx, c):
                    starved_on = inputs[idx]
                    break
                # fall through to rotation / scan / park below
            elif R[p] <= c:
                mode_reads = 0
            # (head exists but is not visible yet: provably unreadable)
        if mode_reads >= 0:
            tk = takes[idx]
            if tk is None:
                tk = takes[idx] = []
            while mode_reads < burst:
                if p >= k:
                    if starved(idx, c):
                        ended = True  # unknown readability: stop in ROUND
                        starved_on = inputs[idx]
                    break
                if R[p] > c:
                    break  # head not visible: the R-round ends here
                pkt = P[p]
                key = (pkt.dst << 8) | pkt.port
                if key != t_key:
                    if t_cur is not None:  # flush the outgoing cursor
                        t_cur.free = t_free
                        t_cur.rel_ptr = t_rp
                        t_cur.next_free = t_nf
                        t_cur = None
                        t_key = -1
                    out = route_memo.get(key)
                    if out is None:
                        try:
                            out = route(pkt)
                        except RoutingError:
                            # The per-flit path raises at this exact cycle.
                            ended = True
                            break
                        route_memo[key] = out
                    t_cur = cursors.get(id(out))
                    if t_cur is None:
                        t_cur = cursors[id(out)] = _TargetCursor(out, now,
                                                                 stamp)
                    elif t_cur.stamp != stamp:
                        # Carried over from an earlier plan call of this
                        # cascade: re-read the slot schedule once.
                        t_cur.refresh(now)
                        t_cur.stamp = stamp
                    t_key = key
                    t_free = t_cur.free
                    t_rels = t_cur.rels
                    t_rp = t_cur.rel_ptr
                    t_nf = t_cur.next_free
                    t_pace = t_cur.pace
                    t_isl = t_cur.is_link
                    t_sc = t_cur.stage_cycles
                    t_sp = t_cur.stage_pkts
                # Earliest per-flit stage cycle (see _TargetCursor).
                s = t_nf if (t_isl and t_nf > c) else c
                if t_free > 0:
                    t_free -= 1
                elif t_rp < len(t_rels):
                    floor = t_rels[t_rp] + 1
                    t_rp += 1
                    if floor > s:
                        s = floor
                else:
                    ended = True  # unknown backpressure: stop before take
                    blocked_on = t_cur.fifo
                    break
                if t_isl:
                    t_nf = s + t_pace
                tk.append(c)
                t_sc.append(s)
                t_sp.append(pkt)
                total += 1
                p += 1
                c = s + 1
                mode_reads += 1
            ptr[idx] = p
            if ended:
                break
            idx = (idx + 1) % n
            mode_reads = -1
            continue
        # ---- unreadable at c: rotate, then scan-charge or park ---------
        any_r = False
        wake = None
        for j in range(n):
            Pj = pkts_l[j]
            if Pj is None:
                Pj = _snap_input(inputs[j], pkts_l, rdy_l, hz_l, j, now)
            pj = ptr[j]
            if pj < len(Pj):
                rdy = rdy_l[j][pj]
                if rdy <= c:
                    any_r = True
                    break
                if wake is None or rdy < wake:
                    wake = rdy
            elif starved(j, c):
                ended = True  # cannot even decide "anything readable?"
                starved_on = inputs[j]
                break
        if ended:
            break
        if any_r:
            idx = (idx + 1) % n
            c += 1  # the pointer scan costs this cycle
            continue
        # Park: wake at the first known future visibility, provided no
        # unknown arrival could beat (or tie) it on a drained input.
        if wake is None:
            break
        for j in range(n):
            if ptr[j] >= len(pkts_l[j]) and starved(j, wake):
                starved_on = inputs[j]
                wake = None
                break
        if wake is None:
            break
        idx = (idx + 1) % n  # per-flit rotates before parking
        scan = 0
        while scan < n:
            Pj = pkts_l[idx]  # None / () only for provably empty inputs
            if Pj:
                pj = ptr[idx]
                if pj < len(Pj) and rdy_l[idx][pj] <= wake:
                    break
            idx = (idx + 1) % n
            scan += 1
        c = wake + scan

    if t_cur is not None:  # flush the cached cursor before committing
        t_cur.free = t_free
        t_cur.rel_ptr = t_rp
        t_cur.next_free = t_nf
    if total == 0 and c == start:
        return None
    if total <= 1 and c - start < 8:
        # A trivial window: committing it (burst bookkeeping, cascade
        # wake-up accounting) costs more than letting the per-flit loop
        # move the one packet. Declining is always cycle-neutral, but the
        # shared cursors must drop this call's pending stage and slot
        # consumption, or a later plan of the cascade would commit them
        # under the wrong kernel's identity.
        for cur in cursors.values():
            if cur.stage_pkts:
                cur.stage_pkts = []
                cur.stage_cycles = []
                cur.refresh(now)  # nothing committed: re-read = rollback
        return None
    # Commit under the planned CK's identity: a cascade runs inside a
    # *peer's* engine event, but the logical stager of these packets (for
    # the producer-set tripwire) is this CK's own process.
    prev_proc = engine._current_proc
    if ck.proc is not None:
        engine._current_proc = ck.proc
    try:
        sources = []
        for i in range(n):
            if takes[i]:
                inputs[i].take_burst(takes[i], collect=False)
                sources.append(inputs[i])
        targets = []
        for cur in cursors.values():
            if cur.stage_pkts:
                cur.target.stage_burst(cur.stage_pkts, cur.stage_cycles,
                                       verify_occupancy=False)
                cur.commit_pairings()
                targets.append(cur.fifo)
                # The cursor outlives this call (shared per cascade):
                # hand off the committed run and start a fresh one.
                cur.stage_pkts = []
                cur.stage_cycles = []
    finally:
        engine._current_proc = prev_proc
    if total:
        arbiter.packets_accepted += total
        hist = arbiter.accept_hist
        if hist is not None:
            # Reconstruct global accept order: take cycles strictly
            # increase within a plan, so merging the per-input sorted
            # lists recovers the per-flit recording order exactly.
            for cyc in _heap_merge(*(tk for tk in takes if tk)):
                hist.record(cyc)
    return PlanResult(c, idx, mode_reads, total, sources, targets,
                      blocked_on, starved_on)


class SupplyPlanner:
    """Cascaded co-planning across CK boundaries (one per transport).

    The transport builder wires the producer/consumer CK of every transit
    FIFO and link (:meth:`wire`); :meth:`plan` then plans the initiating
    CK's window and cascades: every committed window's targets name
    downstream CKs whose supply just grew, every window's sources name
    upstream CKs whose backpressure just eased, and each of those — if
    parked or sleeping a planned window — gets its next window planned in
    the same engine event, until the worklist drains or the budget runs
    out. A standalone CK (unit tests) uses an instance with empty maps,
    which degrades to exactly the single-CK planner.
    """

    cascade_budget = CASCADE_BUDGET

    def __init__(self) -> None:
        self.consumer_ck: dict[int, object] = {}  # id(fifo) -> reading CK
        self.producer_ck: dict[int, object] = {}  # id(fifo) -> writing CK
        self._stamp = 0  # plan-call counter (cursor refresh generation)

    def wire(self, fifo, producer=None, consumer=None) -> None:
        """Declare the CK endpoints of one transit FIFO (builder hook)."""
        if producer is not None:
            self.producer_ck[id(fifo)] = producer
        if consumer is not None:
            self.consumer_ck[id(fifo)] = consumer

    # ------------------------------------------------------------------
    # Entry point (CK.process -> PollingArbiter.run -> here)
    # ------------------------------------------------------------------
    def plan(self, ck, engine, resume_reads, skip):
        """Plan the running CK's window, then cascade along the pipeline.

        Returns a truthy value when a window was committed (the arbiter's
        ``_plan_until``/``_idx``/``_resume_reads`` carry the resume state)
        or ``None`` when nothing was provable.
        """
        memo: dict = {}
        cursors: dict = {}
        arb = ck.arbiter
        stats = arb.planner_stats
        stats.attempts += 1
        start = engine.cycle + skip
        self._stamp += 1
        res = plan_window(ck, engine, start, resume_reads, memo=memo,
                          cursors=cursors, stamp=self._stamp)
        if res is None:
            return None
        self._commit(arb, res, start, "window")
        self._cascade(ck, engine, res, memo, cursors)
        return True

    def _commit(self, arb, res, start, kind) -> None:
        arb._idx = res.idx
        arb._resume_reads = res.resume_reads
        arb._plan_until = res.end
        arb._blocked_on = res.blocked_on
        arb._starved_on = res.starved_on
        stats = arb.planner_stats
        stats.window_cycles += res.end - start
        stats.takes += res.takes
        if kind == "window":
            stats.windows += 1
        elif kind == "extension":
            stats.extensions += 1
        else:
            stats.coplans += 1

    def _peers(self, res):
        """CKs whose plannable state just changed — and who can use it.

        A consumer of a FIFO the window staged into is worth planning only
        if it is actually waiting on that supply (its own last window
        *starved* on the FIFO, or it is parked with nothing better to do);
        a producer of a FIFO the window took from only if its last window
        was *blocked* on that FIFO's backpressure. Anything else would be
        a planning attempt that almost always returns empty-handed.
        """
        peers = []
        for fifo in res.targets:
            peer = self.consumer_ck.get(id(fifo))
            if peer is not None:
                arb = peer.arbiter
                if arb._starved_on is fifo or arb._resume_state == "parked":
                    peers.append(peer)
        for fifo in res.sources:
            peer = self.producer_ck.get(id(fifo))
            if peer is not None and peer.arbiter._blocked_on is fifo:
                peers.append(peer)
        return peers

    def _cascade(self, origin, engine, first, memo, cursors) -> None:
        budget = self.cascade_budget
        queue: deque = deque()
        queued: set[int] = set()

        def enqueue(peers):
            for peer in peers:
                if id(peer) not in queued:
                    queued.add(id(peer))
                    queue.append(peer)

        enqueue(self._peers(first))
        while queue and budget > 0:
            peer = queue.popleft()
            queued.discard(id(peer))
            budget -= 1
            if peer is origin:
                res = self._extend(peer, engine, memo, cursors)
            else:
                res = self._coplan(peer, engine, memo, cursors)
            if res is not None and res.takes:
                enqueue(self._peers(res))

    def _extend(self, ck, engine, memo, cursors):
        """Stretch the origin's committed window against new information."""
        arb = ck.arbiter
        start = arb._plan_until
        self._stamp += 1
        res = plan_window(ck, engine, start, arb._resume_reads, memo=memo,
                          cursors=cursors, stamp=self._stamp)
        if res is None:
            return None
        self._commit(arb, res, start, "extension")
        return res

    def _coplan(self, peer, engine, memo, cursors):
        """Plan a peer CK's next window on its behalf, state permitting.

        A CK sleeping a planned window resumes planning from its committed
        wake ``_plan_until`` (no rescheduling needed — on its old wake it
        simply sleeps the extension off). A parked CK first needs its
        per-flit wake-up emulated (first provable readable cycle plus the
        pointer-scan charge); its planned takes may empty the inputs whose
        conditions would have woken it, so it gets a firm preempt to the
        window's end. Any other state (mid per-flit step, blocked inside a
        forward) is not co-plannable and is left untouched.
        """
        arb = peer.arbiter
        proc = peer.proc
        if proc is None or proc.finished:
            return None
        state = arb._resume_state
        if state == "window":
            start = arb._plan_until
            self._stamp += 1
            res = plan_window(peer, engine, start, arb._resume_reads,
                              memo=memo, cursors=cursors, stamp=self._stamp)
            if res is None:
                return None
            self._commit(arb, res, start, "coplan")
            arb._plan_miss = 0
            arb._plan_skip = 0
            if proc._waiting_on is None and res.end > proc._scheduled_for:
                # Skip the intermediate wake at the old window end: the
                # extension already covers it (waking there would only
                # re-sleep to ``_plan_until``).
                engine.preempt(proc, res.end)
            return res
        if state != "parked" or proc._waiting_on is None:
            return None
        wake = self._parked_wake(arb, engine, memo)
        if wake is None:
            return None
        start, idx = wake
        self._stamp += 1
        res = plan_window(peer, engine, start, -1, idx=idx, memo=memo,
                          cursors=cursors, stamp=self._stamp)
        if res is None or not res.takes:
            return None
        self._commit(arb, res, start, "coplan")
        arb._plan_miss = 0
        arb._plan_skip = 0
        arb._coplanned = True
        arb._resume_state = "window"
        engine.preempt(proc, res.end)
        return res

    @staticmethod
    def _parked_wake(arb, engine, memo):
        """Emulate a parked CK's wake-up: ``(first take cycle, pointer)``.

        Per-flit, the kernel wakes at the first cycle any input turns
        readable, then charges the scan distance the hardware pointer
        would have travelled (the pointer was already rotated once when it
        parked). That wake is provable only if every known head is later
        than or equal to the earliest one *and* no unknown arrival can
        beat or tie it on a drained input — the same horizon rule the
        in-plan park uses. Returns ``None`` when the wake cannot be
        proved, or when a normal wake is already pending this cycle.
        """
        now = engine.cycle
        inputs = arb.inputs
        wake = None
        for f in inputs:
            if f.present_count:
                ready = f.earliest_readable()
                if ready <= now:
                    return None  # readable already: normal wake imminent
                if wake is None or ready < wake:
                    wake = ready
        if wake is None:
            return None
        for f in inputs:
            if not f.present_count and f.supply_horizon(memo) <= wake:
                return None
        idx = arb._idx
        n = len(inputs)
        scan = 0
        while scan < n:
            f = inputs[idx]
            if f.present_count and f.earliest_readable() <= wake:
                break
            idx = (idx + 1) % n
            scan += 1
        return wake + scan, idx


#: Default planner for CKs built outside the transport builder (unit
#: tests, ad-hoc wiring): no cascade peers, pure single-CK planning.
SOLO_PLANNER = SupplyPlanner()
