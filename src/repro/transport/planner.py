"""Supply-schedule burst planning: the simulator's data-plane fast path.

The burst data plane moves whole polling windows through FIFO -> arbiter ->
CKS/CKR -> link in one engine event while staying cycle-identical to the
per-flit reference interpretation. This module is the planning layer that
makes that possible, organised around one contract:

**SupplySchedule.** Any flit source — an application channel's vectorised
push, a CK forwarding a planned window, a collective support kernel, an
inter-FPGA link — publishes ``(cycle, count)`` commitments about what it
will provably stage and when, simply by staging early with exact future
cycles; :meth:`repro.simulation.fifo.Fifo.present_schedule` exposes the
committed items and :meth:`Fifo.supply_horizon` the *horizon*: the cycle
below which no unknown arrival can turn visible. Horizons come from three
sources, in increasing power:

* the registered-FIFO handoff (``now + latency`` — a stage this cycle is
  invisible before that);
* static flow-liveness (a flow-dead FIFO is empty forever);
* **producer-sleep horizons**: with a closed, registered producer set, a
  producer blocked in the engine until cycle T provably stages nothing
  before T (:meth:`repro.simulation.engine.Engine.process_floor`), and the
  query recurses through parked producer chains — a CKS parked on inputs
  whose own producers sleep is itself asleep. This is what makes
  collective workloads plannable without static routes: runtime
  communicators keep every transit FIFO flow-live, but the support
  kernels' sleep states still bound every unknown.

:func:`plan_window` consumes supply schedules to simulate one CK's polling
loop forward over the known future only, committing every take/stage with
the exact per-flit cycles (R-round budgets, scan charges, parked gaps,
link pacing) and stopping at the first decision that depends on
information not yet in the simulation.

**Cascaded co-planning.** A single-CK plan saturates at one FIFO depth per
engine event on multi-hop paths: CK_a stages one ``inter_ck_fifo_depth``
window into the FIFO toward CK_b and stops at unknown backpressure; CK_b's
takes only become known at its own next event. :class:`SupplyPlanner`
breaks that fixpoint: when a committed plan stages into a FIFO whose
consumer CK is parked or sleeping a planned window, the consumer's next
window is planned *in the same engine event* (its commits are published as
the supply/slot schedule of the next hop), then the producer's plan is
extended against the freed slots, and so on along the pipeline — one
engine event plans a multi-hop stream end-to-end. Parked consumers get a
firm wake (:meth:`Engine.preempt`) since their planned takes may empty the
very FIFOs whose conditions would have woken them.

**Steady-state pattern replication.** Every committed window carries a
decision trace; when a CK's recent windows turn out to be exact Δ-shifted
repeats of each other (:meth:`SupplyPlanner._observe`, up to
``PATTERN_MAX_PERIOD`` window shapes per period), the compiled
:class:`WindowPattern` replaces the planning *search* with straight-line
*verification*: :func:`replicate_train` replays pattern rounds against
live committed state, ping-pongs sessions across producer/consumer CKs
(validated stages become the next hop's virtual supply, validated takes
the previous hop's virtual slot releases) and bulk-commits whole trains
with one ``take_burst``/``stage_burst`` pair per FIFO and one firm wake
per sleeping peer. Everything is re-proved from committed facts, so
cycle-exactness holds by the same argument as :func:`plan_window`; any
deviation ends the train at the last valid round and planning resumes.
When the per-event information quantum (buffer depths, the app's
injection cadence) keeps trains at a single round — where replication
saves nothing over the planner — a futility backoff quiesces the whole
plane, traces included, until a multi-round catch-up regime (accumulated
link inventories, post-stall drains) re-arms it.

**Cruise-mode induction.** Validated replication still walks every event
of every round. But once one round of a train validates, everything that
could invalidate the *next* round is an externality with a computable
bound: committed supply depth and readiness on each input, routing-key
drift in the consumed packets, free slots plus the materialised release
schedule of each target, link pacing (internal — it Δ-shifts with the
committed stages), and the supply horizons that silence observations
lean on. :func:`replicate_train`'s cruise step scans those bounds once
(pure comparisons over already-materialised arrays — no routing calls,
no cursor stall walk, no per-event dispatch) to find the largest ``K``
for which rounds ``1..K`` are provably exact, then commits all ``K`` in
one arithmetic replay. Patterns whose stall model embeds release-floor
raises cannot be cruised (the floor value is per-release information)
and are rejected at pattern-compile time; anything else the scan cannot
prove simply bounds ``K`` and validated replication resumes at the first
unproven round. ``CRUISE_MAX_ROUNDS`` caps each burst so a validated
round periodically re-anchors the induction against live state (the
Δ-drift guard). This is the deep-buffer lever: with 32/64-deep FIFOs the
per-event information quantum spans many pattern rounds, and cruise
makes committing them O(1) checks per round instead of a full
re-validation walk.

All of the planner's cross-event state lives on the
:class:`~repro.transport.arbiter.PollingArbiter` (``_idx`` /
``_resume_reads`` / ``_plan_until`` / ``_resume_state`` and the
``_pattern*`` fields); see that module's docstring for the field-by-field
contract.
"""

from __future__ import annotations

from collections import deque
from heapq import merge as _heap_merge

import numpy as np

from ..core.errors import ChannelError, RoutingError
from ..network.link import Link
from ..network.packet import Packet
from ..simulation.engine import FOREVER

#: Safety bound on planned takes per window (keeps commit lists small).
PLAN_MAX_TAKES = 2048

#: Snapshot depth per input per plan. Deeper queues (the link FIFOs hold a
#: full bandwidth-delay product) are cut here; the planner treats the cut
#: as an unknown-future boundary, which is always sound — and the cascade
#: re-snapshots on every extension, so truncation only bounds one pass.
PLAN_SNAPSHOT = 16

#: Total co-plan / extension attempts per cascade (per initiating event).
CASCADE_BUDGET = 64

#: Longest window sequence the pattern detector folds into one round: a
#: steady state may cycle through several distinct window shapes (a full
#: R-round window, then the partial window that drains an injection's
#: tail) before repeating.
PATTERN_MAX_PERIOD = 3

#: Δ-drift guard: the most rounds one cruise burst may commit before the
#: next validated round re-anchors the induction against live state. The
#: arithmetic scan is believed complete, but bounding each burst keeps
#: any unmodelled drift from compounding past one re-validation period.
CRUISE_MAX_ROUNDS = 512

#: Take budget per train when macro-cruise has every live plane proven
#: (registered app lanes on both stream ends, support planes quiet):
#: with the app endpoints extending arithmetically inside the train,
#: the only externalities left are message boundaries, so a train may
#: fast-forward the whole steady state of a message in one event.
MACRO_MAX_TAKES = 1 << 22


class _TargetCursor:
    """Planning-time view of one routing target's future slot schedule.

    ``free``/``rels``/``rel_ptr``/``next_free`` mirror the per-flit
    ``_stage_with_backpressure`` stall model: a currently-free slot stages
    as soon as line pacing allows; a slot reserved by the consumer's own
    burst takes stages the cycle after it releases (the cycle a producer
    blocked on ``can_push`` would wake); with neither, the per-flit path
    would block open-endedly, so the plan must stop. The planner mirrors
    these fields into locals inside its hot loop and flushes them back on
    target switches.

    Cursors live for one cascade (one engine event) and are shared by all
    of its plan calls: a later extension must not re-pair a reserved slot
    release the first plan already staged against. :meth:`refresh` re-reads
    the slot schedule at the start of a later call — the committed stages
    are netted out of ``free`` by ``slot_plan`` itself, and ``rel_ptr``
    stays valid because within one event the pending-release list only ever
    grows at the tail (the wall clock does not move, so no release expires).
    """

    __slots__ = ("target", "fifo", "is_link", "free", "rels", "rel_ptr",
                 "rel_base", "next_free", "pace", "stage_cycles",
                 "stage_pkts", "stamp")

    def __init__(self, target, now: int, stamp: int) -> None:
        self.target = target
        self.is_link = isinstance(target, Link)
        self.fifo = target.fifo if self.is_link else target
        self.free, self.rels = self.fifo.slot_plan(now)
        self.rel_ptr = 0
        self.rel_base = self.fifo._reserved_paired
        self.next_free = target._next_free if self.is_link else 0
        self.pace = target.cycles_per_packet if self.is_link else 0
        self.stage_cycles: list[int] = []
        self.stage_pkts: list = []
        self.stamp = stamp  # plan-call counter of the last refresh

    def refresh(self, now: int) -> None:
        """Re-read committed slot state (later plan call, or rollback).

        All pairings so far are committed (``commit_pairings`` ran) or
        being discarded, so the re-read release list starts exactly past
        the committed ones: re-base the pointer. ``next_free`` likewise
        returns to the link's committed pacing state — after a commit the
        two agree, and after a declined window the cursor's speculative
        advance must be dropped.
        """
        self.free, self.rels = self.fifo.slot_plan(now)
        self.rel_base = self.fifo._reserved_paired
        self.rel_ptr = 0
        if self.is_link:
            self.next_free = self.target._next_free

    def commit_pairings(self) -> None:
        """Persist how many releases this cursor's stages consumed, so
        plans in later engine events do not hand the same slot out twice."""
        self.fifo._reserved_paired = self.rel_base + self.rel_ptr


class PlanResult:
    """One committed window: resume state plus the FIFOs it touched."""

    __slots__ = ("end", "idx", "resume_reads", "takes", "sources", "targets",
                 "blocked_on", "starved_on", "trace")

    def __init__(self, end, idx, resume_reads, takes, sources, targets,
                 blocked_on, starved_on, trace=None):
        self.end = end                    # absolute cycle the window covers
        self.idx = idx                    # arbiter pointer at resume
        self.resume_reads = resume_reads  # -1 fresh, >= 0 mid-R-round
        self.takes = takes                # packets moved
        self.sources = sources            # input FIFOs taken from
        self.targets = targets            # FIFOs staged into (links: theirs)
        self.blocked_on = blocked_on      # fifo whose backpressure ended it
        self.starved_on = starved_on      # input whose unknown supply did
        self.trace = trace                # (ops, obs) for pattern detection


#: Horizon sentinel for truncated snapshots: more items exist physically
#: beyond the cut, so "drained" NEVER means "unreadable" — no horizon
#: (not even a producer-sleep one, which only bounds *unknown* arrivals)
#: may rescue a decision there.
_TRUNCATED = -1


def _snap_input(f, pkts_l, rdy_l, hz_l, j, now):
    """Lazily snapshot input ``j``'s supply schedule for a planning window.

    Fills ``pkts_l``/``rdy_l`` with the published commitments (items
    physically present, oldest first, with exact visibility cycles).
    ``hz_l`` gets the horizon below which "snapshot drained" provably
    means "unreadable" — ``_TRUNCATED`` for a cut snapshot, and ``None``
    as a placeholder otherwise: the (possibly recursive) producer-sleep
    query runs only if the plan actually drains the input.
    """
    if f._flow_dead:
        P = pkts_l[j] = ()
        rdy_l[j] = ()
        hz_l[j] = FOREVER
        return P
    P, rdy_l[j] = f.present_schedule(now, PLAN_SNAPSHOT)
    pkts_l[j] = P
    hz_l[j] = _TRUNCATED if len(P) >= PLAN_SNAPSHOT else None
    return P


def _silent_hz(ck, f, cycle):
    """``f``'s supply horizon under the planner's self-silence fixpoint.

    The unconditional horizon treats the planning kernel as "running now",
    which poisons any producer chain that loops back through it — a CKS
    asking about its paired CKR finds "it could wake from my own loopback
    stage next cycle". But while the plan's cursor sits at ``cycle``,
    every stage this kernel could still make lands at or after ``cycle``
    (the cursor only moves forward), and during a proposed park it makes
    none at all before the wake — so seeding the kernel's own floor with
    ``cycle`` is sound, by induction on the earliest cycle anything could
    deviate. Computed with a throwaway memo: the assumption is scoped to
    one decision, never to the cascade-wide cache.
    """
    proc = ck.proc
    if proc is None:
        return 0
    return f.supply_horizon({id(proc): cycle})


def plan_window(ck, engine, start, resume_reads, idx=None, memo=None,
                cursors=None, stamp=0, trace=False):
    """Multi-round burst planner: one provable window for one CK.

    Simulates :meth:`PollingArbiter.run`'s per-flit state machine forward
    from the absolute cycle ``start`` over the *known* future only —
    supply schedules (items already committed, with their exact visibility
    cycles and horizons) and downstream slot schedules — and commits every
    take/stage it proved with the exact per-flit cycles, including R-round
    budgets, empty-input scan charges, and parked gaps whose wake-up cycle
    is already decided by an in-flight item. The plan stops at the first
    decision that depends on information not yet in the simulation (an
    arrival that has not been committed, a stall with no known release)
    and returns the exact per-flit resume state, so resuming — per-flit or
    by a later plan — is seamless and the cycle trajectory is identical to
    the literal interpretation.

    ``start`` may lie in the future (cascade extensions and co-plans plan
    from a CK's committed wake); snapshots are always taken against the
    current wall state, which is exactly what is provable. Returns a
    :class:`PlanResult` or ``None`` when nothing could be proved (the
    caller then falls back to one per-flit step).

    With ``trace=True`` the committed window also carries a decision
    trace on ``PlanResult.trace`` for the pattern detector: ``ops`` — one
    ``(take_cycle, input_idx, stage_cycle, target)`` per accepted packet
    in global take order — and ``obs`` — every readability observation
    the polling simulation made on a cycle it did *not* take from that
    input (``(cycle, input_idx, was_readable)``). Together they are a
    complete record of the window's decision-relevant state: replaying a
    Δ-shifted copy is cycle-exact iff every op re-validates (supply,
    routing, slots) and every observation re-holds at the shifted cycle.
    Parks are traced as their wake race: known heads provably unreadable
    the cycle before the wake, drained inputs silent through it, and the
    scan's stop input readable exactly at it.
    """
    arbiter = ck.arbiter
    inputs = arbiter.inputs
    n = len(inputs)
    burst = arbiter.read_burst
    now = engine.cycle
    c = start
    if idx is None:
        idx = arbiter._idx
    mode_reads = resume_reads  # -1 = FRESH, >= 0 = mid-round reads done
    route = ck._route
    route_memo = ck._route_memo
    pkts_l: list = [None] * n  # per-input snapshot: items
    rdy_l: list = [None] * n   # per-input snapshot: visibility cycles
    hz_l: list = [0] * n       # per-input snapshot: unknown-supply horizon
    ptr = [0] * n
    takes: list = [None] * n
    if cursors is None:
        cursors = {}  # id(target) -> _TargetCursor, shared per cascade
    total = 0
    ended = False  # plan hit an unknowable decision: stop where we are
    blocked_on = None  # fifo whose unknown backpressure ended the plan
    starved_on = None  # input whose unknown supply ended the plan
    if memo is None:
        memo = {}
    # Decision trace for the pattern detector (see docstring): the target
    # cursor of every take in order, plus every negative/positive
    # readability observation (scan charges, R-round ends, park races).
    trace_tgts = [] if trace else None
    trace_obs: list = []

    def starved(j, at):
        """Is drained input ``j`` of unknowable readability by ``at``?

        True when an unknown arrival could be visible at or before
        ``at``: always for a truncated snapshot (more items physically
        exist beyond the cut), otherwise when neither the cached
        unconditional horizon nor the self-silence retry exceeds ``at``.
        Only reached on give-up paths, so the closure stays off the hot
        take loop.
        """
        hz = hz_l[j]
        if hz is None:
            hz = hz_l[j] = inputs[j].supply_horizon(memo)
        return hz == _TRUNCATED or (
            hz <= at and _silent_hz(ck, inputs[j], at) <= at)

    # Cached cursor of the current routing target, mirrored into locals
    # (flushed back on switch and before commit).
    t_cur = None
    t_key = -1
    t_free = t_rp = t_nf = t_pace = 0
    t_isl = False
    t_rels = t_sc = t_sp = ()

    while not ended and total < PLAN_MAX_TAKES:
        P = pkts_l[idx]
        if P is None:
            P = _snap_input(inputs[idx], pkts_l, rdy_l, hz_l, idx, now)
        R = rdy_l[idx]
        p = ptr[idx]
        k = len(P)
        # ---- FRESH readability check / R-round over input idx ----------
        if mode_reads < 0:
            if p >= k:
                # Drained (or empty): provably unreadable only below the
                # input's unknown-supply horizon (computed on first use,
                # retried under the self-silence fixpoint before giving up).
                if starved(idx, c):
                    starved_on = inputs[idx]
                    break
                # fall through to rotation / scan / park below
            elif R[p] <= c:
                mode_reads = 0
            # (head exists but is not visible yet: provably unreadable)
        if mode_reads >= 0:
            tk = takes[idx]
            if tk is None:
                tk = takes[idx] = []
            while mode_reads < burst:
                if p >= k:
                    if starved(idx, c):
                        ended = True  # unknown readability: stop in ROUND
                        starved_on = inputs[idx]
                    elif trace_tgts is not None:
                        # Round ended on a provably silent drained input:
                        # a replica must re-prove the silence here.
                        trace_obs.append((c, idx, False))
                    break
                if R[p] > c:
                    if trace_tgts is not None:
                        trace_obs.append((c, idx, False))
                    break  # head not visible: the R-round ends here
                pkt = P[p]
                key = (pkt.dst << 8) | pkt.port
                if key != t_key:
                    if t_cur is not None:  # flush the outgoing cursor
                        t_cur.free = t_free
                        t_cur.rel_ptr = t_rp
                        t_cur.next_free = t_nf
                        t_cur = None
                        t_key = -1
                    out = route_memo.get(key)
                    if out is None:
                        try:
                            out = route(pkt)
                        except RoutingError:
                            # The per-flit path raises at this exact cycle.
                            ended = True
                            break
                        route_memo[key] = out
                    t_cur = cursors.get(id(out))
                    if t_cur is None:
                        t_cur = cursors[id(out)] = _TargetCursor(out, now,
                                                                 stamp)
                    elif t_cur.stamp != stamp:
                        # Carried over from an earlier plan call of this
                        # cascade: re-read the slot schedule once.
                        t_cur.refresh(now)
                        t_cur.stamp = stamp
                    t_key = key
                    t_free = t_cur.free
                    t_rels = t_cur.rels
                    t_rp = t_cur.rel_ptr
                    t_nf = t_cur.next_free
                    t_pace = t_cur.pace
                    t_isl = t_cur.is_link
                    t_sc = t_cur.stage_cycles
                    t_sp = t_cur.stage_pkts
                # Earliest per-flit stage cycle (see _TargetCursor).
                s = t_nf if (t_isl and t_nf > c) else c
                if t_free > 0:
                    t_free -= 1
                elif t_rp < len(t_rels):
                    floor = t_rels[t_rp] + 1
                    t_rp += 1
                    if floor > s:
                        s = floor
                else:
                    ended = True  # unknown backpressure: stop before take
                    blocked_on = t_cur.fifo
                    break
                if t_isl:
                    t_nf = s + t_pace
                tk.append(c)
                t_sc.append(s)
                t_sp.append(pkt)
                if trace_tgts is not None:
                    trace_tgts.append(t_cur)
                total += 1
                p += 1
                c = s + 1
                mode_reads += 1
            ptr[idx] = p
            if ended:
                break
            idx = (idx + 1) % n
            mode_reads = -1
            continue
        # ---- unreadable at c: rotate, then scan-charge or park ---------
        any_r = False
        wake = None
        for j in range(n):
            Pj = pkts_l[j]
            if Pj is None:
                Pj = _snap_input(inputs[j], pkts_l, rdy_l, hz_l, j, now)
            pj = ptr[j]
            if pj < len(Pj):
                rdy = rdy_l[j][pj]
                if rdy <= c:
                    any_r = True
                    if trace_tgts is not None:
                        trace_obs.append((c, j, True))
                    break
                if wake is None or rdy < wake:
                    wake = rdy
                if trace_tgts is not None:
                    trace_obs.append((c, j, False))
            elif starved(j, c):
                ended = True  # cannot even decide "anything readable?"
                starved_on = inputs[j]
                break
            elif trace_tgts is not None:
                trace_obs.append((c, j, False))
        if ended:
            break
        if any_r:
            idx = (idx + 1) % n
            c += 1  # the pointer scan costs this cycle
            continue
        # Park: wake at the first known future visibility, provided no
        # unknown arrival could beat (or tie) it on a drained input.
        if wake is None:
            break
        for j in range(n):
            if ptr[j] >= len(pkts_l[j]) and starved(j, wake):
                starved_on = inputs[j]
                wake = None
                break
        if wake is None:
            break
        if trace_tgts is not None:
            # A park's wake is a *race* on future visibility: it lands at
            # ``wake`` exactly because no input shows anything earlier
            # (strictly: known heads at or after ``wake``, drained inputs
            # silent through ``wake`` inclusive — a tie from an unknown
            # arrival could shorten the scan). Record the race so a
            # replica re-proves it at the shifted cycles: known heads
            # unreadable at ``wake - 1``, drained inputs unreadable at
            # ``wake`` itself.
            w1 = wake - 1
            for j in range(n):
                if ptr[j] < len(pkts_l[j]):
                    trace_obs.append((w1, j, False))
                else:
                    trace_obs.append((wake, j, False))
        idx = (idx + 1) % n  # per-flit rotates before parking
        scan = 0
        while scan < n:
            Pj = pkts_l[idx]  # None / () only for provably empty inputs
            if Pj:
                pj = ptr[idx]
                if pj < len(Pj) and rdy_l[idx][pj] <= wake:
                    if trace_tgts is not None:
                        # The wake-up scan's stop input: readable at wake.
                        trace_obs.append((wake, idx, True))
                    break
            if trace_tgts is not None:
                # Scanned past: provably unreadable at the wake cycle.
                trace_obs.append((wake, idx, False))
            idx = (idx + 1) % n
            scan += 1
        c = wake + scan

    if t_cur is not None:  # flush the cached cursor before committing
        t_cur.free = t_free
        t_cur.rel_ptr = t_rp
        t_cur.next_free = t_nf
    if total == 0 and c == start:
        return None
    if total <= 1 and c - start < 8:
        # A trivial window: committing it (burst bookkeeping, cascade
        # wake-up accounting) costs more than letting the per-flit loop
        # move the one packet. Declining is always cycle-neutral, but the
        # shared cursors must drop this call's pending stage and slot
        # consumption, or a later plan of the cascade would commit them
        # under the wrong kernel's identity.
        for cur in cursors.values():
            if cur.stage_pkts:
                cur.stage_pkts = []
                cur.stage_cycles = []
                cur.refresh(now)  # nothing committed: re-read = rollback
        return None
    # Assemble the decision trace before the commit clears the cursors'
    # stage lists. Global take order is recovered by sorting the merged
    # per-input take cycles (cycles strictly increase within a window),
    # which aligns 1:1 with the order targets were recorded in.
    trace_out = None
    if trace_tgts is not None and total:
        merged = []
        for i in range(n):
            tki = takes[i]
            if tki:
                merged.extend((tc, i) for tc in tki)
        merged.sort()
        sc_ptr: dict = {}
        ops = []
        for (tc, i), cur in zip(merged, trace_tgts):
            ci = id(cur)
            pi = sc_ptr.get(ci, 0)
            ops.append((tc, i, cur.stage_cycles[pi], cur.target))
            sc_ptr[ci] = pi + 1
        trace_out = (ops, trace_obs)
    # Commit under the planned CK's identity: a cascade runs inside a
    # *peer's* engine event, but the logical stager of these packets (for
    # the producer-set tripwire) is this CK's own process.
    prev_proc = engine._current_proc
    if ck.proc is not None:
        engine._current_proc = ck.proc
    try:
        sources = []
        for i in range(n):
            if takes[i]:
                inputs[i].take_burst(takes[i], collect=False)
                sources.append(inputs[i])
        targets = []
        for cur in cursors.values():
            if cur.stage_pkts:
                cur.target.stage_burst(cur.stage_pkts, cur.stage_cycles,
                                       verify_occupancy=False)
                cur.commit_pairings()
                targets.append(cur.fifo)
                # The cursor outlives this call (shared per cascade):
                # hand off the committed run and start a fresh one.
                cur.stage_pkts = []
                cur.stage_cycles = []
    finally:
        engine._current_proc = prev_proc
    if total:
        arbiter.packets_accepted += total
        hist = arbiter.accept_hist
        if hist is not None:
            # Reconstruct global accept order: take cycles strictly
            # increase within a plan, so merging the per-input sorted
            # lists recovers the per-flit recording order exactly.
            for cyc in _heap_merge(*(tk for tk in takes if tk)):
                hist.record(cyc)
    return PlanResult(c, idx, mode_reads, total, sources, targets,
                      blocked_on, starved_on, trace_out)


#: Same-cycle event order within a pattern round: readable witness (2)
#: before take (0) before unreadable observation (1) — see the ordering
#: comment in :class:`WindowPattern`.
_EV_RANK = (1, 2, 0)


class WindowPattern:
    """A confirmed periodic window shape, compiled for bulk replication.

    Built by :meth:`SupplyPlanner._observe` once two consecutive,
    contiguous committed windows of one CK turn out to be exact Δ-shifted
    copies of each other (same relative take/stage/charge structure, same
    arbiter state at both window boundaries). The compiled form is a
    single cycle-sorted event list per round:

    * ``(rel_c, 0, j, rel_s, target)`` — take input ``j``'s head at
      ``start + rel_c``, stage it into ``target`` at ``start + rel_s``;
    * ``(rel_c, 1, j, 0, None)`` — the polling loop *observed* input
      ``j`` unreadable at ``start + rel_c`` (an empty-poll scan charge,
      or the early end of an R-round); a replica must re-prove the
      silence — known head not yet visible, or drained below every
      supply horizon;
    * ``(rel_c, 2, j, 0, None)`` — input ``j`` was the readable witness
      that turned a scan into a rotation instead of a park; a replica
      must re-prove the head visible by then.

    Replication (:func:`replicate_window`) replays rounds of this list
    against *live* committed state only — real present items, real slot
    schedules, real horizons — so a committed train is cycle-exact by the
    same argument as :func:`plan_window`; the pattern merely replaces the
    polling-loop search with a straight-line verification.
    """

    __slots__ = ("delta", "idx0", "reads0", "events", "n_takes",
                 "inputs_used", "takes_per_input", "target_fifos", "sigs",
                 "cruise")

    #: Sentinel value of :attr:`cruise` meaning "induction tables not yet
    #: compiled". :attr:`cruise` is a lazy three-state cache:
    #:
    #: * :data:`CRUISE_TODO` — no cruise attempt has touched this pattern
    #:   yet; the first :func:`_cruise_tables` call compiles it (patterns
    #:   are compiled eagerly on confirmation, but cruise eligibility is
    #:   only decided when the induction first arms);
    #: * ``None`` — compilation ran and proved the pattern *ineligible*:
    #:   its stall model embeds a release-floor raise, whose value is
    #:   per-release information the arithmetic replay cannot re-derive,
    #:   so every round of this pattern stays on validated replication;
    #: * a :class:`_CruiseTables` instance — the compiled induction
    #:   tables, cached for the pattern's lifetime.
    CRUISE_TODO: object = object()

    def __init__(self, delta, idx0, reads0, ops_rel, obs_rel,
                 sigs=()) -> None:
        self.sigs = sigs  # the window signatures one round cycles through
        self.cruise = self.CRUISE_TODO  # see the CRUISE_TODO state table
        self.delta = delta    # round length in cycles
        self.idx0 = idx0      # arbiter pointer at every round boundary
        self.reads0 = reads0  # open R-round reads at every round boundary
        self.n_takes = len(ops_rel)
        # Observation dedupe. Between two consecutive takes on input j
        # (a *span*) the head is fixed, so of all "unreadable at X"
        # observations only the latest binds (ready > X_max implies the
        # rest) and of all "readable by X" witnesses only the earliest.
        # Raw traces carry one obs per scanned input per rotation/park
        # cycle; spans compress that to at most two checks each.
        takes_seen: dict = {}
        u_max: dict = {}  # (j, span) -> max rel cycle of 'u' obs
        r_min: dict = {}  # (j, span) -> min rel cycle of 'r' obs
        merged = [(rel_t, 0, j, rel_s, tgt)
                  for (rel_t, j, rel_s, tgt) in ops_rel]
        merged.extend((rel_c, 2 if readable else 1, j, 0, None)
                      for (rel_c, j, readable) in obs_rel)
        # Same-cycle order must mirror the live planner's program order:
        # a park's wake-up scan witnesses the head readable *and then*
        # takes it in the same cycle, so the readable witness precedes
        # the take (it binds to the pre-take head), while the park-race
        # unreadable observations refer to the post-take head and follow
        # it. Sorting by raw kind would key the witness one item ahead —
        # a constraint one supply cycle too strict, which starves every
        # replica round in the zero-slack regime of relay interior hops.
        merged.sort(key=lambda e: (e[0], _EV_RANK[e[1]]))
        for ev in merged:
            rel_c, kind, j = ev[0], ev[1], ev[2]
            if kind == 0:
                takes_seen[j] = takes_seen.get(j, 0) + 1
            else:
                key = (j, takes_seen.get(j, 0))
                if kind == 1:
                    if rel_c > u_max.get(key, -1):
                        u_max[key] = rel_c
                else:
                    if rel_c < r_min.get(key, delta + 1):
                        r_min[key] = rel_c
        events = [ev for ev in merged if ev[1] == 0]
        events.extend((rel_c, 1, j, 0, None)
                      for (j, _s), rel_c in u_max.items())
        events.extend((rel_c, 2, j, 0, None)
                      for (j, _s), rel_c in r_min.items())
        events.sort(key=lambda e: (e[0], _EV_RANK[e[1]]))
        self.events = tuple(events)
        used = {ev[2] for ev in events}
        self.inputs_used = tuple(sorted(used))
        # Per-round supply demand and the set of staged-into FIFOs, for
        # the O(inputs) round precheck and the train's dirty-wiring.
        self.takes_per_input = tuple(
            (j, takes_seen[j]) for j in sorted(takes_seen))
        tfifos = []
        for (_t, _j, _s, tgt) in ops_rel:
            fifo = tgt.fifo if isinstance(tgt, Link) else tgt
            if fifo not in tfifos:
                tfifos.append(fifo)
        self.target_fifos = tuple(tfifos)


class _CruiseTables:
    """Static per-pattern tables driving cruise-mode induction.

    ``ops`` — the round's takes in event order as ``(j, rel_c, rel_s,
    target)``; ``per_input`` — per polled input, the take count per round
    and the constraint list ``(slot, kind, rel_c, op_idx)`` the scan
    checks per round (``slot`` = takes on that input earlier in the
    round, so the head the constraint refers to is item
    ``ptr + k*tpr + slot``); ``per_cursor`` — per staged-into target, the
    stages per round and their relative stage cycles, for the free-slot /
    release-schedule bound.
    """

    __slots__ = ("ops", "per_input", "per_cursor")

    def __init__(self, ops, per_input, per_cursor) -> None:
        self.ops = ops
        self.per_input = per_input
        self.per_cursor = per_cursor


def _compile_cruise(pattern):
    """Compile cruise-induction tables for ``pattern`` (None: ineligible).

    Cruise replays rounds by pure arithmetic, so the pattern's stall
    model must be *floor-free*: every stage cycle must follow from the
    take cycle and link pacing alone (``s = max(X, next_free)``), never
    from a release floor raising it — a floor's value is per-release
    information the arithmetic replay cannot re-derive. For non-link
    targets that means ``rel_s == rel_c``; for links the steady-state
    pacing recurrence (seeded with the previous round's last link stage,
    Δ-shifted back — exact for every round after a validated one) must
    reproduce each ``rel_s``. Patterns that fail stay on validated
    replication.
    """
    delta = pattern.delta
    ops: list = []
    cons: dict = {}        # j -> [(slot, kind, rel_c, op_idx)]
    takes_seen: dict = {}  # j -> takes earlier in the round
    cursor_ops: dict = {}  # id(target) -> (target, [(rel_c, rel_s)])
    cursor_order: list = []
    for rel_c, kind, j, rel_s, target in pattern.events:
        slot = takes_seen.get(j, 0)
        if kind == 0:
            cons.setdefault(j, []).append((slot, 0, rel_c, len(ops)))
            ops.append((j, rel_c, rel_s, target))
            takes_seen[j] = slot + 1
            ent = cursor_ops.get(id(target))
            if ent is None:
                cursor_ops[id(target)] = (target, [(rel_c, rel_s)])
                cursor_order.append(id(target))
            else:
                ent[1].append((rel_c, rel_s))
        else:
            cons.setdefault(j, []).append((slot, kind, rel_c, -1))
    if not ops:
        return None
    for cid in cursor_order:
        target, tops = cursor_ops[cid]
        if isinstance(target, Link):
            pace = target.cycles_per_packet
            nf = tops[-1][1] - delta + pace
            for rel_c, rel_s in tops:
                s = nf if nf > rel_c else rel_c
                if s != rel_s:
                    return None  # a release floor shaped this stage
                nf = rel_s + pace
        else:
            for rel_c, rel_s in tops:
                if rel_s != rel_c:
                    return None  # a release floor shaped this stage
    per_input = tuple((j, takes_seen.get(j, 0), tuple(cl))
                      for j, cl in cons.items())
    per_cursor = tuple(
        (target, len(tops), tuple(rs for _rc, rs in tops))
        for target, tops in (cursor_ops[cid] for cid in cursor_order))
    return _CruiseTables(tuple(ops), per_input, per_cursor)


def _cruise_tables(pattern):
    """Cached cruise tables of ``pattern`` (compiled on first request)."""
    ct = pattern.cruise
    if ct is WindowPattern.CRUISE_TODO:
        ct = pattern.cruise = _compile_cruise(pattern)
    return ct


def _compile_pattern(entries):
    """Fold ``p`` contiguous window signatures into one round's pattern.

    Each signature's relative cycles are offset by the cumulative length
    of the windows before it, so the compiled round replays the whole
    period in one validation pass; the signatures themselves are kept so
    later ``plan_window`` commits can be matched against the cycle
    (``SupplyPlanner._observe`` phase tracking).
    """
    sigs = tuple(sig for sig, _end in entries)
    delta = 0
    ops: list = []
    obs: list = []
    for sig in sigs:
        w_delta, _sidx, _sreads, _eidx, _ereads, ops_rel, obs_rel = sig
        ops.extend((t + delta, j, s + delta, tgt)
                   for (t, j, s, tgt) in ops_rel)
        obs.extend((c + delta, j, r) for (c, j, r) in obs_rel)
        delta += w_delta
    return WindowPattern(delta, sigs[0][1], sigs[0][2], tuple(ops),
                         tuple(obs), sigs)


class _ReplicaSession:
    """Per-CK state of one replication train (see :func:`replicate_train`).

    Holds the CK's full input inventory snapshot (extended in place as
    peer sessions publish their tentative stages), the validated-round
    accumulators, and the per-round accept cycles — everything needed to
    bulk-commit the session at train end. ``done`` marks a session whose
    last failure was a *shape divergence* (routing change, a stall
    landing off-pattern early, a silence observation broken by an
    already-visible item): no amount of further train progress can
    un-fail those, unlike slot or supply exhaustion.
    """

    __slots__ = ("ck", "arb", "pattern", "start", "T", "snap_items",
                 "snap_ready", "snap_iter", "ptr", "avail", "take_cycles",
                 "all_takes", "rounds", "takes", "blocked_on", "starved_on",
                 "hz_cache", "stage_cursors", "done", "dirty", "last_fail",
                 "ct", "op_keys", "cruise_armed", "cruise_stop")

    def __init__(self, ck, pattern, start, now) -> None:
        self.ck = ck
        self.arb = ck.arbiter
        self.pattern = pattern
        self.start = start
        self.T = start  # next round's base cycle
        inputs = self.arb.inputs
        # Lazy committed-inventory snapshots: items are pulled from the
        # FIFO's present iterator only as validation reaches them, so a
        # short train against a deep link inventory never materialises
        # the whole bandwidth-delay product.
        self.snap_items: dict = {}
        self.snap_ready: dict = {}
        self.snap_iter: dict = {}
        self.ptr: dict = {}
        self.avail: dict = {}  # un-taken items per input (count precheck)
        for j in pattern.inputs_used:
            self.snap_items[j] = []
            self.snap_ready[j] = []
            self.snap_iter[j] = inputs[j].iter_present()
            self.ptr[j] = 0
            self.avail[j] = inputs[j].present_count
        self.take_cycles: dict = {j: [] for j in pattern.inputs_used}
        self.all_takes: list = []
        self.rounds = 0
        self.takes = 0
        self.blocked_on = None
        self.starved_on = None
        self.hz_cache: dict = {}
        self.stage_cursors: dict = {}  # id(cursor) -> cursor (this CK's)
        self.done = False
        self.dirty = True       # something changed since the last failure
        self.last_fail = None   # (event, X, detail) of the last failure
        # Cruise-mode induction state: the pattern's compiled tables
        # (None while cruise is off or the pattern is ineligible), the
        # routing keys of the last validated round's takes (the drift
        # check's reference), whether that round armed the induction, and
        # the externality that ended the last cruise scan (diagnostics).
        self.ct = None
        self.op_keys = None
        self.cruise_armed = False
        self.cruise_stop = None

    def ensure(self, j, k) -> bool:
        """Extend input ``j``'s snapshot to >= ``k`` items if they exist."""
        items = self.snap_items[j]
        if len(items) >= k:
            return True
        it = self.snap_iter[j]
        if it is None:
            return False  # committed side drained; only feeds extend now
        ready = self.snap_ready[j]
        for item, r in it:
            items.append(item)
            ready.append(r)
            if len(items) >= k:
                return True
        self.snap_iter[j] = None
        return False

    def feed(self, j, pkt, ready) -> None:
        """Append a peer session's validated stage as virtual supply."""
        it = self.snap_iter[j]
        if it is not None:
            # FIFO order: every committed item precedes the train's
            # stages, so the lazy iterator must drain first.
            items = self.snap_items[j]
            rdy = self.snap_ready[j]
            for item, r in it:
                items.append(item)
                rdy.append(r)
            self.snap_iter[j] = None
        self.snap_items[j].append(pkt)
        self.snap_ready[j].append(ready)
        self.avail[j] += 1


#: Safety bound on coordinator sweeps per train (each sweep advances at
#: least one session by one round, so real trains end far earlier).
TRAIN_SWEEP_LIMIT = 4096

#: Optional diagnostics hook: a callable invoked once per finished train
#: with the session list (tests and ad-hoc profiling; None in production).
_train_debug = None

#: Test seam for the fast-forward guard battery: a callable
#: ``probe(guard, hop) -> bool`` consulted at every guard site of the
#: analytic jump's proof (``hop`` is the chain position the guard
#: concerns, ``-1`` for chain-wide guards). Returning True forces that
#: guard to report failure, so tests can drive each abort path
#: deterministically and pin the per-packet-replication fallback
#: bit-exact (``tests/test_macro_ff_aborts.py``); None in production.
_ff_guard_probe = None


def _ff_veto(guard: str, hop: int = -1) -> bool:
    """True when the test probe vetoes this guard site (see above)."""
    p = _ff_guard_probe
    return p is not None and p(guard, hop)


def replicate_train(planner, ck, engine, start, memo, cursors, stamp):
    """Co-replicate confirmed patterns along a pipeline and bulk-commit.

    The train starts from ``ck``'s confirmed pattern at ``start`` and
    validates Δ-shifted rounds against *live committed state only* — the
    full input inventories (no snapshot truncation: replication consumes
    facts, so a deep link FIFO replicates its whole bandwidth-delay
    product in one call), the shared cascade cursors' slot budgets with
    the exact :func:`plan_window` stall formula, and the supply horizons
    (with the self-silence retry) for every silence observation.

    When a session's round fails on *slot exhaustion* in a FIFO whose
    consumer CK also has a live, contiguous pattern — or on *supply
    exhaustion* in a FIFO whose producer CK does — that peer joins the
    train as its own session, and the sessions ping-pong: a validated
    round's stages are published to the consumer session as virtual
    supply (the exact items with their exact visibility cycles), its
    takes to the producer's cursor as virtual slot releases. This is
    sound for the same reason the cascade is: everything published will
    be committed before any other process runs, with exactly the cycles
    it was validated at. A round whose computed schedule deviates from
    its pattern by even one cycle is rolled back and never committed;
    :func:`plan_window` handles the deviation exactly on the next visit.

    At train end every session bulk-commits — all stages first (so
    cross-session takes find their items), then all takes — one
    ``stage_burst``/``take_burst`` pair per FIFO for the whole train,
    with persistent slot pairing on ``Fifo._reserved_paired`` and a
    single firm wake (:meth:`Engine.preempt`) per sleeping peer.

    Returns the origin's :class:`PlanResult` (or ``None`` if the origin
    proved no full round); peer sessions' results are appended to
    ``planner._extra_results`` for the cascade to fan out from.
    """
    now = engine.cycle
    cruise_on = planner.cruise
    # Macro-cruise: app-side channel lanes this train may extend. The
    # take budget is raised only under the global cruise condition (see
    # SupplyPlanner.macro_take_budget); each lane still proves itself
    # per resource before any extension.
    macro_lanes = planner.app_lanes if planner.macro else None
    max_takes = planner.macro_take_budget() if macro_lanes else PLAN_MAX_TAKES
    lanes_used: dict = {}   # id(lane) -> lane joined to this train
    lane_extends = 0
    origin = _ReplicaSession(ck, ck.arbiter._pattern, start, now)
    if cruise_on:
        origin.ct = _cruise_tables(origin.pattern)
    sessions: dict = {id(ck): origin}
    order = [origin]
    feeds: dict = {}    # id(fifo) -> (consumer session, its input index)
    stager: dict = {}   # id(fifo) -> session whose pattern stages into it
    v_rels: dict = {}   # id(fifo) -> virtual release cycles (train takes)
    v_items: dict = {}  # id(fifo) -> [(pkt, ready)] validated train stages
    cursor_fifo: dict = {}  # id(fifo) -> live cursor staging into it

    def lane_of(fifo):
        """The extendable app lane on ``fifo``, joined to the train."""
        if macro_lanes is None:
            return None
        lane = macro_lanes.get(id(fifo))
        if lane is None or not lane.extendable():
            return None
        if id(lane) not in lanes_used:
            lane.begin(now)
            lanes_used[id(lane)] = lane
        return lane

    def hook_inputs(sess) -> None:
        inputs = sess.arb.inputs
        for j in sess.pattern.inputs_used:
            fifo = inputs[j]
            feeds[id(fifo)] = (sess, j)
            # Stages other sessions validated before this one joined are
            # not in the committed snapshot yet: replay them.
            pend = v_items.get(id(fifo))
            if pend:
                for pkt, r in pend:
                    sess.feed(j, pkt, r)
        for fifo in sess.pattern.target_fifos:
            stager[id(fifo)] = sess

    hook_inputs(origin)

    def try_join(peer) -> None:
        """Add a peer CK's session if its pattern can continue the train.

        Sleeping-window peers join like a co-plan would; the cascade's
        *origin* CK may join even in the ``"run"`` state — it is inside
        its own planner call right now and re-reads ``_plan_until`` the
        moment control returns, exactly as after a cascade extension.
        """
        if ff_done:
            # The analytic fast-forward extrapolated per-FIFO state
            # without mirroring it into v_items/v_rels; a session joining
            # now would replay a corrupted virtual history. The jump
            # already banked the steady state — new peers wait one event.
            return
        if peer is None or id(peer) in sessions:
            return
        arb = peer.arbiter
        pat = arb._pattern
        proc = peer.proc
        state_ok = (arb._resume_state == "window"
                    or peer is planner._cascade_origin)
        if (pat is None or proc is None or proc.finished
                or not state_ok
                or arb._plan_until != arb._pattern_end
                or arb._pattern_phase != 0
                or arb._idx != pat.idx0
                or arb._resume_reads != pat.reads0):
            return
        # Cheap demand precheck before building any session state: the
        # peer's first round needs its full take counts from committed
        # items plus whatever the train has already published. A peer
        # rejected here is retried on every later failure of the session
        # that wanted it, by which time more may have been published.
        inputs = arb.inputs
        for j, need in pat.takes_per_input:
            f = inputs[j]
            if f.present_count + len(v_items.get(id(f), ())) < need:
                return
        sess = _ReplicaSession(peer, pat, arb._plan_until, now)
        if cruise_on:
            sess.ct = _cruise_tables(pat)
        sessions[id(peer)] = sess
        order.append(sess)
        hook_inputs(sess)  # also replays earlier sessions' virtual items

    def ff_close_chain() -> bool:
        """Join the whole relay pipeline around the train (macro only).

        Ordinary trains grow on demand — a peer joins when a session
        blocks on its slots or starves on its supply. In a deep-buffer
        steady state the interior hops of a relay chain do neither
        (every FIFO holds its bandwidth-delay product), so a multi-hop
        program shatters into per-CK trains and the chain resolver
        never sees the whole stream. Under the raised macro budget,
        walk every session's inputs upstream and targets downstream
        and invite those CKs too; ``try_join``'s own preconditions
        (confirmed contiguous pattern, demand precheck) still decide.
        Returns True when the train grew.
        """
        n0 = len(order)
        for sess in order:  # appends during iteration close transitively
            inputs = sess.arb.inputs
            for j in sess.pattern.inputs_used:
                try_join(planner.producer_ck.get(id(inputs[j])))
            for tgt in sess.pattern.target_fifos:
                try_join(planner.consumer_ck.get(id(tgt)))
        return len(order) > n0

    def publish_stage(fifo, pkt, s) -> None:
        ready = s + fifo.latency
        v_items.setdefault(id(fifo), []).append((pkt, ready))
        hooked = feeds.get(id(fifo))
        if hooked is not None:
            sess, j = hooked
            sess.feed(j, pkt, ready)
            sess.dirty = True  # new supply may unblock a starved round
        elif macro_lanes is not None:
            # A stage into an app receive endpoint: virtual supply for
            # the sleeping pop_vec's lane.
            lane = lane_of(fifo)
            if lane is not None and not lane.is_send:
                lane.note_item(pkt, ready)

    def publish_take(fifo, x) -> None:
        v_rels.setdefault(id(fifo), []).append(x)
        cur = cursor_fifo.get(id(fifo))
        if cur is not None:
            cur.rels.append(x)
        peer = stager.get(id(fifo))
        if peer is not None:
            peer.dirty = True  # a freed slot may unblock a blocked round
        elif macro_lanes is not None:
            # A take from an app send endpoint: a virtual slot release
            # for the sleeping push_vec's lane.
            lane = lane_of(fifo)
            if lane is not None and lane.is_send:
                lane.note_release(x)

    def validate_round(sess) -> bool:
        ck_s = sess.ck
        inputs = sess.arb.inputs
        avail = sess.avail
        # O(inputs) demand precheck: a round needs its full take count
        # per input (committed plus already-published virtual supply) —
        # without it, walking the events just to fail is wasted work.
        for j, need in sess.pattern.takes_per_input:
            if avail[j] < need:
                sess.starved_on = inputs[j]
                sess.blocked_on = None
                sess.last_fail = ('precheck', j, need, avail[j])
                return False
        route = ck_s._route
        route_memo = ck_s._route_memo
        snap_items = sess.snap_items
        snap_ready = sess.snap_ready
        ptr = sess.ptr
        T = sess.T
        # A fully validated round arms cruise-mode induction; record the
        # routing key of every take as the drift check's reference.
        round_keys: list | None = [] if sess.ct is not None else None
        ok = True
        fail = None
        fatal = False          # shape divergence: never retry
        saves: dict = {}       # id(cursor) -> (cursor, free, rel_ptr, nf)
        stage_buf: dict = {}   # id(cursor) -> (cursor, [pkts], [cycles])
        round_takes: list = []  # (input_idx, fifo, take_cycle) event order
        round_stages: list = []  # (fifo, pkt, stage_cycle) in event order
        for ev in sess.pattern.events:
            rel_c, kind, j, rel_s, target = ev
            X = T + rel_c
            if kind == 0:
                p = ptr[j]
                if not sess.ensure(j, p + 1) or snap_ready[j][p] > X:
                    sess.starved_on = inputs[j]
                    sess.blocked_on = None
                    fail = ('take-starved', j, X,
                            snap_ready[j][p] if p < len(snap_items[j])
                            else None)
                    ok = False
                    break
                pkt = snap_items[j][p]
                key = (pkt.dst << 8) | pkt.port
                out = route_memo.get(key)
                if out is None:
                    try:
                        out = route(pkt)
                    except RoutingError:
                        # plan_window stops here too; the per-flit path
                        # raises at this exact cycle after the fallback.
                        fail = ('route-error', j, X, None)
                        ok = False
                        fatal = True
                        break
                    route_memo[key] = out
                if out is not target:
                    fail = ('target-mismatch', j, X, None)
                    ok = False  # traffic shape changed: not this pattern
                    fatal = True
                    break
                if round_keys is not None:
                    round_keys.append(key)
                cid = id(out)
                cur = cursors.get(cid)
                if cur is None:
                    cur = cursors[cid] = _TargetCursor(out, now, stamp)
                    fresh = True
                elif cur.stamp != stamp:
                    cur.refresh(now)
                    cur.stamp = stamp
                    fresh = True
                else:
                    fresh = False
                if fresh:
                    # First touch in this train: graft the virtual
                    # releases other sessions already validated.
                    pend = v_rels.get(id(cur.fifo))
                    if pend:
                        cur.rels = cur.rels + pend
                    cursor_fifo[id(cur.fifo)] = cur
                if cid not in saves:
                    saves[cid] = (cur, cur.free, cur.rel_ptr, cur.next_free)
                # Exact plan_window stall model; the outcome must land on
                # the pattern's relative stage cycle or the round is off.
                s = cur.next_free if (cur.is_link and cur.next_free > X) \
                    else X
                if cur.free > 0:
                    cur.free -= 1
                elif cur.rel_ptr < len(cur.rels):
                    floor = cur.rels[cur.rel_ptr] + 1
                    cur.rel_ptr += 1
                    if floor > s:
                        s = floor
                else:
                    sess.blocked_on = cur.fifo
                    sess.starved_on = None
                    fail = ('no-slot', j, X, cur.fifo.name)
                    ok = False
                    break
                expected = T + rel_s
                if s != expected:
                    if s > expected:
                        sess.blocked_on = cur.fifo  # stall worsened
                        sess.starved_on = None
                    else:
                        fatal = True  # a stall the pattern had vanished
                    fail = ('stage-cycle', j, X, (s, expected))
                    ok = False
                    break
                if cur.is_link:
                    cur.next_free = s + cur.pace
                buf = stage_buf.get(cid)
                if buf is None:
                    buf = stage_buf[cid] = (cur, [], [])
                buf[1].append(pkt)
                buf[2].append(s)
                ptr[j] = p + 1
                round_takes.append((j, inputs[j], X))
                round_stages.append((cur.fifo, pkt, s))
            elif kind == 1:
                # Pattern polled this input and found it unreadable: the
                # replica must re-prove it. With items (real or virtual)
                # present the head's visibility is exact; drained inputs
                # need a horizon past X (retrying under self-silence).
                p = ptr[j]
                if sess.ensure(j, p + 1):
                    if snap_ready[j][p] <= X:
                        fail = ('early-arrival', j, X, snap_ready[j][p])
                        ok = False  # an arrival beat the pattern's rhythm
                        fatal = True
                        break
                else:
                    hz = sess.hz_cache.get(j)
                    if hz is None:
                        hz = sess.hz_cache[j] = \
                            inputs[j].supply_horizon(memo)
                    if hz <= X and _silent_hz(ck_s, inputs[j], X) <= X:
                        sess.starved_on = inputs[j]
                        sess.blocked_on = None
                        fail = ('no-horizon', j, X, hz)
                        ok = False
                        break
            else:  # kind == 2: the readable witness of a rotation
                p = ptr[j]
                if not sess.ensure(j, p + 1) or snap_ready[j][p] > X:
                    sess.starved_on = inputs[j]
                    sess.blocked_on = None
                    fail = ('witness-missing', j, X,
                            snap_ready[j][p] if p < len(snap_items[j])
                            else None)
                    ok = False
                    break
        if not ok:
            # Roll the failed round back: cursor budgets to their
            # round-start state, input pointers past validated takes only.
            for cur, free, rel_ptr, nf in saves.values():
                cur.free = free
                cur.rel_ptr = rel_ptr
                cur.next_free = nf
            for j, _f, _x in round_takes:
                ptr[j] -= 1
            if fatal:
                sess.done = True
            sess.last_fail = fail
            sess.cruise_armed = False  # induction needs a fresh base round
            return False
        for cid, (cur, pkts, cycles) in stage_buf.items():
            cur.stage_pkts.extend(pkts)
            cur.stage_cycles.extend(cycles)
            sess.stage_cursors[cid] = cur
        for j, fifo, x in round_takes:
            sess.take_cycles[j].append(x)
            sess.all_takes.append(x)
            avail[j] -= 1
            publish_take(fifo, x)
        for fifo, pkt, s in round_stages:
            publish_stage(fifo, pkt, s)
        sess.takes += sess.pattern.n_takes
        sess.rounds += 1
        sess.T += sess.pattern.delta
        sess.blocked_on = None
        sess.starved_on = None
        if round_keys is not None:
            sess.op_keys = round_keys
            sess.cruise_armed = True
        return True

    def cruise(sess) -> int:
        """Cruise-mode induction: commit K further rounds arithmetically.

        Runs directly after a validated round armed the induction (so
        every target cursor is live and link pacing state is exactly the
        pattern's Δ-shift). The scan walks the session's *externality
        ledger* — every resource the next rounds touch that is not
        train-internal — and bounds K by the first external limit:

        * committed/fed supply per input — item existence, readiness by
          the shifted take/witness cycle, and routing-key equality with
          the validated round (a key drift means the traffic shape may
          route elsewhere: re-validate);
        * silence observations — an early arrival among materialised
          items, or a drained input's supply horizon (producer-sleep
          floors included) overtaking the shifted observation cycle;
        * slots per target — free budget plus the materialised release
          schedule, each release usable only where it cannot raise the
          stage above the pattern's cycle (floor-raising patterns were
          already rejected at compile time);
        * the train's take budget (``PLAN_MAX_TAKES``, or
          ``MACRO_MAX_TAKES`` under the macro-cruise global condition)
          and the ``CRUISE_MAX_ROUNDS`` Δ-drift guard.

        Everything checked is a monotone consequence of committed facts,
        so the K committed rounds are cycle-exact by the same argument
        as ``validate_round``; the first unproven round falls back to
        validated replication (or ends the train).
        """
        ct = sess.ct
        if ct is None or not sess.cruise_armed:
            return 0
        pat = sess.pattern
        n_takes = pat.n_takes
        K = (max_takes - sess.takes) // n_takes
        if K > CRUISE_MAX_ROUNDS:
            K = CRUISE_MAX_ROUNDS  # Δ-drift guard: re-anchor via validation
        if K <= 0:
            return 0
        stats = sess.arb.planner_stats
        stats.cruise_checks += 1
        T = sess.T
        delta = pat.delta
        inputs = sess.arb.inputs
        keys = sess.op_keys
        stop = None
        # ---- supply-side externality: materialised items and horizons.
        # Taken-from inputs are pre-bounded by the unconsumed inventory
        # (so the refining scan only ever walks items that exist);
        # observation-only inputs reduce to closed-form bounds — their
        # head never advances, so one readiness or horizon comparison
        # bounds every round at once. ------------------------------------
        for j, tpr, cons in ct.per_input:
            if tpr:
                k_sup = sess.avail[j] // tpr
                if k_sup < K:
                    K = k_sup
                    stop = ('supply', j)
                    if K <= 0:
                        break
            items = sess.snap_items[j]
            ready = sess.snap_ready[j]
            p0 = sess.ptr[j]
            if not tpr:
                # Observation-only input: closed-form per constraint.
                have = len(items) > p0 or sess.ensure(j, p0 + 1)
                for _slot, kind, rel_c, _op in cons:
                    if have:
                        r = ready[p0]
                        if kind == 1:
                            # silence: X = T + k*delta + rel_c < r
                            bound = (r - T - rel_c - 1) // delta + 1
                            tag = 'early'
                        elif r <= T + rel_c:
                            continue  # witness readable: holds as X grows
                        else:
                            bound = 0
                            tag = 'ready'
                    elif kind == 1:
                        hz = sess.hz_cache.get(j)
                        if hz is None:
                            hz = sess.hz_cache[j] = \
                                inputs[j].supply_horizon(memo)
                        bound = (hz - T - rel_c - 1) // delta + 1
                        tag = 'supply'
                    else:
                        bound = 0
                        tag = 'supply'
                    if bound < K:
                        K = bound
                        stop = (tag, j)
                        if K <= 0:
                            break
                if K <= 0:
                    break
                continue
            hz = None
            k = 0
            while k < K:
                base = T + k * delta
                pbase = p0 + k * tpr
                for slot, kind, rel_c, op_idx in cons:
                    idx = pbase + slot
                    X = base + rel_c
                    if idx >= len(items) and not sess.ensure(j, idx + 1):
                        if kind == 1:
                            if hz is None:
                                hz = sess.hz_cache.get(j)
                                if hz is None:
                                    hz = sess.hz_cache[j] = \
                                        inputs[j].supply_horizon(memo)
                            if hz > X:
                                continue  # provably silent through X
                        K = k
                        stop = ('supply', j)
                        break
                    if kind == 1:
                        if ready[idx] <= X:
                            K = k  # an arrival would beat the rhythm
                            stop = ('early', j)
                            break
                    elif ready[idx] > X:
                        K = k  # head not provably readable in time
                        stop = ('ready', j)
                        break
                    elif kind == 0:
                        pkt = items[idx]
                        if ((pkt.dst << 8) | pkt.port) != keys[op_idx]:
                            K = k  # routing-key drift: re-validate
                            stop = ('key', j)
                            break
                else:
                    k += 1
                    continue
                break
            if K <= 0:
                break
        if K <= 0:
            sess.cruise_stop = stop
            return 0
        # ---- slot-side externality: free budget + release schedules ----
        curs = []
        for target, spr, rel_ss in ct.per_cursor:
            cur = cursors.get(id(target))
            if cur is None or cur.stamp != stamp:
                return 0  # pragma: no cover - armed implies live cursors
            curs.append(cur)
            free = cur.free
            rels = cur.rels
            rp = cur.rel_ptr
            n_r = len(rels)
            k_slot = (free + n_r - rp) // spr  # budget upper bound
            if k_slot < K:
                K = k_slot
                stop = ('slots', cur.fifo)
                if K <= 0:
                    break
            k = 0
            while k < K:
                base = T + k * delta
                q = k * spr - free
                for m in range(spr):
                    r = q + m
                    if r < 0:
                        continue  # covered by the free-slot budget
                    r += rp
                    if rels[r] + 1 > base + rel_ss[m]:
                        K = k
                        stop = ('slots', cur.fifo)
                        break
                else:
                    k += 1
                    continue
                break
            if K <= 0:
                break
        sess.cruise_stop = stop
        if K <= 0:
            return 0
        # ---- commit: arithmetic replay of the K proven rounds ----------
        op_cur = [cursors[id(t)] for (_j, _rc, _rs, t) in ct.ops]
        snap_items = sess.snap_items
        ptr = sess.ptr
        avail = sess.avail
        take_cycles = sess.take_cycles
        all_takes = sess.all_takes
        stage_cursors = sess.stage_cursors
        for k in range(K):
            base = T + k * delta
            for (j, rel_c, rel_s, target), cur in zip(ct.ops, op_cur):
                X = base + rel_c
                p = ptr[j]
                pkt = snap_items[j][p]
                ptr[j] = p + 1
                s = base + rel_s
                if cur.free > 0:
                    cur.free -= 1
                else:
                    cur.rel_ptr += 1
                cur.stage_pkts.append(pkt)
                cur.stage_cycles.append(s)
                # Same key as validate_round (the routing target), so a
                # cursor both planes touched stays a single entry.
                stage_cursors[id(target)] = cur
                take_cycles[j].append(X)
                all_takes.append(X)
                avail[j] -= 1
                publish_take(inputs[j], X)
                publish_stage(cur.fifo, pkt, s)
        last = T + (K - 1) * delta
        for cur, (_target, spr, rel_ss) in zip(curs, ct.per_cursor):
            if cur.is_link and spr:
                cur.next_free = last + rel_ss[-1] + cur.pace
        sess.takes += K * n_takes
        sess.rounds += K
        sess.T += K * delta
        sess.blocked_on = None
        sess.starved_on = None
        stats.cruise_commits += 1
        stats.cruise_rounds += K
        return K

    # ---- analytic stream fast-forward (the tier-2 macro path) ----------
    # Validated replication and cruise still do O(1) work *per packet*;
    # on a long steady stream that per-packet constant is the wall-clock
    # bound. But once the train's sweeps settle into an exact periodic
    # regime — every scalar advancing by the same per-period delta,
    # every tracked list appending a Δ-shifted copy of its previous
    # period's appends — the next R periods are closed-form arithmetic:
    # extend every cycle lattice by slice-shifting, advance every
    # counter by R deltas, append the packet runs by stream position,
    # and let the train's ordinary bulk commit land the whole span. The
    # guard battery below reduces that induction to committed facts
    # (conservation along the chain, frozen-value monotonicity, horizon
    # and budget bounds); any guard failing just leaves the train on
    # per-packet replication, and the committed lattices still face the
    # stage/take monotonicity and visibility tripwires at commit time.
    FF_MAX_P = 4                # longest sweep period probed
    FF_KEEP = 2 * FF_MAX_P + 1  # checkpoints retained
    ff_done = False             # one jump per train; also locks try_join
    ff_dead = False             # permanent no-arm: stop probing the train
    ff_armed = False            # chains resolved at least once (stats)
    ff_chains = None            # resolved relay chains, one per stream
    ff_lists = None             # per chain: tracked (list, kind) registry
    ff_cps = None               # per chain: sweep-boundary fingerprints
    ff_shape = None             # (sessions, lanes) chains resolved under

    def ff_resolve():
        """Resolve the train as app-stream relay chains.

        Each chain is ``send lane -> session_0 -> ... -> session_n ->
        recv lane``, found by walking every session's single
        ``target_fifos[0]`` into the next session's input — transit CK
        relays included, so a 4-hop deep stream resolves as one chain
        of 8 relay sessions. Interior hops must be builder-wired relay
        FIFOs (``planner.relay_fifos``: CK-internal transit, no app
        writer can reach them), the whole channel history must sit
        inside the lanes (a stream element's position identifies its
        payload — the element-indexed packet runs depend on it), and no
        frozen-value release may be left in front of a sender's pacing
        cursor (a consumed release *writes* the cursor via ``max(cur,
        rel + 1)``, so only Δ-shifting train releases may feed it).

        Concurrent independent streams resolve as one chain per send
        lane; disjointness is structural — every session and recv lane
        is claimed by at most one walk, and any sharing (two sessions
        on one input, two chains through one session or endpoint) is an
        overlap refusal that falls back to per-packet replication.

        Returns ``(chains, permanent)``: ``chains`` is the resolved
        list or ``None``; ``permanent`` is falsy for refusals a later
        sweep can heal and a short reason string for ones it never can
        (a compiled pattern's shape — its input/target counts — is
        fixed for the whole train), which disarms probing for the rest
        of the train instead of re-fingerprinting every sweep. The
        reason string survives on ``planner.ff_disarm_reason`` /
        ``PlannerStats.ff_disarm_reason`` so reports can say *why* the
        program refused instead of showing silent zero counters.
        """
        sends = [la for la in lanes_used.values() if la.is_send]
        recvs = {}
        for la in lanes_used.values():
            if not la.is_send:
                recvs[id(la.chan.endpoint)] = la
        if not sends or len(recvs) != len(sends):
            return None, False
        by_input = {}
        for sess in order:
            tpi = sess.pattern.takes_per_input
            if len(tpi) != 1 or len(sess.pattern.target_fifos) != 1:
                # Pattern shape fixed for the train: never a relay.
                return None, "pattern shape (multi-input/target session)"
            if sess.done:
                return None, False
            j, tpr = tpi[0]
            fin = sess.arb.inputs[j]
            if id(fin) in by_input:
                return None, "overlap (two sessions on one input)"
            by_input[id(fin)] = (sess, j, tpr)
        relay = planner.relay_fifos
        chains = []
        taken: set = set()        # sessions claimed by an earlier walk
        claimed_eps: set = set()  # recv endpoints claimed by a chain
        for ls in sends:
            chan_s = ls.chan
            if not ls.active or ls.cur is None or ls.rel_ptr < ls.rels0 \
                    or chan_s._sent != ls.i:
                return None, False
            hops = []
            f = chan_s.endpoint
            while True:
                ent = by_input.get(id(f))
                if ent is None:
                    return None, False  # consumer not joined (yet)
                sess, j, tpr = ent
                if id(sess) in taken:
                    return None, "overlap (chains share a session)"
                taken.add(id(sess))
                if len(sess.stage_cursors) != 1 \
                        or sess.snap_iter[j] is not None:
                    return None, False
                cur = next(iter(sess.stage_cursors.values()))
                tgt = sess.pattern.target_fifos[0]
                if cur.stamp != stamp or cur.fifo is not tgt:
                    return None, False
                hops.append((sess, j, tpr, cur))
                if id(tgt) in relay:
                    f = tgt  # transit hop: keep walking the chain
                    continue
                lr = recvs.pop(id(tgt), None)
                break
            if lr is None:
                if id(tgt) in claimed_eps:
                    return None, "overlap (two chains on one endpoint)"
                if id(tgt) in planner.boundary_fifos:
                    # Cross-shard boundary: the consumer lives in another
                    # shard's planner, so this walk can never reach a
                    # recv lane — a permanent refusal.
                    return None, "cross-shard boundary chain"
                return None, False  # recv lane not registered (yet)
            claimed_eps.add(id(tgt))
            chan_r = lr.chan
            if not lr.active or lr.cur is None \
                    or chan_r._received != lr.got \
                    or chan_r._current is not None \
                    or chan_s.dtype is not chan_r.dtype:
                return None, False
            chains.append((ls, lr, hops,
                           chan_s.dtype.elements_per_packet))
        if len(taken) != len(order) or recvs:
            return None, False  # sessions/lanes outside every chain
        return chains, False

    def ff_track(chain):
        """Every per-packet list one chain appends to, with its kind:
        ``'c'`` cycle lattice, ``'p'`` packets, ``'t'`` (pkt, ready) —
        built by iterating the resolved chain in stream order."""
        ls, lr, hops, _epp = chain
        lists = [(ls.rels, 'c'), (ls.pend_cycles, 'c'),
                 (ls.pend_pkts, 'p')]
        for sess, j, _tpr, cur in hops:
            lists += [
                (sess.take_cycles[j], 'c'), (sess.all_takes, 'c'),
                (sess.snap_items[j], 'p'), (sess.snap_ready[j], 'c'),
                (cur.rels, 'c'), (cur.stage_cycles, 'c'),
                (cur.stage_pkts, 'p'),
            ]
        lists += [(lr.take_cycles, 'c'), (lr.items, 't')]
        return tuple(lists)

    def ff_checkpoint(chain, lists):
        """Fingerprint one chain at a sweep boundary: every counter,
        every cycle-valued frontier, every tracked list length."""
        ls, lr, hops, _epp = chain
        counts = [
            ls.i, ls.free, ls.rel_ptr, ls.claimed,
            ls.chan._packer.pending,
            lr.got, lr.ic, lr.ip, lr.pend_takes,
        ]
        cycles = [ls.cur, lr.cur]
        for sess, _jc, _tpr, cur in hops:
            counts += [sess.rounds, sess.takes, cur.free, cur.rel_ptr]
            cycles.append(sess.T)
            if cur.is_link:
                cycles.append(cur.next_free)
            for j in sess.pattern.inputs_used:
                counts.append(sess.ptr[j])
                counts.append(sess.avail[j])
                counts.append(len(sess.snap_items[j]))
        lens = tuple(len(L) for L, _k in lists)
        return (tuple(counts), tuple(cycles), lens)

    def ff_detect(cps):
        """Find the shortest period P whose last two windows advanced
        every counter equally and every cycle frontier by one common
        ΔT > 0 in one chain's fingerprint history. Returns ``(ΔT,
        count deltas, lens at the three checkpoints)`` or ``None``."""
        n_cp = len(cps)
        for P in range(1, FF_MAX_P + 1):
            if n_cp < 2 * P + 1:
                break
            cpA = cps[-1 - 2 * P]
            cpB = cps[-1 - P]
            cpC = cps[-1]
            dn = tuple(y - x for x, y in zip(cpA[0], cpB[0]))
            if dn != tuple(y - x for x, y in zip(cpB[0], cpC[0])):
                continue
            dc = tuple(y - x for x, y in zip(cpA[1], cpB[1]))
            if dc != tuple(y - x for x, y in zip(cpB[1], cpC[1])):
                continue
            dT = dc[0]
            if dT <= 0 or any(d != dT for d in dc):
                continue
            if tuple(y - x for x, y in zip(cpA[2], cpB[2])) != \
                    tuple(y - x for x, y in zip(cpB[2], cpC[2])):
                continue
            return (dT, dn, cpA[2], cpB[2], cpC[2])
        return None

    def ff_obs_bound(sess, jc):
        """Rounds for which every non-chain observation provably holds.

        Same closed forms as the cruise scan's observation-only inputs:
        nothing in the chain stages into or takes from these inputs (the
        fingerprint pinned their pointers and inventories), so their
        heads never move and one readiness or horizon comparison bounds
        every round at once. ``None`` = unbounded.
        """
        T = sess.T
        delta = sess.pattern.delta
        inputs = sess.arb.inputs
        bound = None
        for rel_c, kind, j, _rs, _tg in sess.pattern.events:
            if kind == 0 or j == jc:
                continue
            if sess.ensure(j, sess.ptr[j] + 1):
                r = sess.snap_ready[j][sess.ptr[j]]
                if kind == 1:
                    b = (r - T - rel_c - 1) // delta + 1
                elif r <= T + rel_c:
                    continue  # witness readable: holds as X grows
                else:
                    b = 0
            elif kind == 1:
                hz = sess.hz_cache.get(j)
                if hz is None:
                    hz = sess.hz_cache[j] = inputs[j].supply_horizon(memo)
                b = (hz - T - rel_c - 1) // delta + 1
            else:
                b = 0  # witness needs an item that is not there
            if bound is None or b < bound:
                bound = b
        return bound

    def ff_standing_rounds(sess, jc, tpr, max_rounds):
        """Rounds whose chain-input references to *already present*
        items all hold explicitly. Items the jump itself appends are
        the verified Δ-shift lattice — induction covers those — but the
        standing backlog holds frozen cycles the shift argument says
        nothing about, so each reference is checked against its shifted
        pattern cycle directly (O(backlog), the region is bounded by
        the constant chain occupancy)."""
        items = sess.snap_items[jc]
        ready = sess.snap_ready[jc]
        p0 = sess.ptr[jc]
        n_it = len(items)
        T = sess.T
        delta = sess.pattern.delta
        ok = max_rounds
        slot = 0
        for rel_c, kind, j, _rs, _tg in sess.pattern.events:
            if j != jc:
                continue
            s = slot
            if kind == 0:
                slot += 1
            k = 0
            while k < ok:
                idx = p0 + k * tpr + s
                if idx >= n_it:
                    break
                X = T + k * delta + rel_c
                bad = (ready[idx] <= X) if kind == 1 else (ready[idx] > X)
                if bad:
                    ok = k
                    break
                k += 1
        return ok

    def ff_abort(guard, hop=-1):
        """Report one failed guard of the analytic jump's proof.

        Trace-only: emits an ``abort`` event carrying the guard name and
        the chain hop it concerns (``-1`` for chain-wide guards), then
        returns False so callers fall back to per-packet replication —
        exactly what an unguarded ``return False`` did before.
        """
        if engine.trace is not None:
            engine.trace.emit(engine.cycle, "abort", "planner", "ff-abort",
                              args={"guard": guard, "hop": hop})
        return False

    def ff_apply(chain, lists, dT, dn, lensA, lensB, lensC):
        """Verify the period is a provable Δ-shift and bulk-apply R of
        them along the whole relay chain. Returns True when the jump
        landed (False leaves the train on ordinary replication with
        nothing mutated)."""
        ls, lr, hops, epp = chain
        (d_i, d_lsfree, d_lsrp, d_lscl, d_pend,
         d_got, d_ic, d_ip, d_ptk) = dn[:9]
        dE = d_i  # stream elements shipped per period
        if dE <= 0 or d_got != dE or dE % epp or dE % ls.width:
            return False
        ppp = dE // epp  # packets per period, uniform along the chain
        if d_pend or d_ic or d_lsfree:
            return False
        if d_lsrp != ppp or d_lscl != ppp or d_ip != ppp or d_ptk != ppp:
            return False
        # Per hop: the period must be a whole number of that session's
        # pattern rounds with the common ΔT, its takes must equal the
        # chain's packets per period (per-hop element conservation in
        # the deltas), and its chain-input bookkeeping must advance in
        # lockstep while every other input stays frozen.
        ei = 9
        rnds = []
        for sess, jc, tpr, cur in hops:
            rnd, tpp, d_cfree, d_crp = dn[ei:ei + 4]
            ei += 4
            if tpp != ppp or rnd <= 0 or tpp != rnd * tpr \
                    or dT != rnd * sess.pattern.delta \
                    or d_cfree or d_crp != ppp:
                return False
            rnds.append(rnd)
            for j in sess.pattern.inputs_used:
                d_ptr, d_avail, d_len = dn[ei:ei + 3]
                ei += 3
                if j == jc:
                    if d_ptr != ppp or d_avail or d_len != ppp:
                        return False
                elif d_ptr or d_avail or d_len:
                    return False
        # Every tracked list appended exactly one period's packets.
        if any(c - b != ppp for b, c in zip(lensB, lensC)):
            return False
        if lr.chan._current is not None or not ls.pend_pkts:
            return False
        tmpl = ls.pend_pkts[-1]
        if tmpl.count != epp or tmpl.dtype is not ls.chan.dtype:
            return False
        try:
            lr.chan._check_packet(tmpl)
        except ChannelError:
            return False

        def attrs_ok(p):
            return (p.count == epp and p.dst == tmpl.dst
                    and p.src == tmpl.src and p.port == tmpl.port
                    and p.op == tmpl.op and p.dtype is tmpl.dtype)

        # ---- Δ-shift verification of the two observed windows ----------
        for (L, kind), a, b, c in zip(lists, lensA, lensB, lensC):
            if len(L) != c:
                return False
            if kind == 'c':
                w2 = L[b:c]
                if w2 != [x + dT for x in L[a:b]]:
                    return False
                if w2 and w2[-1] - dT > w2[0]:
                    return False  # extension would break monotonicity
            elif kind == 'p':
                if not all(map(attrs_ok, L[a:c])):
                    return False
            else:  # (pkt, ready) pairs
                if [r for _p, r in L[b:c]] != \
                        [r + dT for _p, r in L[a:b]]:
                    return False
                if L[c - 1][1] - dT > L[b][1]:
                    return False
                if not all(attrs_ok(p) for p, _r in L[a:c]):
                    return False
        # ---- element conservation along every hop ----------------------
        # Walk the element frontier down the chain: each hop's standing
        # inventory pushes the next-staged element back, and the frontier
        # must stay packet-aligned and ahead of the receiver at every
        # hop, landing exactly on the receiver's pending backlog.
        pend0 = ls.chan._packer.pending
        e_ship0 = ls.i - pend0  # elements inside emitted packets
        g0 = lr.got
        pend_r = len(lr.items) - lr.ip
        if e_ship0 % epp or g0 % epp:
            return False
        e = e_ship0
        for k, (sess, jc, _tpr, _cur) in enumerate(hops):
            e -= epp * sess.avail[jc]
            if e < g0 or _ff_veto('conservation', k):
                return ff_abort('conservation', k)
        if e != g0 + epp * pend_r:
            return False
        # Standing (pre-window, frozen) items must look like the stream.
        for sess, jc, _tpr, _cur in hops:
            if not all(map(attrs_ok, sess.snap_items[jc][sess.ptr[jc]:])):
                return False
        if not all(attrs_ok(p) for p, _r in lr.items[lr.ip:]):
            return False
        # The sender's release backlog must sit on the Δ lattice:
        # consumed releases *write* the pacing cursor, so one frozen
        # off-lattice value would bend the whole trajectory. The scan
        # starts one period back to tie the first extension period to
        # the releases the last observed period consumed (``rel_ptr``
        # advanced ppp per window, so the start never dips into the
        # frozen slot-plan prefix below ``rels0``).
        rels_s = ls.rels
        for idx in range(ls.rel_ptr - ppp, len(rels_s) - ppp):
            if rels_s[idx + ppp] != rels_s[idx] + dT:
                return ff_abort('rel-lattice')
        if _ff_veto('rel-lattice'):
            return ff_abort('rel-lattice')
        # ---- every externality bounds R (in periods); the closed-form
        # horizon/budget bounds are the min over the whole chain. -------
        R = (len(ls.values) - ls.i) // dE - 1  # message end: leave the
        r_b = (lr.n - g0) // dE - 1            # tail to the sweeps
        if r_b < R:
            R = r_b
        for sess, _jc, _tpr, _cur in hops:
            r_b = (max_takes - sess.takes) // ppp - 1
            if r_b < R:
                R = r_b
        r_b = (1 << 22) // dE  # commit-list sanity cap
        if r_b < R:
            R = r_b
        if _ff_veto('budget'):
            return ff_abort('budget')
        for k, ((sess, jc, tpr, _cur), rpd) in enumerate(zip(hops, rnds)):
            ob = ff_obs_bound(sess, jc)
            if ob is not None and ob // rpd < R:
                R = ob // rpd
            if R < 2 or _ff_veto('horizon', k):
                return ff_abort('horizon', k)
            st = ff_standing_rounds(sess, jc, tpr, R * rpd)
            if st // rpd < R:
                R = st // rpd
            if _ff_veto('standing', k):
                return ff_abort('standing', k)
        if R < 2:
            return ff_abort('standing')
        # Standing recv-lane items must continue the readiness lattice
        # one-for-one against the items the last observed period
        # consumed: the lane take rule *writes* ``cur = max(cur,
        # ready)``, so a frozen ready either side of the lattice would
        # bend the take trajectory (``ip`` advanced ppp per window, so
        # ``ip - ppp`` is in range).
        items_r = lr.items
        cap = R * ppp
        m = 0
        for _p, rdy in items_r[lr.ip:]:
            if m >= cap:
                break
            if rdy != items_r[lr.ip + m - ppp][1] + dT:
                cap = m
                break
            m += 1
        if cap // ppp < R:
            R = cap // ppp
        if _ff_veto('recv-lattice'):
            return ff_abort('recv-lattice')
        # Cursor release backlogs only *floor* the pattern's stage
        # cycles (frozen values are older, hence smaller — but each
        # consumed release must still free its slot in time, at every
        # hop of the chain).
        for k, (_sess, _jc, _tpr, cur) in enumerate(hops):
            w2_sc = cur.stage_cycles[-ppp:]
            rels = cur.rels
            cap = R * ppp
            m = 0
            for idx in range(cur.rel_ptr,
                             min(len(rels), cur.rel_ptr + cap)):
                if rels[idx] + 1 > w2_sc[m % ppp] + (m // ppp + 1) * dT:
                    cap = m
                    break
                m += 1
            if cap // ppp < R:
                R = cap // ppp
            if _ff_veto('slots', k):
                return ff_abort('slots', k)
        if R < 2:
            return ff_abort('slots')
        # ---- apply: R periods in closed form ---------------------------
        e_tail0 = g0 + R * dE            # first element left in-chain
        dt_np = ls.chan.dtype.np_dtype
        values = ls.values
        total_p = R * ppp
        # One private copy of the whole surviving tail; each clone's
        # payload is a view into it (cheaper than per-packet np.array).
        tail_arr = np.array(values[e_tail0:e_ship0 + R * dE], dtype=dt_np)
        tail_pkts = [
            Packet(src=tmpl.src, dst=tmpl.dst, port=tmpl.port, op=tmpl.op,
                   count=epp, payload=tail_arr[k * epp:(k + 1) * epp],
                   dtype=tmpl.dtype)
            for k in range((e_ship0 + R * dE - e_tail0) // epp)]

        def pkt_run(e0):
            """The jump's packet appends for a list whose next append
            carries element ``e0``. Elements consumed inside the jump
            never have their payload read again (their queues drain
            within the span), so they share one template packet; the
            elements still in-chain at the end get real payload clones,
            shared across every list that holds them."""
            n_t = (e_tail0 - e0) // epp
            if n_t >= total_p:
                return [tmpl] * total_p
            if n_t <= 0:
                return tail_pkts[-n_t:total_p - n_t]
            return [tmpl] * n_t + tail_pkts[:total_p - n_t]

        shifts = (np.arange(1, R + 1, dtype=np.int64) * dT)[:, None]

        def ext_c(L):
            S = np.array(L[-ppp:], dtype=np.int64)
            L += (S[None, :] + shifts).ravel().tolist()

        S_r = [r for _p, r in lr.items[-ppp:]]
        # Sender lane: stages into the send endpoint.
        run_in = pkt_run(e_ship0)
        ext_c(ls.pend_cycles)
        ls.pend_pkts += run_in
        ext_c(ls.rels)
        # Each hop takes its input's run and stages the run shifted by
        # its own standing inventory, handing it to the next hop.
        e = e_ship0
        for sess, jc, _tpr, cur in hops:
            ext_c(sess.take_cycles[jc])
            ext_c(sess.all_takes)
            ext_c(sess.snap_ready[jc])
            sess.snap_items[jc] += run_in
            e -= epp * sess.avail[jc]
            run_in = pkt_run(e)
            ext_c(cur.rels)
            ext_c(cur.stage_cycles)
            cur.stage_pkts += run_in
        # Recv lane: takes the endpoint, payload straight to the caller.
        ext_c(lr.take_cycles)
        lr.items += list(zip(
            run_in,
            (np.array(S_r, dtype=np.int64)[None, :] + shifts)
            .ravel().tolist()))
        lr.out[g0:g0 + R * dE] = np.asarray(values[g0:g0 + R * dE], dt_np)
        # Counters: R per-period deltas each, at every hop.
        for (sess, jc, _tpr, cur), rnd in zip(hops, rnds):
            sess.rounds += R * rnd
            sess.takes += R * ppp
            sess.T += R * dT
            sess.ptr[jc] += total_p
            sess.blocked_on = sess.starved_on = None
            sess.dirty = True
            cur.rel_ptr += total_p
            if cur.is_link:
                cur.next_free += R * dT
        ls.i += R * dE
        ls.cur += R * dT
        ls.rel_ptr += total_p
        ls.claimed += total_p
        ls.chan._sent += R * dE
        ls.chan._packer._emitted += total_p
        if pend0:
            # The packer's partial-packet buffer must hold the elements
            # just before the advanced frontier, not the stale ones.
            ls.chan._packer._buf[:] = list(
                np.asarray(values[ls.i - pend0:ls.i], dt_np))
        lr.got += R * dE
        lr.cur += R * dT
        lr.ip += total_p
        lr.pend_takes += total_p
        lr.chan._received += R * dE
        stats = origin.arb.planner_stats
        stats.ff_bulk_rounds += R * sum(rnds)
        stats.ff_jumps += 1
        stats.ff_chain_hops += len(hops)
        return True

    def ff_try():
        nonlocal ff_chains, ff_lists, ff_cps, ff_shape, \
            ff_done, ff_dead, ff_armed
        shape = (len(order), len(lanes_used))
        if ff_chains is not None and shape != ff_shape:
            ff_chains = None  # a session or lane joined: chains staled
        if ff_chains is None:
            chains, permanent = ff_resolve()
            if chains is None:
                if permanent:
                    # Shape can never materialize: stop fingerprinting
                    # this train AND drop the program-wide probing taxes
                    # (chain closure, futility-backoff override).
                    ff_dead = True
                    planner.ff_disarmed = True
                    planner.ff_disarm_reason = permanent
                    stats = origin.arb.planner_stats
                    stats.ff_disarms += 1
                    stats.ff_disarm_reason = permanent
                    if engine.trace is not None:
                        engine.trace.emit(
                            engine.cycle, "disarm", "planner", "ff-disarm",
                            args={"reason": permanent})
                return False
            ff_shape = shape
            ff_armed = True
            ff_chains = chains
            ff_lists = [ff_track(c) for c in chains]
            ff_cps = [[] for _ in chains]
        for chain, lists, cps in zip(ff_chains, ff_lists, ff_cps):
            cps.append(ff_checkpoint(chain, lists))
            if len(cps) > FF_KEEP:
                del cps[0]
            det = ff_detect(cps)
            if det is not None and ff_apply(chain, lists, *det):
                ff_done = True
                return True
        return False

    # ---- ping-pong: sweep sessions until no round makes progress.
    # A failed session goes quiet (``dirty = False``) until a peer's
    # validated round publishes supply or slots it depends on, so stuck
    # sessions cost nothing while the rest of the train advances. A
    # validated round arms cruise-mode induction, which immediately
    # commits every further round it can prove arithmetically. ---------
    sweeps = 0
    progress = True
    while progress and sweeps < TRAIN_SWEEP_LIMIT:
        sweeps += 1
        progress = False
        for sess in order:
            if sess.done or not sess.dirty or \
                    sess.takes + sess.pattern.n_takes > max_takes:
                continue
            if validate_round(sess):
                progress = True
                if cruise_on and sess.cruise_armed:
                    cruise(sess)
            else:
                sess.dirty = False
                if sess.blocked_on is not None:
                    try_join(planner.consumer_ck.get(id(sess.blocked_on)))
                    if macro_lanes is not None:
                        # No CK behind this FIFO: maybe a sleeping app
                        # pop_vec whose lane can free slots by taking.
                        lane = lane_of(sess.blocked_on)
                        if lane is not None and not lane.is_send:
                            ext = lane.extend()
                            if ext:
                                lane_extends += 1
                                for x in ext:
                                    publish_take(sess.blocked_on, x)
                                progress = True
                elif sess.starved_on is not None:
                    try_join(planner.producer_ck.get(id(sess.starved_on)))
                    if macro_lanes is not None:
                        # No CK behind this FIFO: maybe a sleeping app
                        # push_vec whose lane can stage more supply.
                        lane = lane_of(sess.starved_on)
                        if lane is not None and lane.is_send:
                            ext = lane.extend()
                            if ext:
                                lane_extends += 1
                                for pkt, s in ext:
                                    publish_stage(sess.starved_on, pkt, s)
                                progress = True
        if not ff_done and not ff_dead and not planner.ff_disarmed \
                and macro_lanes is not None \
                and max_takes == MACRO_MAX_TAKES:
            if ff_close_chain():
                progress = True  # new sessions need a sweep before ff
            elif len(lanes_used) >= 2 and ff_try():
                progress = True

    committed = [sess for sess in order if sess.rounds]
    if not committed:
        # No session proved a round, but lane extensions may already
        # have advanced the app channels (elements drained from a
        # sleeping push_vec, endpoint items claimed for a sleeping
        # pop_vec) to unblock the sweep. That work is real: commit it
        # physically (stages before takes, as below) or the stream
        # silently loses elements.
        for lane in lanes_used.values():
            if lane.is_send:
                lane.commit()
        for lane in lanes_used.values():
            if not lane.is_send:
                lane.commit()
        for lane in lanes_used.values():
            proc = lane.proc
            end = lane.proc_end
            if (proc is not None and end is not None
                    and not proc.finished and proc._waiting_on is None
                    and end > proc._scheduled_for):
                engine.preempt(proc, end)
            lane.finish()
        if lane_extends:
            origin.arb.planner_stats.lane_extends += lane_extends
        return None
    # ---- bulk commit: all stages first (cross-session takes must find
    # their items), then all takes; each stage run under its CK's own
    # identity for the producer-set tripwire. Lane stages land between
    # the two phases (their consumers' takes must find them); lane takes
    # land after every session stage they consume is physical. ---------
    prev_proc = engine._current_proc
    try:
        for sess in committed:
            if sess.ck.proc is not None:
                engine._current_proc = sess.ck.proc
            for cur in sess.stage_cursors.values():
                if cur.stage_pkts:
                    cur.target.stage_burst(cur.stage_pkts, cur.stage_cycles,
                                           verify_occupancy=False)
                    cur.commit_pairings()
                    cur.stage_pkts = []
                    cur.stage_cycles = []
        for lane in lanes_used.values():
            if lane.is_send:
                lane.commit()
        for sess in committed:
            inputs = sess.arb.inputs
            for j in sess.pattern.inputs_used:
                tc = sess.take_cycles[j]
                if tc:
                    inputs[j].take_burst(tc, collect=False)
        for lane in lanes_used.values():
            if not lane.is_send:
                lane.commit()
    finally:
        engine._current_proc = prev_proc
    # ---- macro-cruise epilogue: persist lane slot pairings, firm-wake
    # each lane's sleeping kernel at its extended frontier, and account
    # the fast-forwarded span. ----------------------------------------
    if lanes_used:
        ff_end = 0
        for lane in lanes_used.values():
            end = lane.proc_end
            if end is not None and end > ff_end:
                ff_end = end
            proc = lane.proc
            if (proc is not None and end is not None
                    and not proc.finished and proc._waiting_on is None
                    and end > proc._scheduled_for):
                engine.preempt(proc, end)
            lane.finish()
        stats = origin.arb.planner_stats
        stats.lane_extends += lane_extends
        if ff_armed:
            # Only count the train as a fast-forward window when the
            # chain resolver actually armed: un-armable programs ride
            # ordinary cruise and must not inflate ff coverage.
            ff_start = min(sess.start for sess in committed)
            span = max(ff_end, max(sess.T for sess in committed)) \
                - ff_start
            stats.ff_windows += 1
            stats.ff_cycles += span
            stats.ff_takes += sum(sess.takes for sess in committed)
            engine.note_fast_forward(span)
    # ---- per-session resume state, stats, and wakes --------------------
    origin_res = None
    for sess in committed:
        arb = sess.arb
        pattern = sess.pattern
        inputs = sess.arb.inputs
        sources = [inputs[j] for j in pattern.inputs_used
                   if sess.take_cycles[j]]
        targets = [cur.fifo for cur in sess.stage_cursors.values()]
        res = PlanResult(sess.T, pattern.idx0, pattern.reads0, sess.takes,
                         sources, targets, sess.blocked_on,
                         sess.starved_on)
        if res.end - sess.start != sess.rounds * pattern.delta:
            # Checked prediction: a train's span is Δ per round in closed
            # form; any deviation means a committed round was not the
            # exact Δ-shift the proof assumed. Fail loudly, never commit
            # a resume state the arithmetic cannot vouch for.
            raise RuntimeError(
                f"replication train span mismatch on {sess.ck!r}: "
                f"committed {res.end - sess.start} cycles over "
                f"{sess.rounds} round(s) of Δ={pattern.delta}")
        if engine.trace is not None:
            track = sess.ck.proc.name if sess.ck.proc is not None \
                else "planner"
            engine.trace.emit(
                sess.start, "span", track, "train",
                dur=res.end - sess.start,
                args={"rounds": sess.rounds, "takes": sess.takes})
        arb.packets_accepted += sess.takes
        hist = arb.accept_hist
        if hist is not None:
            for cyc in sess.all_takes:
                hist.record(cyc)
        stats = arb.planner_stats
        stats.replications += 1
        stats.replicated_rounds += sess.rounds
        stats.window_cycles += res.end - sess.start
        stats.takes += sess.takes
        planner._note_train(arb, sess.rounds)
        arb._idx = res.idx
        arb._resume_reads = res.resume_reads
        arb._plan_until = res.end
        arb._blocked_on = res.blocked_on
        arb._starved_on = res.starved_on
        arb._pattern_end = res.end  # the pattern stays live past the train
        if sess is origin:
            origin_res = res
        else:
            stats.pattern_checks += 1  # a train visit counts as a check
            arb._plan_miss = 0
            arb._plan_skip = 0
            proc = sess.ck.proc
            if sess.ck is not planner._cascade_origin \
                    and proc._waiting_on is None \
                    and res.end > proc._scheduled_for:
                # Skip the intermediate wake at the old window end, like
                # a co-plan would. The cascade origin needs no preempt:
                # it is inside its own planner call and re-reads
                # ``_plan_until`` the moment control returns.
                engine.preempt(proc, res.end)
            planner._extra_results.append(res)
    # Every session is stuck by construction when the sweep loop ends;
    # only a plan_window commit can change that within this cascade.
    stuck = planner._train_stuck
    for sess in order:
        stuck.add(id(sess.ck))
    if _train_debug is not None:
        _train_debug(order)
    return origin_res


class SupplyPlanner:
    """Cascaded co-planning across CK boundaries (one per transport).

    The transport builder wires the producer/consumer CK of every transit
    FIFO and link (:meth:`wire`); :meth:`plan` then plans the initiating
    CK's window and cascades: every committed window's targets name
    downstream CKs whose supply just grew, every window's sources name
    upstream CKs whose backpressure just eased, and each of those — if
    parked or sleeping a planned window — gets its next window planned in
    the same engine event, until the worklist drains or the budget runs
    out. A standalone CK (unit tests) uses an instance with empty maps,
    which degrades to exactly the single-CK planner.

    **Steady-state pattern replication** (``replication=True``, the
    default; gated by ``HardwareConfig.pattern_replication`` through the
    builder). Every committed window carries a decision trace;
    :meth:`_observe` compares consecutive, contiguous windows of each CK
    and compiles a :class:`WindowPattern` when two of them are exact
    Δ-shifted copies with identical arbiter boundary state. From then on
    every planning opportunity for that CK — its own event, a cascade
    extension, a co-plan — first tries :func:`replicate_window`, which
    replays pattern rounds against live committed state and bulk-commits
    the train; :func:`plan_window` remains the fallback for everything
    the pattern cannot prove (drifted supply, partial tail rounds, shape
    changes — any of which also retires the pattern until a new one
    confirms). This is how the per-call exchange quantum stops being the
    multi-hop bottleneck: amortising the planning search across long
    steady-state trains, exactly as the paper's pipelined SMI_Push/Pop
    channels amortise per-message control overhead in hardware.

    **Cruise-mode induction** (``cruise=True``, the default; gated by
    ``HardwareConfig.cruise_induction``) removes the remaining per-round
    validation walk inside those trains: after a validated round, the
    rounds whose every resource is train-internal or arithmetically
    bounded (see :func:`replicate_train`'s cruise step) commit in bulk
    with O(1) comparisons per event. It pays in deep-buffer regimes,
    where the per-event information quantum spans many pattern rounds.
    """

    cascade_budget = CASCADE_BUDGET

    #: Futility backoff: a train committing fewer than REP_GOOD_ROUNDS
    #: rounds saved nothing over the window planner (the per-event
    #: information quantum was the bound, not planning speed); after
    #: REP_MISS_LIMIT such trains the CK skips replication — and the
    #: whole trace/signature tax — for a doubling number of planning
    #: opportunities, up to REP_SKIP_MAX. Catch-up regimes (accumulated
    #: link inventories, post-stall drains) commit multi-round trains,
    #: which reset the backoff immediately.
    REP_GOOD_ROUNDS = 2
    REP_MISS_LIMIT = 2
    REP_SKIP_MAX = 4096

    def __init__(self, replication: bool = True,
                 cruise: bool = True, macro: bool = False) -> None:
        self.consumer_ck: dict[int, object] = {}  # id(fifo) -> reading CK
        self.producer_ck: dict[int, object] = {}  # id(fifo) -> writing CK
        self.replication = replication
        # Cruise-mode induction rides on replication trains; gated by
        # ``HardwareConfig.cruise_induction`` through the builder.
        self.cruise = cruise and replication
        # Macro-cruise (whole-program fast-forward) rides on cruise:
        # app-side channel lanes register here and replication trains
        # extend them arithmetically; gated by ``HardwareConfig
        # .macro_cruise`` through the builder.
        self.macro = macro and self.cruise
        #: id(app endpoint FIFO) -> live channel lane (see
        #: :class:`repro.core.channel._SendLane` / ``_RecvLane``); a lane
        #: registers for the duration of one sleeping vector burst.
        self.app_lanes: dict[int, object] = {}
        #: Plane registry for the global cruise condition: every support
        #: kernel the builder wired (CK planes prove themselves per
        #: resource inside the train; app planes prove via their lanes).
        self.support_planes: list = []
        #: id(fifo) of every transit FIFO (CK-internal hand-offs, link
        #: FIFOs, cross-shard boundaries): the fast-forward chain
        #: resolver walks *through* these and must terminate only on app
        #: endpoint FIFOs, never on an interior relay hop.
        self.relay_fifos: set[int] = set()
        #: id(fifo) of every cross-shard boundary link FIFO: its consumer
        #: CK lives in another shard's planner, so a chain walk reaching
        #: one can never terminate on a recv lane — a *permanent* resolve
        #: refusal (the builder registers these so sharded planes drop
        #: the macro probe tax on the first attempt instead of
        #: re-fingerprinting every sweep).
        self.boundary_fifos: set[int] = set()
        #: Permanent macro no-arm: set when the chain resolver refuses a
        #: train for a reason no later sweep can heal (pattern shapes are
        #: fixed — wrong input/target counts, overlapping chains). From
        #: then on the program drops every macro-only tax: no chain
        #: closure, no checkpoint fingerprinting, and the replication
        #: futility backoff behaves exactly as with macro off.
        self.ff_disarmed = False
        #: Why: the resolver's permanent-refusal reason string ("" until
        #: disarmed) — surfaced by ``reporting.planner_summary`` so a
        #: disarmed run reads "permanently refused (<reason>)" instead
        #: of a silent row of zero ff counters.
        self.ff_disarm_reason = ""
        self._stamp = 0  # plan-call counter (cursor refresh generation)
        self._extra_results: list = []  # peer-session train results
        self._cascade_origin = None     # CK whose event we are inside
        # CKs whose last train this cascade ended with every session
        # stuck: a retry is pointless until a plan_window commit changes
        # supply or slots somewhere (cleared on every such commit).
        self._train_stuck: set[int] = set()

    def wire(self, fifo, producer=None, consumer=None) -> None:
        """Declare the CK endpoints of one transit FIFO (builder hook)."""
        self.relay_fifos.add(id(fifo))
        if producer is not None:
            self.producer_ck[id(fifo)] = producer
        if consumer is not None:
            self.consumer_ck[id(fifo)] = consumer

    # ------------------------------------------------------------------
    # Macro-cruise plane registry
    # ------------------------------------------------------------------
    def register_lane(self, fifo, lane) -> None:
        """Attach a channel lane to its app endpoint for this burst."""
        self.app_lanes[id(fifo)] = lane

    def unregister_lane(self, fifo, lane) -> None:
        """Detach ``lane`` (no-op if another burst already replaced it)."""
        if self.app_lanes.get(id(fifo)) is lane:
            del self.app_lanes[id(fifo)]

    def macro_take_budget(self) -> int:
        """Per-train take budget under the global cruise condition.

        The raised :data:`MACRO_MAX_TAKES` budget applies only when every
        plane outside the train's own proof obligations is covered: app
        kernels by registered lanes (checked per resource at extension
        time) and every support plane provably silent (finished, or never
        started). Any unproven plane keeps the ordinary budget — the
        macro fast-forward degrades to PR-4 cruise, never guesses.
        """
        if not (self.macro and self.app_lanes):
            return PLAN_MAX_TAKES
        for plane in self.support_planes:
            proc = getattr(plane, "proc", plane)
            if proc is not None and not proc.finished:
                return PLAN_MAX_TAKES
        return MACRO_MAX_TAKES

    def reset_backoff(self) -> None:
        """Reset futility backoff on every wired CK.

        The builder calls this once the plane is wired, making "a newly
        wired plane starts from the initial backoff state" an enforced
        invariant rather than an accident of construction order. With
        ``build_transport``'s always-fresh arbiters the call is a
        formality; it matters for wiring paths that attach established
        CKs to a planner (hand-wired ``SOLO_PLANNER`` setups, in-place
        rewiring), whose escalated skip lengths say nothing about the
        new plane.
        """
        seen: set[int] = set()
        for cks in (self.producer_ck, self.consumer_ck):
            for peer in cks.values():
                if id(peer) not in seen:
                    seen.add(id(peer))
                    peer.arbiter.reset_backoff()

    # ------------------------------------------------------------------
    # Entry point (CK.process -> PollingArbiter.run -> here)
    # ------------------------------------------------------------------
    def plan(self, ck, engine, resume_reads, skip):
        """Plan the running CK's window, then cascade along the pipeline.

        Returns a truthy value when a window was committed (the arbiter's
        ``_plan_until``/``_idx``/``_resume_reads`` carry the resume state)
        or ``None`` when nothing was provable. A confirmed steady-state
        pattern is tried first; the full planning simulation runs only
        when replication proves nothing.
        """
        memo: dict = {}
        cursors: dict = {}
        arb = ck.arbiter
        stats = arb.planner_stats
        start = engine.cycle + skip
        self._cascade_origin = ck
        self._train_stuck.clear()
        # Peer-session results only matter to this event's cascade; a
        # previous event that planned nothing must not leak its trains'
        # results into ours.
        self._extra_results.clear()
        try:
            if self.replication:
                rep = self._try_replicate(ck, engine, start, resume_reads,
                                          arb._idx, memo, cursors)
                if rep is not None:
                    self._cascade(ck, engine, rep, memo, cursors)
                    return True
            stats.attempts += 1
            self._stamp += 1
            res = plan_window(ck, engine, start, resume_reads, memo=memo,
                              cursors=cursors, stamp=self._stamp,
                              trace=self.replication and
                              (not arb._rep_skip or self._macro_probing()))
            if res is None:
                return None
            self._commit(arb, res, start, "window", arb._idx, resume_reads)
            self._cascade(ck, engine, res, memo, cursors)
            return True
        finally:
            self._cascade_origin = None

    def _commit(self, arb, res, start, kind, sidx, sreads) -> None:
        arb._idx = res.idx
        arb._resume_reads = res.resume_reads
        arb._plan_until = res.end
        arb._blocked_on = res.blocked_on
        arb._starved_on = res.starved_on
        stats = arb.planner_stats
        stats.window_cycles += res.end - start
        stats.takes += res.takes
        if kind == "window":
            stats.windows += 1
        elif kind == "extension":
            stats.extensions += 1
        else:
            stats.coplans += 1
        trace = arb.inputs[0].engine.trace
        if trace is not None:
            trace.emit(start, "span", "planner", kind,
                       dur=res.end - start, args={"takes": res.takes})
            if stats.attempts:
                trace.sample("planner/hit_rate", res.end,
                             round(stats.windows / stats.attempts, 4))
        if self.replication:
            self._train_stuck.clear()  # new supply/slots: trains may move
            if res.trace is not None or arb._pattern is not None \
                    or arb._pattern_hist:
                self._observe(arb, res, start, sidx, sreads)
            else:
                # Quiesced (futility backoff): untraced window, no live
                # pattern, empty history — just track the frontier.
                arb._pattern_end = res.end

    # ------------------------------------------------------------------
    # Pattern detection and replication
    # ------------------------------------------------------------------
    def _observe(self, arb, res, start, sidx, sreads) -> None:
        """Feed one committed window into the CK's pattern detector.

        A pattern confirms when the last ``p`` committed windows
        (``p <= PATTERN_MAX_PERIOD``) are an exact Δ-shifted repeat of
        the ``p`` before them, all contiguous — the steady state may
        cycle through several window shapes per period (e.g. a full
        R-round window then the injection tail's partial window).
        Boundary-state closure is automatic: contiguous windows inherit
        the arbiter state the previous window ended in, so equal
        signatures one period apart imply the round re-enters its own
        start state. A live pattern survives as long as further windows
        continue its cycle (tracked by ``_pattern_phase``); any
        deviation retires it and detection starts over from history.
        """
        trace = res.trace
        hist = arb._pattern_hist
        if trace is None or res.end <= start or not trace[0]:
            hist.clear()
            arb._pattern = None
            arb._pattern_end = res.end
            return
        ops_abs, obs_abs = trace
        ops_rel = tuple((tc - start, j, sc - start, tgt)
                        for (tc, j, sc, tgt) in ops_abs)
        obs_rel = tuple((c - start, j, r) for (c, j, r) in obs_abs)
        sig = (res.end - start, sidx, sreads, res.idx, res.resume_reads,
               ops_rel, obs_rel)
        pat = arb._pattern
        if pat is not None:
            phase = arb._pattern_phase
            if start == arb._pattern_end and sig == pat.sigs[phase]:
                arb._pattern_phase = (phase + 1) % len(pat.sigs)
            else:
                arb._pattern = None
        if hist and hist[-1][1] != start:
            hist.clear()  # non-contiguous: history restarts here
        hist.append((sig, res.end))
        if len(hist) > 2 * PATTERN_MAX_PERIOD:
            del hist[0]
        arb._pattern_end = res.end
        if arb._pattern is None:
            for p in range(1, PATTERN_MAX_PERIOD + 1):
                if len(hist) >= 2 * p and all(
                        hist[i - p][0] == hist[i - 2 * p][0]
                        for i in range(p)):
                    arb._pattern = _compile_pattern(hist[-p:])
                    arb._pattern_phase = 0
                    break

    def _macro_probing(self) -> bool:
        """True while the macro fast-forward may still arm this program.

        The futility backoff quiesces CKs whose trains commit too few
        rounds — untraced windows, no replication attempts — which is
        exactly what starves a relay chain's interior hops of the
        confirmed patterns the chain resolver needs (their per-CK trains
        are short even when the whole chain is steady). While probing,
        traces and replication attempts stay on for every CK; the first
        permanent resolve refusal (``ff_disarmed``) ends the override
        for the rest of the program.
        """
        return self.macro and not self.ff_disarmed

    def _try_replicate(self, ck, engine, start, reads, idx, memo, cursors):
        """Replicate the CK's confirmed pattern from ``start``, if any.

        Only applicable when the window would begin exactly at the
        pattern's committed end in exactly the boundary state the pattern
        cycles through — otherwise the periodicity argument does not
        apply and the planner must search. On success the whole train
        (including any co-replicated peer sessions) is already committed;
        peer results await the cascade in ``_extra_results``.
        """
        arb = ck.arbiter
        if arb._rep_skip and not self._macro_probing():
            arb._rep_skip -= 1
            return None
        pat = arb._pattern
        if pat is None or start != arb._pattern_end \
                or arb._pattern_phase != 0 \
                or reads != pat.reads0 or idx != pat.idx0 \
                or id(ck) in self._train_stuck:
            return None
        arb.planner_stats.pattern_checks += 1
        self._stamp += 1
        res = replicate_train(self, ck, engine, start, memo, cursors,
                              self._stamp)
        if res is None:
            self._note_train(arb, 0)
        return res

    def _note_train(self, arb, rounds) -> None:
        """Update the futility backoff after a train (or failed attempt)."""
        if rounds >= self.REP_GOOD_ROUNDS:
            arb._rep_miss = 0
            arb._rep_skip_len = arb.REP_SKIP_POLLS
            return
        arb._rep_miss += 1
        if arb._rep_miss >= self.REP_MISS_LIMIT:
            arb._rep_miss = 0
            arb._rep_skip = arb._rep_skip_len
            if arb._rep_skip_len < self.REP_SKIP_MAX:
                arb._rep_skip_len *= 2

    def _peers(self, res):
        """CKs whose plannable state just changed — and who can use it.

        A consumer of a FIFO the window staged into is worth planning only
        if it is actually waiting on that supply (its own last window
        *starved* on the FIFO, or it is parked with nothing better to do);
        a producer of a FIFO the window took from only if its last window
        was *blocked* on that FIFO's backpressure. Anything else would be
        a planning attempt that almost always returns empty-handed.
        """
        peers = []
        for fifo in res.targets:
            peer = self.consumer_ck.get(id(fifo))
            if peer is not None:
                arb = peer.arbiter
                if arb._starved_on is fifo or arb._resume_state == "parked":
                    peers.append(peer)
        for fifo in res.sources:
            peer = self.producer_ck.get(id(fifo))
            if peer is not None and peer.arbiter._blocked_on is fifo:
                peers.append(peer)
        return peers

    def _cascade(self, origin, engine, first, memo, cursors) -> None:
        budget = self.cascade_budget
        queue: deque = deque()
        queued: set[int] = set()

        def enqueue(peers):
            for peer in peers:
                if id(peer) not in queued:
                    queued.add(id(peer))
                    queue.append(peer)

        def drain_extras():
            # Peer sessions committed by a replication train: their
            # blockers changed too, so their peers join the worklist.
            extras = self._extra_results
            if extras:
                self._extra_results = []
                for r in extras:
                    enqueue(self._peers(r))

        enqueue(self._peers(first))
        drain_extras()
        while queue and budget > 0:
            peer = queue.popleft()
            queued.discard(id(peer))
            budget -= 1
            if peer is origin:
                res = self._extend(peer, engine, memo, cursors)
            else:
                res = self._coplan(peer, engine, memo, cursors)
            if res is not None and res.takes:
                enqueue(self._peers(res))
            drain_extras()

    def _extend(self, ck, engine, memo, cursors):
        """Stretch the origin's committed window against new information."""
        arb = ck.arbiter
        start = arb._plan_until
        sidx = arb._idx
        sreads = arb._resume_reads
        if self.replication:
            rep = self._try_replicate(ck, engine, start, sreads, sidx,
                                      memo, cursors)
            if rep is not None:
                return rep
        self._stamp += 1
        res = plan_window(ck, engine, start, sreads, memo=memo,
                          cursors=cursors, stamp=self._stamp,
                          trace=self.replication and
                              (not arb._rep_skip or self._macro_probing()))
        if res is None:
            return None
        self._commit(arb, res, start, "extension", sidx, sreads)
        return res

    def _coplan(self, peer, engine, memo, cursors):
        """Plan a peer CK's next window on its behalf, state permitting.

        A CK sleeping a planned window resumes planning from its committed
        wake ``_plan_until`` (no rescheduling needed — on its old wake it
        simply sleeps the extension off). A parked CK first needs its
        per-flit wake-up emulated (first provable readable cycle plus the
        pointer-scan charge); its planned takes may empty the inputs whose
        conditions would have woken it, so it gets a firm preempt to the
        window's end. Any other state (mid per-flit step, blocked inside a
        forward) is not co-plannable and is left untouched.
        """
        arb = peer.arbiter
        proc = peer.proc
        if proc is None or proc.finished:
            return None
        state = arb._resume_state
        if state == "window":
            start = arb._plan_until
            sidx = arb._idx
            sreads = arb._resume_reads
            res = None
            if self.replication:
                res = self._try_replicate(peer, engine, start, sreads,
                                          sidx, memo, cursors)
            if res is None:
                self._stamp += 1
                res = plan_window(peer, engine, start, sreads, memo=memo,
                                  cursors=cursors, stamp=self._stamp,
                                  trace=self.replication
                                  and (not arb._rep_skip
                                       or self._macro_probing()))
                if res is None:
                    return None
                self._commit(arb, res, start, "coplan", sidx, sreads)
            arb._plan_miss = 0
            arb._plan_skip = 0
            if proc._waiting_on is None and res.end > proc._scheduled_for:
                # Skip the intermediate wake at the old window end: the
                # extension already covers it (waking there would only
                # re-sleep to ``_plan_until``).
                engine.preempt(proc, res.end)
            return res
        if state != "parked" or proc._waiting_on is None:
            return None
        wake = self._parked_wake(arb, engine, memo)
        if wake is None:
            return None
        start, idx = wake
        self._stamp += 1
        res = plan_window(peer, engine, start, -1, idx=idx, memo=memo,
                          cursors=cursors, stamp=self._stamp,
                          trace=self.replication and
                              (not arb._rep_skip or self._macro_probing()))
        if res is None or not res.takes:
            return None
        self._commit(arb, res, start, "coplan", idx, -1)
        arb._plan_miss = 0
        arb._plan_skip = 0
        arb._coplanned = True
        arb._resume_state = "window"
        engine.preempt(proc, res.end)
        return res

    @staticmethod
    def _parked_wake(arb, engine, memo):
        """Emulate a parked CK's wake-up: ``(first take cycle, pointer)``.

        Per-flit, the kernel wakes at the first cycle any input turns
        readable, then charges the scan distance the hardware pointer
        would have travelled (the pointer was already rotated once when it
        parked). That wake is provable only if every known head is later
        than or equal to the earliest one *and* no unknown arrival can
        beat or tie it on a drained input — the same horizon rule the
        in-plan park uses. Returns ``None`` when the wake cannot be
        proved, or when a normal wake is already pending this cycle.
        """
        now = engine.cycle
        inputs = arb.inputs
        wake = None
        for f in inputs:
            if f.present_count:
                ready = f.earliest_readable()
                if ready <= now:
                    return None  # readable already: normal wake imminent
                if wake is None or ready < wake:
                    wake = ready
        if wake is None:
            return None
        for f in inputs:
            if not f.present_count and f.supply_horizon(memo) <= wake:
                return None
        idx = arb._idx
        n = len(inputs)
        scan = 0
        while scan < n:
            f = inputs[idx]
            if f.present_count and f.earliest_readable() <= wake:
                break
            idx = (idx + 1) % n
            scan += 1
        return wake + scan, idx


#: Default planner for CKs built outside the transport builder (unit
#: tests, ad-hoc wiring): no cascade peers, pure single-CK planning.
SOLO_PLANNER = SupplyPlanner()
