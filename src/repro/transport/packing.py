"""Element <-> packet conversion shared by Push/Pop and support kernels.

``SMI_Push`` "internally accumulates data items until a network packet is
full. The packet is then forwarded to CKS" and ``SMI_Pop`` "internally
unpacks data returned from CKR, and transmits it to the application one
element at a time" (§4.2). These two stateful helpers implement exactly
that, and are reused by the collective support kernels which face the same
packet interface towards the transport.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..core.datatypes import SMIDatatype
from ..core.errors import ChannelError
from ..network.packet import OpType, Packet
from ..simulation.fifo import Fifo


class PacketPacker:
    """Accumulates elements and emits full (or final partial) packets."""

    __slots__ = ("src", "dst", "port", "dtype", "_buf", "_emitted")

    def __init__(self, src: int, dst: int, port: int, dtype: SMIDatatype) -> None:
        self.src = src
        self.dst = dst
        self.port = port
        self.dtype = dtype
        self._buf: list = []
        self._emitted = 0

    @property
    def pending(self) -> int:
        """Elements buffered but not yet emitted in a packet."""
        return len(self._buf)

    def retarget(self, dst: int) -> None:
        """Point subsequent packets at a new destination (support kernels).

        Only legal on a packet boundary: changing destination with a partial
        packet buffered would interleave two messages in one packet.
        """
        if self._buf:
            raise ChannelError("cannot retarget with a partial packet buffered")
        self.dst = dst

    def add(self, value) -> Packet | None:
        """Buffer one element; return a full packet when one completes."""
        self._buf.append(value)
        if len(self._buf) == self.dtype.elements_per_packet:
            return self._make()
        return None

    def flush(self) -> Packet | None:
        """Emit a final partial packet, if any elements are buffered."""
        if self._buf:
            return self._make()
        return None

    def pack_run(self, values: np.ndarray, flush_tail: bool = False) -> list[Packet]:
        """Vectorised :meth:`add` over a whole array (burst fast path).

        Consumes ``values`` (prefixed by any partially buffered elements)
        and returns every packet that completes, slicing payloads straight
        out of the array instead of appending element by element. A
        trailing partial packet stays buffered — unless ``flush_tail`` is
        set (the run ends the message), in which case it is emitted exactly
        like the per-element path's final :meth:`flush`.
        """
        vals = np.asarray(values, dtype=self.dtype.np_dtype)
        if self._buf:
            vals = np.concatenate(
                [np.array(self._buf, dtype=self.dtype.np_dtype), vals]
            )
            self._buf.clear()
        epp = self.dtype.elements_per_packet
        full = len(vals) // epp
        packets = [
            self._from_payload(np.array(vals[k * epp : (k + 1) * epp]))
            for k in range(full)
        ]
        tail = vals[full * epp :]
        if len(tail):
            if flush_tail:
                packets.append(self._from_payload(np.array(tail)))
            else:
                self._buf = list(tail)
        return packets

    def _make(self) -> Packet:
        payload = np.array(self._buf, dtype=self.dtype.np_dtype)
        self._buf.clear()
        return self._from_payload(payload)

    def _from_payload(self, payload: np.ndarray) -> Packet:
        self._emitted += 1
        return Packet(
            src=self.src, dst=self.dst, port=self.port, op=OpType.DATA,
            count=len(payload), payload=payload, dtype=self.dtype,
        )


class PacketUnpacker:
    """Pops packets from a FIFO and serves their elements one at a time."""

    __slots__ = ("fifo", "dtype", "_current", "_offset", "last_src")

    def __init__(self, fifo: Fifo, dtype: SMIDatatype) -> None:
        self.fifo = fifo
        self.dtype = dtype
        self._current: Packet | None = None
        self._offset = 0
        #: Source rank of the packet the last element came from.
        self.last_src: int | None = None

    def next_element(self) -> Generator:
        """Generator: yield cycles until the next data element is available.

        Control packets (non-DATA ops) are not expected here; receiving one
        indicates a protocol bug and raises.
        """
        while self._current is None:
            while not self.fifo.readable:
                yield self.fifo.can_pop
            pkt = self.fifo.take()
            if pkt.op != OpType.DATA:
                raise ChannelError(
                    f"expected DATA packet on port {pkt.port}, got {pkt.op.name}"
                )
            if pkt.count == 0:
                continue  # degenerate empty packet: skip
            self._current = pkt
            self._offset = 0
        pkt = self._current
        value = pkt.payload[self._offset]
        self.last_src = pkt.src
        self._offset += 1
        if self._offset >= pkt.count:
            self._current = None
        yield None  # one cycle per element (TICK)
        return value
