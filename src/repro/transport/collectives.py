"""Collective support kernels (§4.4).

"The implemented SMI transport layer uses a support kernel for coordinating
each collective. Support kernels reside between the application and the
associated CKR/CKS modules, and their logic is specialized to the specific
collective. [...] Both the root and non-root behavior is instantiated at
every rank, to allow the root rank to be specified dynamically."

Linear schemes, as in the reference implementation:

* **Bcast** — every non-root sends SYNC_READY to the root when it opens the
  channel; the root waits for all of them (preventing mixing of subsequent
  transient channels on the same port, §3.3) and then streams the message
  once along the communicator chain; every intermediate rank's support
  kernel delivers elements locally while relaying packets to its successor.
* **Scatter** — the root walks ranks in communicator order; for each, it
  waits for that rank's SYNC_READY and streams its ``count``-element
  segment (its own segment is forwarded locally).
* **Gather** — the root walks ranks in order, sending a GRANT before
  receiving each rank's ``count`` elements, so data arrives pre-sorted
  despite the root's limited buffer space (§3.3).
* **Reduce** — credit-based flow control with a C-element accumulation
  buffer at the root: all ranks stream one tile in parallel (arrival order
  free, by associativity+commutativity), the root combines elementwise,
  forwards the reduced tile to its application, and releases new credits.

Support kernels are *generic* hardware: per-operation parameters (count,
root, communicator) arrive at run time as a descriptor written by the
channel-open primitive — the zero-overhead channel creation of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..core.config import HardwareConfig
from ..core.datatypes import SMIDatatype
from ..core.errors import ChannelError, SimulationError
from ..core.ops import SMIOp
from ..network.packet import OpType, Packet
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from .packing import PacketPacker


@dataclass(frozen=True)
class CollectiveDescriptor:
    """Runtime parameters of one collective operation instance."""

    kind: str
    count: int
    root: int                 # global rank of the root
    comm_ranks: tuple         # ordered global ranks of the communicator
    reduce_op: SMIOp | None = None

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ChannelError(f"collective count must be >= 0: {self.count}")
        if self.root not in self.comm_ranks:
            raise ChannelError(
                f"root rank {self.root} not part of communicator "
                f"{self.comm_ranks}"
            )
        if len(set(self.comm_ranks)) != len(self.comm_ranks):
            raise ChannelError("communicator contains duplicate ranks")


class SupportKernel:
    """Base class wiring one collective port's hardware resources."""

    kind: str = "?"

    def __init__(
        self,
        rank: int,
        port: int,
        dtype: SMIDatatype,
        config: HardwareConfig,
        ctrl: Fifo,      # descriptors from channel-open
        app_in: Fifo,    # elements from the application (senders/root)
        app_out: Fifo,   # elements to the application (receivers/root)
        send_ep: Fifo,   # packets towards the paired CKS
        recv_ep: Fifo,   # packets from the paired CKR
    ) -> None:
        self.rank = rank
        self.port = port
        self.dtype = dtype
        self.config = config
        self.ctrl = ctrl
        self.app_in = app_in
        self.app_out = app_out
        self.send_ep = send_ep
        self.recv_ep = recv_ep
        self.name = f"rank{rank}.{self.kind}{port}"
        self.operations_served = 0
        self.proc = None  # engine Process handle, set by the builder

    # ------------------------------------------------------------------
    # Common sub-behaviours
    # ------------------------------------------------------------------
    def _send_control(self, op: OpType, dst: int) -> Generator:
        """Emit a zero-payload control packet (1 cycle + backpressure)."""
        pkt = Packet(src=self.rank, dst=dst, port=self.port, op=op)
        while not self.send_ep.writable:
            yield self.send_ep.can_push
        self.send_ep.stage(pkt)
        yield TICK

    def _send_packet(self, pkt: Packet) -> Generator:
        while not self.send_ep.writable:
            yield self.send_ep.can_push
        self.send_ep.stage(pkt)
        yield TICK

    def _recv_packet(self) -> Generator:
        while not self.recv_ep.readable:
            yield self.recv_ep.can_pop
        pkt = self.recv_ep.take()
        yield TICK
        return pkt

    def _expect_control(self, op: OpType) -> Generator:
        pkt = yield from self._recv_packet()
        if pkt.op != op:
            raise ChannelError(
                f"{self.name}: expected {op.name}, received {pkt!r}"
            )
        return pkt

    def _app_in_to_app_out(self, count: int) -> Generator:
        """Move ``count`` local elements from app_in to app_out, 1/cycle."""
        for _ in range(count):
            while not self.app_in.readable:
                yield self.app_in.can_pop
            value = self.app_in.take()
            while not self.app_out.writable:
                yield self.app_out.can_push
            self.app_out.stage(value)
            yield TICK

    def _stream_app_to_network(self, dst: int, count: int) -> Generator:
        """Pack ``count`` app elements into DATA packets towards ``dst``.

        In burst mode, whole packet runs are planned against ``app_in``'s
        committed element schedule and ``send_ep``'s slot schedule and
        staged in one engine event with the exact per-flit cycles — the
        support kernel's side of the supply-schedule contract. The
        committed multi-packet runs (and the kernel's sleep over them)
        are what give the CKS window planner something to batch on
        collective workloads, whose transit FIFOs static flow-liveness
        cannot help. Falls back to literal element steps wherever the
        next decision is not provable (mid-packet state, unknown
        endpoint backpressure, drained ``app_in``).
        """
        packer = PacketPacker(self.rank, dst, self.port, self.dtype)
        if self.config.burst_mode:
            yield from self._stream_app_to_network_burst(packer, count)
        else:
            for _ in range(count):
                yield from self._literal_element_step(packer)
        tail = packer.flush()
        if tail is not None:
            yield from self._send_packet(tail)

    def _literal_element_step(self, packer: PacketPacker) -> Generator:
        """One per-flit iteration of the app->network stream."""
        while not self.app_in.readable:
            yield self.app_in.can_pop
        value = self.app_in.take()
        pkt = packer.add(value)
        if pkt is not None:
            while not self.send_ep.writable:
                yield self.send_ep.can_push
            self.send_ep.stage(pkt)
        yield TICK

    def _stream_app_to_network_burst(self, packer: PacketPacker,
                                     count: int) -> Generator:
        """Burst fast path for :meth:`_stream_app_to_network` (no tail)."""
        app_in = self.app_in
        send_ep = self.send_ep
        engine = app_in.engine
        epp = self.dtype.elements_per_packet
        sent = 0
        while sent < count:
            groups = min(app_in.present_count, count - sent) // epp
            if groups == 0 or packer.pending:
                yield from self._literal_element_step(packer)
                sent += 1
                continue
            now = engine.cycle
            items, ready = app_in.present_schedule(now)
            free, rels = send_ep.slot_plan(now)
            rel_idx = 0
            c = now
            take_cycles: list[int] = []
            stage_cycles: list[int] = []
            planned = 0
            for g in range(groups):
                base = g * epp
                g_takes = []
                gc = c  # group-local cursor: an aborted group commits
                # nothing, so it must not advance the window either
                for j in range(epp):
                    r = ready[base + j]
                    if r > gc:
                        gc = r  # stall until the element turns visible
                    g_takes.append(gc)
                    if j < epp - 1:
                        gc += 1  # per-element TICK
                # The packet stages in the last element's cycle, pushed
                # later by endpoint backpressure with a known release.
                if free > 0:
                    free -= 1
                    s = gc
                elif rel_idx < len(rels):
                    s = max(gc, rels[rel_idx] + 1)
                    rel_idx += 1
                else:
                    break  # unknown backpressure: stop at this boundary
                take_cycles.extend(g_takes)
                stage_cycles.append(s)
                planned += epp
                c = s + 1  # the closing TICK of the staging element
            if planned == 0:
                yield from self._literal_element_step(packer)
                sent += 1
                continue
            pkts = packer.pack_run(items[:planned])
            app_in.take_burst(take_cycles, collect=False)
            send_ep.stage_burst(pkts, stage_cycles)
            sent += planned
            if c > now:
                yield WaitCycles(c - now)

    def _stream_network_to_app(self, count: int) -> Generator:
        """Unpack ``count`` DATA elements from recv_ep into app_out.

        The receive-side counterpart of :meth:`_stream_app_to_network`:
        in burst mode, whole packet runs are planned against
        ``recv_ep``'s committed packet schedule (including packets still
        staged, whose visibility cycles are known) and ``app_out``'s slot
        schedule, then taken/staged in one engine event with the exact
        per-flit cycles. This is what stops collectives from
        rate-limiting window extension at the consumer end: the bulk
        takes free ``recv_ep`` slots with known release cycles, which the
        CKR window planner pairs its next stages against. Falls back to
        literal steps at every unknown boundary (no packet committed,
        unknown ``app_out`` backpressure, a non-DATA packet).
        """
        if self.config.burst_mode:
            received = yield from self._stream_network_to_app_burst(count)
            return received
        received = 0
        while received < count:
            received += yield from self._literal_packet_to_app_step()
        return received

    @staticmethod
    def _plan_element_stages(count, ec, free, rels, rel_i):
        """Slot-walk one packet's per-element delivery schedule.

        Mirrors the per-flit element loop's stall model against a
        ``slot_plan`` snapshot: a free slot stages at the running cycle,
        a reserved slot at the release plus one, and an exhausted budget
        means unknown backpressure. Returns ``(stage_cycles, next_cycle,
        free, rel_i)`` with ``stage_cycles=None`` when the packet is not
        fully plannable — shared by every receive-side burst path so the
        formula cannot drift between them.
        """
        stages: list[int] = []
        for _ in range(count):
            if free > 0:
                free -= 1
                sc = ec
            elif rel_i < len(rels):
                sc = max(ec, rels[rel_i] + 1)
                rel_i += 1
            else:
                return None, ec, free, rel_i
            stages.append(sc)
            ec = sc + 1
        return stages, ec, free, rel_i

    def _literal_packet_to_app_step(self) -> Generator:
        """One per-flit packet iteration of the network->app stream."""
        while not self.recv_ep.readable:
            yield self.recv_ep.can_pop
        pkt = self.recv_ep.take()
        if pkt.op != OpType.DATA:
            raise ChannelError(f"{self.name}: unexpected {pkt!r}")
        yield TICK
        delivered = 0
        for value in pkt.elements():
            while not self.app_out.writable:
                yield self.app_out.can_push
            self.app_out.stage(value)
            yield TICK
            delivered += 1
        return delivered

    def _stream_network_to_app_burst(self, count: int) -> Generator:
        """Burst fast path for :meth:`_stream_network_to_app`."""
        recv_ep = self.recv_ep
        app_out = self.app_out
        engine = recv_ep.engine
        received = 0
        while received < count:
            if recv_ep.present_count == 0:
                # Nothing committed: block exactly like the literal path.
                received += yield from self._literal_packet_to_app_step()
                continue
            now = engine.cycle
            items, ready = recv_ep.present_schedule(now)
            free, rels = app_out.slot_plan(now)
            rel_i = 0
            cur = now
            take_cycles: list[int] = []
            stage_cycles: list[int] = []
            stage_vals: list = []
            got = 0
            for pkt, rdy in zip(items, ready):
                if received + got >= count:
                    break
                if pkt.op != OpType.DATA:
                    # Stop before the offending packet: the literal step
                    # below reaches it at its own cycle and raises with
                    # identical FIFO state.
                    break
                # Take at visibility (the blocked per-flit pop wakes
                # then), unpack one element per cycle from the next one.
                tc = max(cur, rdy)
                el_stages, ec, f2, r2 = self._plan_element_stages(
                    pkt.count, tc + 1, free, rels, rel_i)
                if el_stages is None:
                    break  # unknown backpressure: stop before this packet
                take_cycles.append(tc)
                free, rel_i = f2, r2
                stage_cycles.extend(el_stages)
                stage_vals.extend(pkt.elements())
                got += pkt.count
                cur = ec
            if not take_cycles:
                # The head packet is not plannable (backpressure with no
                # known release, or fails validation): literal per-flit
                # steps keep the cycle trajectory exact.
                received += yield from self._literal_packet_to_app_step()
                continue
            recv_ep.take_burst(take_cycles, collect=False)
            app_out.stage_burst(stage_vals, stage_cycles)
            received += got
            if cur > now:
                yield WaitCycles(cur - now)
        return received

    # ------------------------------------------------------------------
    def process(self, engine) -> Generator:
        """Serve collective operations forever (spawned as a daemon)."""
        while True:
            while not self.ctrl.readable:
                yield self.ctrl.can_pop
            desc: CollectiveDescriptor = self.ctrl.take()
            yield TICK
            if desc.kind != self.kind:
                raise SimulationError(
                    f"{self.name}: descriptor kind {desc.kind!r} does not "
                    f"match this support kernel"
                )
            yield from self._serve(desc, engine)
            self.operations_served += 1

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        raise NotImplementedError  # pragma: no cover


class BcastKernel(SupportKernel):
    """Pipelined chain broadcast with per-rank readiness rendezvous."""

    kind = "bcast"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        comm = desc.comm_ranks
        root_idx = comm.index(desc.root)
        chain = comm[root_idx:] + comm[:root_idx]
        pos = chain.index(self.rank)
        successor = chain[pos + 1] if pos + 1 < len(chain) else None

        if self.rank == desc.root:
            # Rendezvous: every receiving rank announces readiness (§3.3).
            for _ in range(len(chain) - 1):
                yield from self._expect_control(OpType.SYNC_READY)
            if successor is not None:
                yield from self._stream_app_to_network(successor, desc.count)
            else:
                # Single-rank communicator: drain the app's pushes.
                for _ in range(desc.count):
                    while not self.app_in.readable:
                        yield self.app_in.can_pop
                    self.app_in.take()
                    yield TICK
        else:
            yield from self._send_control(OpType.SYNC_READY, desc.root)
            # Receive, deliver locally, and relay down the chain.
            received = 0
            if self.config.burst_mode:
                while received < desc.count:
                    received += yield from self._relay_deliver_burst(
                        desc.count - received, successor)
            else:
                while received < desc.count:
                    received += yield from self._relay_deliver_step(
                        successor)

    def _relay_deliver_step(self, successor) -> Generator:
        """One per-flit packet iteration of the bcast relay+deliver loop."""
        while not self.recv_ep.readable:
            yield self.recv_ep.can_pop
        pkt = self.recv_ep.take()
        if pkt.op != OpType.DATA:
            raise ChannelError(f"{self.name}: unexpected {pkt!r}")
        if successor is not None:
            relay = Packet(
                src=self.rank, dst=successor, port=self.port,
                op=OpType.DATA, count=pkt.count,
                payload=pkt.payload.copy(), dtype=pkt.dtype,
            )
            while not self.send_ep.writable:
                yield self.send_ep.can_push
            self.send_ep.stage(relay)
        yield TICK
        delivered = 0
        for value in pkt.elements():
            while not self.app_out.writable:
                yield self.app_out.can_push
            self.app_out.stage(value)
            yield TICK
            delivered += 1
        return delivered

    def _relay_deliver_burst(self, want: int, successor) -> Generator:
        """Batch the relay+deliver loop over committed packet runs.

        Mirrors :meth:`SupportKernel._stream_network_to_app_burst` with
        the extra relay stage: a packet is taken at its visibility, its
        relay copy staged against ``send_ep``'s slot schedule in the same
        cycle (or the known release stall — where the per-flit loop
        blocks on ``can_push``), and its elements delivered one per cycle
        against ``app_out``'s schedule. Any unknown boundary falls back
        to one literal packet step.
        """
        recv_ep = self.recv_ep
        app_out = self.app_out
        send_ep = self.send_ep
        engine = recv_ep.engine
        if recv_ep.present_count == 0:
            delivered = yield from self._relay_deliver_step(successor)
            return delivered
        now = engine.cycle
        items, ready = recv_ep.present_schedule(now)
        fo, ro = app_out.slot_plan(now)
        ro_i = 0
        fs, rs = (send_ep.slot_plan(now) if successor is not None
                  else (0, ()))
        rs_i = 0
        cur = now
        take_cycles: list[int] = []
        out_vals: list = []
        out_cycles: list[int] = []
        relay_pkts: list = []
        relay_cycles: list[int] = []
        got = 0
        for pkt, rdy in zip(items, ready):
            if got >= want:
                break
            if pkt.op != OpType.DATA:
                break  # the literal step raises at this exact cycle
            tc = max(cur, rdy)
            rc = tc
            if successor is not None:
                if fs > 0:
                    fs -= 1
                elif rs_i < len(rs):
                    rc = max(tc, rs[rs_i] + 1)
                    rs_i += 1
                else:
                    break  # unknown relay backpressure
            el, ec, f2, r2 = self._plan_element_stages(
                pkt.count, rc + 1, fo, ro, ro_i)
            if el is None:
                break  # unknown delivery backpressure
            take_cycles.append(tc)
            if successor is not None:
                relay_pkts.append(Packet(
                    src=self.rank, dst=successor, port=self.port,
                    op=OpType.DATA, count=pkt.count,
                    payload=pkt.payload.copy(), dtype=pkt.dtype,
                ))
                relay_cycles.append(rc)
            fo, ro_i = f2, r2
            out_cycles.extend(el)
            out_vals.extend(pkt.elements())
            got += pkt.count
            cur = ec
        if not take_cycles:
            delivered = yield from self._relay_deliver_step(successor)
            return delivered
        recv_ep.take_burst(take_cycles, collect=False)
        if relay_pkts:
            send_ep.stage_burst(relay_pkts, relay_cycles)
        app_out.stage_burst(out_vals, out_cycles)
        if cur > now:
            yield WaitCycles(cur - now)
        return got


class ScatterKernel(SupportKernel):
    """Linear scatter: per-rank rendezvous, segments sent in order (Fig. 5)."""

    kind = "scatter"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        if self.rank == desc.root:
            ready: set[int] = set()
            for target in desc.comm_ranks:
                if target == self.rank:
                    yield from self._app_in_to_app_out(desc.count)
                    continue
                # Wait for this rank's readiness; READYs may arrive in any
                # order, the root consumes them as they come (Fig. 5 order
                # applies to the data segments, which are strictly ordered).
                while target not in ready:
                    pkt = yield from self._expect_control(OpType.SYNC_READY)
                    ready.add(pkt.src)
                yield from self._stream_app_to_network(target, desc.count)
        else:
            yield from self._send_control(OpType.SYNC_READY, desc.root)
            yield from self._stream_network_to_app(desc.count)


class GatherKernel(SupportKernel):
    """Linear gather: the root grants each rank its turn (§3.3, Fig. 5)."""

    kind = "gather"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        if self.rank == desc.root:
            for source in desc.comm_ranks:
                if source == self.rank:
                    yield from self._app_in_to_app_out(desc.count)
                    continue
                yield from self._send_control(OpType.GRANT, source)
                yield from self._stream_network_to_app(desc.count)
        else:
            yield from self._expect_control(OpType.GRANT)
            yield from self._stream_app_to_network(desc.root, desc.count)


class ReduceKernel(SupportKernel):
    """Credit-based streaming reduction (C-element tiles at the root)."""

    kind = "reduce"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        if desc.reduce_op is None:
            raise ChannelError(f"{self.name}: reduce descriptor without op")
        tile = self.config.reduce_credits
        if self.rank == desc.root:
            yield from self._serve_root(desc, tile, engine)
        else:
            yield from self._serve_leaf(desc, tile)

    def _serve_root(self, desc: CollectiveDescriptor, tile: int,
                    engine) -> Generator:
        """Root side: combine arrivals into the tile buffer, emit the
        reduced frontier, release credits.

        In burst mode the three per-flit inner loops run batched — each
        batch is decision-identical to the literal loop, so cycles stay
        exact:

        * a received packet's combine loop touches no FIFO, so its
          ``pkt.count`` per-element TICKs collapse into one sleep;
        * an emit run stages up to ``min(frontier - emitted, free)``
          elements back-to-back (the emit branch has priority while
          ``emitted < frontier``, and the frontier cannot move during
          the run since nothing is received meanwhile);
        * a local-combine run takes one ``app_in`` element per cycle for
          as long as the per-flit loop provably stays in that branch:
          the emit branch stays closed while the remote frontier is at
          or below ``emitted``, and the recv branch while ``recv_ep``
          is provably unreadable (committed head visibility, or its
          producer-sleep supply horizon).
        """
        op = desc.reduce_op
        burst = self.config.burst_mode
        app_in = self.app_in
        app_out = self.app_out
        recv_ep = self.recv_ep
        others = [r for r in desc.comm_ranks if r != self.rank]
        remaining = desc.count
        while remaining > 0:
            tile_size = min(tile, remaining)
            acc = op.identity_array(tile_size, self.dtype.np_dtype)
            progress = {r: 0 for r in others}
            local_done = 0
            emitted = 0

            def frontier() -> int:
                # Elements fully reduced so far: every rank (including the
                # local application) has contributed up to this index.
                low = local_done
                for p in progress.values():
                    if p < low:
                        low = p
                return low

            # Combine contributions as they arrive — order-free across
            # ranks thanks to associativity + commutativity (§3.3) — and
            # emit each element as soon as it is complete, so the root
            # application's per-element SMI_Reduce calls stream naturally.
            while emitted < tile_size:
                if emitted < frontier():
                    if burst:
                        run = min(frontier() - emitted, app_out.free_space)
                        if run > 1:
                            now = engine.cycle
                            app_out.stage_burst(
                                list(acc[emitted:emitted + run]),
                                range(now, now + run))
                            emitted += run
                            yield WaitCycles(run)
                            continue
                    while not app_out.writable:
                        yield app_out.can_push
                    app_out.stage(acc[emitted])
                    emitted += 1
                    yield TICK
                elif recv_ep.readable:
                    pkt = recv_ep.take()
                    if pkt.op != OpType.DATA:
                        raise ChannelError(f"{self.name}: unexpected {pkt!r}")
                    yield TICK
                    off = progress[pkt.src]
                    if off + pkt.count > tile_size:
                        raise ChannelError(
                            f"{self.name}: rank {pkt.src} overran its tile "
                            f"({off}+{pkt.count} > {tile_size}) — credit "
                            "protocol violation"
                        )
                    if burst and pkt.count > 1:
                        # The combine loop touches no FIFO: batch all of
                        # its per-element cycles into one event.
                        for value in pkt.elements():
                            acc[off] = op.combine(acc[off], value)
                            off += 1
                        progress[pkt.src] = off
                        yield WaitCycles(pkt.count)
                    else:
                        for value in pkt.elements():
                            acc[off] = op.combine(acc[off], value)
                            off += 1
                            yield TICK
                        progress[pkt.src] = off
                elif app_in.readable and local_done < tile_size:
                    run = 1
                    if burst and app_in.present_count > 1:
                        run = self._local_combine_run(
                            engine, tile_size - local_done,
                            min(progress.values(), default=tile_size),
                            emitted)
                    if run > 1:
                        values = app_in.take_burst(
                            range(engine.cycle, engine.cycle + run))
                        for value in values:
                            acc[local_done] = op.combine(
                                acc[local_done], value)
                            local_done += 1
                        yield WaitCycles(run)
                    else:
                        value = app_in.take()
                        acc[local_done] = op.combine(acc[local_done], value)
                        local_done += 1
                        yield TICK
                elif local_done < tile_size:
                    yield (recv_ep.can_pop, app_in.can_pop)
                else:
                    # Local contribution done for this tile: the app may
                    # already be pushing the next tile, so only the network
                    # can unblock us here.
                    yield recv_ep.can_pop
            remaining -= tile_size
            # Release new credits so every rank may stream the next tile.
            if remaining > 0:
                for target in others:
                    yield from self._send_control(OpType.CREDIT, target)

    def _local_combine_run(self, engine, want: int, remote_min: int,
                           emitted: int) -> int:
        """Longest provably decision-identical local-combine run.

        The per-flit loop re-evaluates its branch order every cycle, so a
        batched run is only sound while (a) the emit branch stays closed:
        the remote frontier is at or below ``emitted`` (local combines
        only raise ``local_done``, which then cannot be the minimum), and
        (b) the recv branch stays closed: ``recv_ep`` provably unreadable
        for the whole run (known head visibility, else the supply
        horizon — its producer set is registered by the builder). The
        run is further bounded by ``app_in``'s committed one-per-cycle
        availability.
        """
        if remote_min > emitted:
            return 1  # one combine may open the emit branch
        now = engine.cycle
        recv_next = self.recv_ep.earliest_readable()
        limit = min(want, recv_next - now)
        if limit <= 1:
            return 1
        _, ready = self.app_in.present_schedule(now, limit)
        run = 0
        for i, rdy in enumerate(ready):
            if rdy > now + i:
                break
            run += 1
        return max(run, 1)

    def _serve_leaf(self, desc: CollectiveDescriptor, tile: int) -> Generator:
        remaining = desc.count
        first = True
        while remaining > 0:
            if not first:
                # Wait for the root's credit release before the next tile.
                yield from self._expect_control(OpType.CREDIT)
            first = False
            tile_size = min(tile, remaining)
            yield from self._stream_app_to_network(desc.root, tile_size)
            remaining -= tile_size


SUPPORT_KERNELS = {
    "bcast": BcastKernel,
    "scatter": ScatterKernel,
    "gather": GatherKernel,
    "reduce": ReduceKernel,
}


def kernel_class(kind: str, scheme: str):
    """Support kernel class for (kind, scheme); see tree_collectives."""
    if scheme == "linear":
        return SUPPORT_KERNELS[kind]
    from .tree_collectives import TreeBcastKernel, TreeReduceKernel

    tree = {"bcast": TreeBcastKernel, "reduce": TreeReduceKernel}
    try:
        return tree[kind]
    except KeyError:
        raise SimulationError(
            f"no {scheme!r} support kernel for collective {kind!r}"
        ) from None
