"""Tree-based collective support kernels (the §4.4 extension).

"The SMI reference implementation does not yet implement tree-based
collectives, resulting in a higher congestion in the root rank" (§5.3.4) —
and §4.4 notes the support-kernel design "can also be exploited to offer
different implementations of collectives, such as tree-based schema for
Bcast and Reduce". This module implements that extension:

* **TreeBcastKernel** — a binary tree over communicator positions (rotated
  so the root is position 0). Readiness aggregates up the tree (a node
  reports READY to its parent only after all its children are ready), and
  every node relays each data packet to its at-most-two children while
  delivering elements locally. Latency is O(log P) instead of the linear
  chain's O(P).
* **TreeReduceKernel** — partial sums combine up the same tree: each node
  reduces its children's tile contributions with its local application
  elements and forwards one combined stream to its parent, so the root
  receives O(log P)-deep, 2-wide traffic instead of P-1 concurrent
  streams. Credits propagate down the tree per tile.

Selected per operation via ``OpDecl(..., scheme="tree")``; the ablation
benchmark ``benchmarks/bench_ablation_tree_collectives.py`` quantifies the
gain over the paper's linear schemes.
"""

from __future__ import annotations

from typing import Generator

from ..core.errors import ChannelError
from ..network.packet import OpType, Packet
from ..simulation.conditions import TICK
from .collectives import CollectiveDescriptor, SupportKernel
from .packing import PacketPacker


def _tree_position(desc: CollectiveDescriptor, rank: int) -> tuple:
    """(chain, position, parent rank, child ranks) in the binary tree."""
    comm = desc.comm_ranks
    root_idx = comm.index(desc.root)
    chain = comm[root_idx:] + comm[:root_idx]
    pos = chain.index(rank)
    parent = chain[(pos - 1) // 2] if pos > 0 else None
    children = [chain[c] for c in (2 * pos + 1, 2 * pos + 2)
                if c < len(chain)]
    return chain, pos, parent, children


class TreeBcastKernel(SupportKernel):
    """Binary-tree broadcast with aggregated readiness rendezvous."""

    kind = "bcast"
    scheme = "tree"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        _chain, pos, parent, children = _tree_position(desc, self.rank)
        # Readiness aggregates bottom-up: wait for children, then report.
        for _ in children:
            yield from self._expect_control(OpType.SYNC_READY)
        if parent is not None:
            yield from self._send_control(OpType.SYNC_READY, parent)

        if pos == 0:  # root
            if not children:
                # Single-rank communicator: drain the app's pushes.
                for _ in range(desc.count):
                    while not self.app_in.readable:
                        yield self.app_in.can_pop
                    self.app_in.take()
                    yield TICK
                return
            packer = PacketPacker(self.rank, children[0], self.port, self.dtype)
            sent = 0
            while sent < desc.count:
                while not self.app_in.readable:
                    yield self.app_in.can_pop
                value = self.app_in.take()
                sent += 1
                pkt = packer.add(value)
                if pkt is None and sent == desc.count:
                    pkt = packer.flush()
                if pkt is not None:
                    yield from self._fan_out(pkt, children)
                yield TICK
        else:
            received = 0
            while received < desc.count:
                while not self.recv_ep.readable:
                    yield self.recv_ep.can_pop
                pkt = self.recv_ep.take()
                if pkt.op != OpType.DATA:
                    raise ChannelError(f"{self.name}: unexpected {pkt!r}")
                yield TICK
                if children:
                    yield from self._fan_out(pkt, children)
                for value in pkt.elements():
                    while not self.app_out.writable:
                        yield self.app_out.can_push
                    self.app_out.stage(value)
                    yield TICK
                    received += 1

    def _fan_out(self, pkt: Packet, children: list[int]) -> Generator:
        """Send one packet to every child (one send-port cycle each)."""
        for child in children:
            copy = Packet(src=self.rank, dst=child, port=self.port,
                          op=OpType.DATA, count=pkt.count,
                          payload=pkt.payload.copy(), dtype=pkt.dtype)
            while not self.send_ep.writable:
                yield self.send_ep.can_push
            self.send_ep.stage(copy)
            yield TICK


class TreeReduceKernel(SupportKernel):
    """Binary-tree reduction: partial sums combine up, credits flow down."""

    kind = "reduce"
    scheme = "tree"

    def _serve(self, desc: CollectiveDescriptor, engine) -> Generator:
        if desc.reduce_op is None:
            raise ChannelError(f"{self.name}: reduce descriptor without op")
        op = desc.reduce_op
        _chain, pos, parent, children = _tree_position(desc, self.rank)
        tile = self.config.reduce_credits
        remaining = desc.count
        first = True
        while remaining > 0:
            if not first:
                # Credits propagate strictly top-down at tile boundaries:
                # a node waits for its parent's credit and only then
                # releases its children. This ordering guarantees no child
                # DATA for tile t+1 can reach a node still waiting for its
                # own credit (DATA and CREDIT share the receive endpoint).
                if parent is not None:
                    yield from self._expect_control(OpType.CREDIT)
                for child in children:
                    yield from self._send_control(OpType.CREDIT, child)
            first = False
            tile_size = min(tile, remaining)
            acc = op.identity_array(tile_size, self.dtype.np_dtype)
            progress = {child: 0 for child in children}
            local_done = 0
            emitted = 0
            out_packer = (
                PacketPacker(self.rank, parent, self.port, self.dtype)
                if parent is not None else None
            )

            def frontier() -> int:
                low = local_done
                for p in progress.values():
                    if p < low:
                        low = p
                return low

            while emitted < tile_size:
                if emitted < frontier():
                    value = acc[emitted]
                    emitted += 1
                    if parent is None:
                        # Root: deliver the reduced element to the app.
                        while not self.app_out.writable:
                            yield self.app_out.can_push
                        self.app_out.stage(value)
                        yield TICK
                    else:
                        pkt = out_packer.add(value)
                        if pkt is None and emitted == tile_size:
                            pkt = out_packer.flush()
                        if pkt is not None:
                            while not self.send_ep.writable:
                                yield self.send_ep.can_push
                            self.send_ep.stage(pkt)
                        yield TICK
                elif self.recv_ep.readable:
                    pkt = self.recv_ep.take()
                    if pkt.op != OpType.DATA:
                        raise ChannelError(f"{self.name}: unexpected {pkt!r}")
                    yield TICK
                    off = progress[pkt.src]
                    if off + pkt.count > tile_size:
                        raise ChannelError(
                            f"{self.name}: child {pkt.src} overran its tile"
                        )
                    for value in pkt.elements():
                        acc[off] = op.combine(acc[off], value)
                        off += 1
                        yield TICK
                    progress[pkt.src] = off
                elif self.app_in.readable and local_done < tile_size:
                    value = self.app_in.take()
                    acc[local_done] = op.combine(acc[local_done], value)
                    local_done += 1
                    yield TICK
                elif local_done < tile_size:
                    yield (self.recv_ep.can_pop, self.app_in.can_pop)
                else:
                    yield self.recv_ep.can_pop
            remaining -= tile_size
