"""Communication kernels: CKS (send side) and CKR (receive side), §4.2–4.3.

Each FPGA network interface is managed by a dedicated CKS/CKR pair so no
single module serialises all packet transfers. The kernels poll their inputs
(R-burst round-robin, :mod:`repro.transport.arbiter`), consult a routing
table, and forward each packet in the same cycle it was accepted:

* **CKS(i)** inputs: the application send endpoints assigned to interface
  *i*, the paired CKR (rerouted through-traffic), and every other local CKS.
  Routing by *destination rank*: local rank → paired CKR; otherwise, if the
  route's egress interface is *i*, onto the network link, else over to the
  CKS owning that interface.
* **CKR(i)** inputs: the network link of interface *i*, every other local
  CKR, and the paired CKS (loopback traffic). Routing: foreign destination →
  paired CKS (this rank is an intermediate hop); local destination → by
  *port*: deliver to the endpoint FIFO if the port lives on interface *i*,
  else over to the CKR owning the port's interface.
"""

from __future__ import annotations

from heapq import merge as _heap_merge
from typing import Generator

from ..core.errors import RoutingError
from ..network.link import Link
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from .arbiter import PollingArbiter


def _stage_with_backpressure(out, pkt) -> Generator:
    """Stage ``pkt`` into ``out`` (FIFO or link), stalling on backpressure.

    For links, the stall also covers line-rate pacing (a 32-byte slot every
    ``link_cycles_per_packet`` kernel cycles).
    """
    while not out.writable:
        yield out.wait_writable()
    out.stage(pkt)
    yield TICK


#: Safety bound on planned takes per window (keeps commit lists small).
_PLAN_MAX_TAKES = 2048

#: Snapshot depth per input per plan. Deeper queues (the link FIFOs hold a
#: full bandwidth-delay product) are cut here; the planner treats the cut
#: as an unknown-future boundary, which is always sound.
_PLAN_SNAPSHOT = 16

#: "Provably empty at any cycle" horizon for flow-dead inputs.
_FOREVER = 1 << 62


def _snap_input(f, pkts_l, rdy_l, hz_l, j, now, start):
    """Lazily snapshot input ``j`` for a planning window.

    Fills ``pkts_l``/``rdy_l`` with the items physically present (visible
    + staged, oldest first, with exact visibility cycles) and ``hz_l``
    with the cycle up to (and excluding) which "snapshot drained" provably
    means "unreadable": unlimited for flow-dead inputs, the
    unknown-arrival horizon ``now + latency`` for live ones, and the plan
    start for truncated snapshots (nothing provable beyond the cut).
    """
    if f.flow_dead:
        P = rdy_l[j] = ()
        hz_l[j] = _FOREVER
    else:
        P, rdy_l[j] = f.present_schedule(now, _PLAN_SNAPSHOT)
        hz_l[j] = start if len(P) >= _PLAN_SNAPSHOT else now + f.latency
    pkts_l[j] = P
    return P


class _TargetCursor:
    """Planning-time view of one routing target's future slot schedule.

    ``free``/``rels``/``rel_ptr``/``next_free`` mirror the per-flit
    ``_stage_with_backpressure`` stall model: a currently-free slot stages
    as soon as line pacing allows; a slot reserved by the consumer's own
    burst takes stages the cycle after it releases (the cycle a producer
    blocked on ``can_push`` would wake); with neither, the per-flit path
    would block open-endedly, so the plan must stop. The planner mirrors
    these fields into locals inside its hot loop and flushes them back on
    target switches.
    """

    __slots__ = ("target", "is_link", "free", "rels", "rel_ptr", "next_free",
                 "pace", "stage_cycles", "stage_pkts")

    def __init__(self, target, now: int) -> None:
        self.target = target
        self.is_link = isinstance(target, Link)
        fifo = target.fifo if self.is_link else target
        self.free, self.rels = fifo.slot_plan(now)
        self.rel_ptr = 0
        self.next_free = target._next_free if self.is_link else 0
        self.pace = target.cycles_per_packet if self.is_link else 0
        self.stage_cycles: list[int] = []
        self.stage_pkts: list = []


def _plan_window(ck, arbiter, engine, resume_reads, skip):
    """Multi-round burst planner: one engine event per provable window.

    Simulates :meth:`PollingArbiter.run`'s per-flit state machine forward
    from ``engine.cycle + skip`` over the *known* future only — staged
    input schedules (items already in flight, with their exact visibility
    cycles), flow-dead inputs (statically proven to never carry traffic),
    and downstream slot schedules — and commits every take/stage it proved
    with the exact per-flit cycles, including R-round budgets, empty-input
    scan charges, and parked gaps whose wake-up cycle is already decided
    by an in-flight item. The plan stops at the first decision that
    depends on information not yet in the simulation (an arrival that has
    not been staged, a stall with no known release) and hands the loop
    back in the exact per-flit state, so resuming is seamless and the
    cycle trajectory is identical to the literal interpretation.

    Returns ``(window, idx, resume_reads)`` or ``None`` when nothing could
    be proved (the caller then falls back to one per-flit step).
    """
    inputs = arbiter.inputs
    n = len(inputs)
    burst = arbiter.read_burst
    now = engine.cycle
    start = now + skip
    c = start
    idx = arbiter._idx
    mode_reads = resume_reads  # -1 = FRESH, >= 0 = mid-round reads done
    route = ck._route
    memo = ck._route_memo
    pkts_l: list = [None] * n  # per-input snapshot: items
    rdy_l: list = [None] * n   # per-input snapshot: visibility cycles
    ptr = [0] * n
    takes: list = [None] * n
    cursors: dict[int, _TargetCursor] = {}
    total = 0
    ended = False  # plan hit an unknowable decision: stop where we are

    # Per input, the cycle up to (and excluding) which "snapshot drained"
    # provably means "unreadable": unlimited for flow-dead inputs, the
    # unknown-arrival horizon now + latency for live ones, and the current
    # plan start for truncated snapshots (nothing provable beyond the cut).
    hz_l: list = [0] * n
    # Cached cursor of the current routing target, mirrored into locals
    # (flushed back on switch and before commit).
    t_cur = None
    t_key = -1
    t_free = t_rp = t_nf = t_pace = 0
    t_isl = False
    t_rels = t_sc = t_sp = ()

    while not ended and total < _PLAN_MAX_TAKES:
        P = pkts_l[idx]
        if P is None:
            P = _snap_input(inputs[idx], pkts_l, rdy_l, hz_l, idx, now, start)
        R = rdy_l[idx]
        p = ptr[idx]
        k = len(P)
        # ---- FRESH readability check / R-round over input idx ----------
        if mode_reads < 0:
            if p >= k:
                # Drained (or empty): provably unreadable only below the
                # input's unknown-arrival horizon.
                if c >= hz_l[idx]:
                    break
                # fall through to rotation / scan / park below
            elif R[p] <= c:
                mode_reads = 0
            # (head exists but is not visible yet: provably unreadable)
        if mode_reads >= 0:
            tk = takes[idx]
            if tk is None:
                tk = takes[idx] = []
            hz = hz_l[idx]
            while mode_reads < burst:
                if p >= k:
                    if c >= hz:
                        ended = True  # unknown readability: stop in ROUND
                    break
                if R[p] > c:
                    break  # head not visible: the R-round ends here
                pkt = P[p]
                key = (pkt.dst << 8) | pkt.port
                if key != t_key:
                    if t_cur is not None:  # flush the outgoing cursor
                        t_cur.free = t_free
                        t_cur.rel_ptr = t_rp
                        t_cur.next_free = t_nf
                        t_cur = None
                        t_key = -1
                    out = memo.get(key)
                    if out is None:
                        try:
                            out = route(pkt)
                        except RoutingError:
                            # The per-flit path raises at this exact cycle.
                            ended = True
                            break
                        memo[key] = out
                    t_cur = cursors.get(id(out))
                    if t_cur is None:
                        t_cur = cursors[id(out)] = _TargetCursor(out, now)
                    t_key = key
                    t_free = t_cur.free
                    t_rels = t_cur.rels
                    t_rp = t_cur.rel_ptr
                    t_nf = t_cur.next_free
                    t_pace = t_cur.pace
                    t_isl = t_cur.is_link
                    t_sc = t_cur.stage_cycles
                    t_sp = t_cur.stage_pkts
                # Earliest per-flit stage cycle (see _TargetCursor).
                s = t_nf if (t_isl and t_nf > c) else c
                if t_free > 0:
                    t_free -= 1
                elif t_rp < len(t_rels):
                    floor = t_rels[t_rp] + 1
                    t_rp += 1
                    if floor > s:
                        s = floor
                else:
                    ended = True  # unknown backpressure: stop before take
                    break
                if t_isl:
                    t_nf = s + t_pace
                tk.append(c)
                t_sc.append(s)
                t_sp.append(pkt)
                total += 1
                p += 1
                c = s + 1
                mode_reads += 1
            ptr[idx] = p
            if ended:
                break
            idx = (idx + 1) % n
            mode_reads = -1
            continue
        # ---- unreadable at c: rotate, then scan-charge or park ---------
        any_r = False
        wake = None
        for j in range(n):
            Pj = pkts_l[j]
            if Pj is None:
                Pj = _snap_input(inputs[j], pkts_l, rdy_l, hz_l, j, now,
                                 start)
            pj = ptr[j]
            if pj < len(Pj):
                rdy = rdy_l[j][pj]
                if rdy <= c:
                    any_r = True
                    break
                if wake is None or rdy < wake:
                    wake = rdy
            elif c >= hz_l[j]:
                ended = True  # cannot even decide "anything readable?"
                break
        if ended:
            break
        if any_r:
            idx = (idx + 1) % n
            c += 1  # the pointer scan costs this cycle
            continue
        # Park: wake at the first known future visibility, provided no
        # unknown arrival could beat (or tie) it on a drained input.
        if wake is None:
            break
        for j in range(n):
            if ptr[j] >= len(pkts_l[j]) and hz_l[j] <= wake:
                wake = None
                break
        if wake is None:
            break
        idx = (idx + 1) % n  # per-flit rotates before parking
        scan = 0
        while scan < n:
            Pj = pkts_l[idx]  # None / () only for provably empty inputs
            if Pj:
                pj = ptr[idx]
                if pj < len(Pj) and rdy_l[idx][pj] <= wake:
                    break
            idx = (idx + 1) % n
            scan += 1
        c = wake + scan

    if t_cur is not None:  # flush the cached cursor before committing
        t_cur.free = t_free
        t_cur.rel_ptr = t_rp
        t_cur.next_free = t_nf
    if total == 0 and c == start:
        return None
    for i in range(n):
        if takes[i]:
            inputs[i].take_burst(takes[i], collect=False)
    for cur in cursors.values():
        if cur.stage_pkts:
            cur.target.stage_burst(cur.stage_pkts, cur.stage_cycles)
    if total:
        arbiter.packets_accepted += total
        hist = arbiter.accept_hist
        if hist is not None:
            # Reconstruct global accept order: take cycles strictly
            # increase within a plan, so merging the per-input sorted
            # lists recovers the per-flit recording order exactly.
            for cyc in _heap_merge(*(tk for tk in takes if tk)):
                hist.record(cyc)
    return c - now, idx, mode_reads


class CKS:
    """Send communication kernel for one network interface."""

    def __init__(
        self,
        rank: int,
        iface: int,
        inputs: list[Fifo],
        net_link,
        to_paired_ckr: Fifo,
        to_other_cks: dict[int, Fifo],
        egress_iface: dict[int, int | None],
        read_burst: int,
        burst_mode: bool = True,
        record_accepts: bool = False,
    ) -> None:
        self.rank = rank
        self.iface = iface
        self.net_link = net_link
        self.to_paired_ckr = to_paired_ckr
        self.to_other_cks = to_other_cks
        self.egress_iface = egress_iface
        self.burst_mode = burst_mode
        self.arbiter = PollingArbiter(inputs, read_burst, record_accepts)
        self._route_memo: dict = {}  # (dst, port) -> routing target
        self.name = f"rank{rank}.cks{iface}"

    def _route(self, pkt):
        if pkt.dst == self.rank:
            return self.to_paired_ckr
        try:
            egress = self.egress_iface[pkt.dst]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no route for destination rank {pkt.dst}"
            ) from None
        if egress == self.iface:
            if self.net_link is None:
                raise RoutingError(
                    f"{self.name}: routed to own interface but it is unwired"
                )
            return self.net_link
        try:
            return self.to_other_cks[egress]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no CKS for egress interface {egress}"
            ) from None

    def _forward(self, pkt) -> Generator:
        yield from _stage_with_backpressure(self._route(pkt), pkt)

    def _planner(self, arbiter, engine, resume_reads, skip):
        return _plan_window(self, arbiter, engine, resume_reads, skip)

    def process(self, engine) -> Generator:
        """The kernel's forever-serving main loop (spawned as a daemon)."""
        planner = self._planner if self.burst_mode else None
        yield from self.arbiter.run(self._forward, engine, planner=planner)


class CKR:
    """Receive communication kernel for one network interface."""

    def __init__(
        self,
        rank: int,
        iface: int,
        inputs: list[Fifo],
        to_paired_cks: Fifo,
        to_other_ckr: dict[int, Fifo],
        port_home_iface: dict[int, int],
        recv_endpoints: dict[int, Fifo],
        read_burst: int,
        burst_mode: bool = True,
        record_accepts: bool = False,
    ) -> None:
        self.rank = rank
        self.iface = iface
        self.to_paired_cks = to_paired_cks
        self.to_other_ckr = to_other_ckr
        self.port_home_iface = port_home_iface
        self.recv_endpoints = recv_endpoints
        self.burst_mode = burst_mode
        self.arbiter = PollingArbiter(inputs, read_burst, record_accepts)
        self._route_memo: dict = {}  # (dst, port) -> routing target
        self.name = f"rank{rank}.ckr{iface}"

    def _route(self, pkt):
        if pkt.dst != self.rank:
            # This rank is an intermediate hop: hand to the paired CKS,
            # whose rank table knows the onward egress interface.
            return self.to_paired_cks
        try:
            home = self.port_home_iface[pkt.port]
        except KeyError:
            raise RoutingError(
                f"{self.name}: packet for unknown port {pkt.port} "
                f"({pkt!r}) — no endpoint was declared on this rank"
            ) from None
        if home == self.iface:
            try:
                return self.recv_endpoints[pkt.port]
            except KeyError:
                raise RoutingError(
                    f"{self.name}: port {pkt.port} has no receive endpoint"
                ) from None
        try:
            return self.to_other_ckr[home]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no CKR for interface {home}"
            ) from None

    def _forward(self, pkt) -> Generator:
        yield from _stage_with_backpressure(self._route(pkt), pkt)

    def _planner(self, arbiter, engine, resume_reads, skip):
        return _plan_window(self, arbiter, engine, resume_reads, skip)

    def process(self, engine) -> Generator:
        """The kernel's forever-serving main loop (spawned as a daemon)."""
        planner = self._planner if self.burst_mode else None
        yield from self.arbiter.run(self._forward, engine, planner=planner)
