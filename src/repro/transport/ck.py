"""Communication kernels: CKS (send side) and CKR (receive side), §4.2–4.3.

Each FPGA network interface is managed by a dedicated CKS/CKR pair so no
single module serialises all packet transfers. The kernels poll their inputs
(R-burst round-robin, :mod:`repro.transport.arbiter`), consult a routing
table, and forward each packet in the same cycle it was accepted:

* **CKS(i)** inputs: the application send endpoints assigned to interface
  *i*, the paired CKR (rerouted through-traffic), and every other local CKS.
  Routing by *destination rank*: local rank → paired CKR; otherwise, if the
  route's egress interface is *i*, onto the network link, else over to the
  CKS owning that interface.
* **CKR(i)** inputs: the network link of interface *i*, every other local
  CKR, and the paired CKS (loopback traffic). Routing: foreign destination →
  paired CKS (this rank is an intermediate hop); local destination → by
  *port*: deliver to the endpoint FIFO if the port lives on interface *i*,
  else over to the CKR owning the port's interface.

In burst mode the kernels delegate window planning to the supply-schedule
planner (:mod:`repro.transport.planner`): the transport builder wires all
CKs of a cluster to one :class:`~repro.transport.planner.SupplyPlanner`
(so plans cascade across CK boundaries and through links) and records each
kernel's engine process handle for co-planning; a standalone kernel falls
back to the solo planner with no cascade peers.
"""

from __future__ import annotations

from typing import Generator

from ..core.errors import RoutingError
from ..simulation.conditions import TICK
from ..simulation.fifo import Fifo
from .arbiter import PollingArbiter
from .planner import SOLO_PLANNER, SupplyPlanner


def _plane_proven(ck) -> bool:
    """One CK's entry in the macro-cruise plane registry: provably quiet.

    A plane is *proven* when its future is already committed arithmetic:
    the kernel finished (or never ran), it is sleeping off a planned
    window (every stage/take in the window is committed with exact
    cycles), or it is parked on provably silent inputs (its next act is
    bounded by the supply horizons the planner consults anyway). A CK in
    the ``"run"`` state is mid-decision — nothing about its next cycle
    is committed — so any train that meets one of its resources falls
    back to per-resource proofs at the ordinary take budget.
    """
    proc = ck.proc
    if proc is None or proc.finished:
        return True
    return ck.arbiter._resume_state in ("window", "parked")


def _stage_with_backpressure(out, pkt) -> Generator:
    """Stage ``pkt`` into ``out`` (FIFO or link), stalling on backpressure.

    For links, the stall also covers line-rate pacing (a 32-byte slot every
    ``link_cycles_per_packet`` kernel cycles).
    """
    while not out.writable:
        yield out.wait_writable()
    out.stage(pkt)
    yield TICK


class CKS:
    """Send communication kernel for one network interface."""

    def __init__(
        self,
        rank: int,
        iface: int,
        inputs: list[Fifo],
        net_link,
        to_paired_ckr: Fifo,
        to_other_cks: dict[int, Fifo],
        egress_iface: dict[int, int | None],
        read_burst: int,
        burst_mode: bool = True,
        record_accepts: bool = False,
    ) -> None:
        self.rank = rank
        self.iface = iface
        self.net_link = net_link
        self.to_paired_ckr = to_paired_ckr
        self.to_other_cks = to_other_cks
        self.egress_iface = egress_iface
        self.burst_mode = burst_mode
        self.arbiter = PollingArbiter(inputs, read_burst, record_accepts)
        self._route_memo: dict = {}  # (dst, port) -> routing target
        self.supply_planner: SupplyPlanner = SOLO_PLANNER
        self.proc = None  # engine Process handle, set by the builder
        self.name = f"rank{rank}.cks{iface}"

    def _route(self, pkt):
        if pkt.dst == self.rank:
            return self.to_paired_ckr
        try:
            egress = self.egress_iface[pkt.dst]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no route for destination rank {pkt.dst}"
            ) from None
        if egress == self.iface:
            if self.net_link is None:
                raise RoutingError(
                    f"{self.name}: routed to own interface but it is unwired"
                )
            return self.net_link
        try:
            return self.to_other_cks[egress]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no CKS for egress interface {egress}"
            ) from None

    def _forward(self, pkt) -> Generator:
        yield from _stage_with_backpressure(self._route(pkt), pkt)

    def _planner(self, arbiter, engine, resume_reads, skip):
        return self.supply_planner.plan(self, engine, resume_reads, skip)

    def plane_proven(self) -> bool:
        """See :func:`_plane_proven` (macro-cruise plane registry)."""
        return _plane_proven(self)

    def process(self, engine) -> Generator:
        """The kernel's forever-serving main loop (spawned as a daemon)."""
        planner = self._planner if self.burst_mode else None
        yield from self.arbiter.run(self._forward, engine, planner=planner)


class CKR:
    """Receive communication kernel for one network interface."""

    def __init__(
        self,
        rank: int,
        iface: int,
        inputs: list[Fifo],
        to_paired_cks: Fifo,
        to_other_ckr: dict[int, Fifo],
        port_home_iface: dict[int, int],
        recv_endpoints: dict[int, Fifo],
        read_burst: int,
        burst_mode: bool = True,
        record_accepts: bool = False,
    ) -> None:
        self.rank = rank
        self.iface = iface
        self.to_paired_cks = to_paired_cks
        self.to_other_ckr = to_other_ckr
        self.port_home_iface = port_home_iface
        self.recv_endpoints = recv_endpoints
        self.burst_mode = burst_mode
        self.arbiter = PollingArbiter(inputs, read_burst, record_accepts)
        self._route_memo: dict = {}  # (dst, port) -> routing target
        self.supply_planner: SupplyPlanner = SOLO_PLANNER
        self.proc = None  # engine Process handle, set by the builder
        self.name = f"rank{rank}.ckr{iface}"

    def _route(self, pkt):
        if pkt.dst != self.rank:
            # This rank is an intermediate hop: hand to the paired CKS,
            # whose rank table knows the onward egress interface.
            return self.to_paired_cks
        try:
            home = self.port_home_iface[pkt.port]
        except KeyError:
            raise RoutingError(
                f"{self.name}: packet for unknown port {pkt.port} "
                f"({pkt!r}) — no endpoint was declared on this rank"
            ) from None
        if home == self.iface:
            try:
                return self.recv_endpoints[pkt.port]
            except KeyError:
                raise RoutingError(
                    f"{self.name}: port {pkt.port} has no receive endpoint"
                ) from None
        try:
            return self.to_other_ckr[home]
        except KeyError:
            raise RoutingError(
                f"{self.name}: no CKR for interface {home}"
            ) from None

    def _forward(self, pkt) -> Generator:
        yield from _stage_with_backpressure(self._route(pkt), pkt)

    def _planner(self, arbiter, engine, resume_reads, skip):
        return self.supply_planner.plan(self, engine, resume_reads, skip)

    def plane_proven(self) -> bool:
        """See :func:`_plane_proven` (macro-cruise plane registry)."""
        return _plane_proven(self)

    def process(self, engine) -> Generator:
        """The kernel's forever-serving main loop (spawned as a daemon)."""
        planner = self._planner if self.burst_mode else None
        yield from self.arbiter.run(self._forward, engine, planner=planner)
