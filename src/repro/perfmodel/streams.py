"""Closed-form timing model of SMI point-to-point streams.

The cycle simulator is exact but O(packets); Fig. 9 sweeps to 256 MB, which
is out of reach for pure-Python cycle simulation. This model captures the
same architecture in closed form and is *validated against the simulator*
on overlapping sizes (see ``tests/test_perfmodel.py``); benchmarks use the
simulator up to a size threshold and the model beyond it, labelling each
point with its source.

Structure of a stream of K packets over h hops:

    T = T_endpoint + T_path + T_fill + (K - 1) * G + T_drain

* ``T_endpoint``: traversing the endpoint stacks once at each end.
* ``T_path``: per-hop transit — link latency + the link's ingress/egress
  registers + CK handoff (CKR poll, inter-CK FIFO, CKS poll) for every
  intermediate rank. The per-packet link slot paces the steady-state
  gap, not the one-off transit.
* ``T_fill``: producing the first packet's elements at ``app_width``
  elements per cycle (the last element-cycle overlaps the departure).
* ``G``: the steady-state packet gap — the bottleneck of the application's
  packet production rate (epp/app_width cycles per packet), the CKS's
  polling-limited service rate ((R + n_idle) / R with one active input),
  and the link slot rate.
* ``T_drain``: delivering the last packet's elements to the application.

The formula is cycle-exact against the simulator on link-paced streams
(every shipped preset) for any size, hop count and app width — enforced
by ``tests/test_perfmodel_checked.py`` — and within a documented bound
in the polling-/fill-limited corner regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from ..core.config import HardwareConfig
from ..core.datatypes import SMIDatatype

#: Cycles for a CK to accept + route + stage one packet (take/stage path).
CK_FORWARD_CYCLES = 1
#: Inter-CK FIFO handoff latency within a rank (CKR -> CKS on a hop).
INTER_CK_HANDOFF_CYCLES = 2
#: Link ingress + egress pipeline registers, charged once per hop. The
#: per-packet link slot (``link_cycles_per_packet``) paces the gap, not
#: the transit.
LINK_TRANSIT_CYCLES = 2
#: Polling positions a CKS scans besides the active input when idle
#: (paired CKR + up to 3 sibling CKS; matches the 5-input Table 4 setup).
IDLE_POLL_POSITIONS = 4


@dataclass(frozen=True)
class StreamEstimate:
    """Model output for one stream."""

    cycles: float
    packets: int
    hops: int

    def seconds(self, config: HardwareConfig) -> float:
        return config.cycles_to_seconds(self.cycles)

    def us(self, config: HardwareConfig) -> float:
        return config.cycles_to_us(self.cycles)


def packet_gap_cycles(
    config: HardwareConfig, dtype: SMIDatatype, app_width: int = 1
) -> float:
    """Steady-state cycles between consecutive packets of one stream."""
    epp = dtype.elements_per_packet
    app_gap = epp / app_width
    R = config.read_burst
    cks_gap = (R + IDLE_POLL_POSITIONS) / R
    link_gap = config.link_cycles_per_packet
    return max(app_gap, cks_gap, link_gap)


def hop_cycles(config: HardwareConfig) -> float:
    """Transit cycles added by each physical hop."""
    return (
        config.link_latency_cycles
        + LINK_TRANSIT_CYCLES
        + CK_FORWARD_CYCLES
        + INTER_CK_HANDOFF_CYCLES
    )


def endpoint_cycles(config: HardwareConfig) -> float:
    """Endpoint-stack cycles charged once per stream (both ends).

    The endpoint FIFO's first and last stage overlap the neighbouring
    pack/unpack cycles, hence the ``- 1`` per end.
    """
    return 2 * (config.endpoint_latency_cycles - 1)


def p2p_stream(
    count: int,
    dtype: SMIDatatype,
    hops: int,
    config: HardwareConfig,
    app_width: int = 1,
) -> StreamEstimate:
    """Time to move ``count`` elements over ``hops`` physical hops."""
    if count <= 0:
        return StreamEstimate(0.0, 0, hops)
    packets = dtype.packets_for(count)
    gap = packet_gap_cycles(config, dtype, app_width)
    epp = dtype.elements_per_packet
    # First-packet fill: the app produces ``app_width`` elements per
    # cycle; the fill's last cycle overlaps the packet's departure.
    fill = ceil(min(count, epp) / app_width) - 1
    # Last-packet drain: delivering its (possibly partial) payload.
    drain = ceil((count - (packets - 1) * epp) / app_width)
    cycles = (
        endpoint_cycles(config)
        + hops * hop_cycles(config)
        + fill
        + (packets - 1) * gap
        + drain
    )
    return StreamEstimate(cycles, packets, hops)


def p2p_latency_us(
    hops: int, config: HardwareConfig, dtype: SMIDatatype | None = None
) -> float:
    """One-way latency of a single-element message (Table 3 model)."""
    from ..core.datatypes import SMI_INT

    est = p2p_stream(1, dtype or SMI_INT, hops, config)
    return est.us(config)


def p2p_bandwidth_gbps(
    count: int,
    dtype: SMIDatatype,
    hops: int,
    config: HardwareConfig,
    app_width: int = 8,
) -> float:
    """Achieved payload bandwidth of a ``count``-element stream (Fig. 9)."""
    est = p2p_stream(count, dtype, hops, config, app_width)
    if est.cycles <= 0:
        return 0.0
    payload_bits = count * dtype.size * 8
    return payload_bits / est.seconds(config) / 1e9


def injection_gap_cycles(config: HardwareConfig, active_inputs: int = 1,
                         total_inputs: int = 5) -> float:
    """Average cycles between packets accepted from one endpoint (Table 4).

    With one active input among ``total_inputs``, an R-burst poller accepts
    R packets then scans the other inputs one cycle each:
    gap = (R + total - active) / R.
    """
    R = config.read_burst
    return (R + (total_inputs - active_inputs)) / R
