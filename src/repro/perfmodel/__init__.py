"""Analytical performance models, validated against the cycle simulator."""

from .collectives import bcast_cycles, gather_cycles, reduce_cycles, scatter_cycles
from .streams import (
    StreamEstimate,
    endpoint_cycles,
    hop_cycles,
    injection_gap_cycles,
    p2p_bandwidth_gbps,
    p2p_latency_us,
    p2p_stream,
    packet_gap_cycles,
)
