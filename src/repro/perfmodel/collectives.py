"""Closed-form timing of SMI collectives (Figs. 10-11 model extension).

Derived from the support-kernel implementations in
:mod:`repro.transport.collectives`; validated against the cycle simulator
on small/medium sizes and used to extend the benchmark sweeps to sizes the
cycle simulation cannot reach in reasonable wall time.
"""

from __future__ import annotations

from math import ceil

from ..core.config import HardwareConfig
from ..core.datatypes import SMIDatatype
from .streams import endpoint_cycles, hop_cycles, p2p_stream

#: Per-packet service at a relaying/combining support kernel: one cycle to
#: accept + relay, plus one cycle per payload element delivered/combined.
def _kernel_packet_service(dtype: SMIDatatype) -> float:
    return 1.0 + dtype.elements_per_packet


#: Per-packet turnaround at a support kernel beyond raw service: READY
#: handling, endpoint staging and the pop/push pair of the relay loop.
#: Calibrated against the simulator's 1-hop chain (the checked-prediction
#: suite asserts the resulting single-element latencies exactly).
RELAY_TURNAROUND_CYCLES = 20
#: Root-side setup of a chain collective beyond the endpoint stacks.
BCAST_SETUP_CYCLES = 5
#: Extra root stall when a credit tile is exhausted, beyond the per-rank
#: credit round trips (drain/refill handshake of the combine loop).
TILE_TURNAROUND_CYCLES = 53


def bcast_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    chain_hops: float,
    config: HardwareConfig,
) -> float:
    """Chain broadcast time (§4.4 linear scheme, pipelined relay).

    ``chain_hops`` is the mean hop distance between *consecutive* chain
    ranks — the linear scheme forwards along rank order, so each member
    beyond the root adds one READY/data round trip to its predecessor
    (2 x chain_hops link transits) plus the relay turnaround; the
    steady state is then paced by the slowest chain stage (a relaying
    support kernel: 1 + epp cycles per packet).
    """
    if count <= 0 or num_ranks <= 1:
        return float(count)
    packets = dtype.packets_for(count)
    epp = dtype.elements_per_packet
    per_member = (2 * chain_hops * hop_cycles(config)
                  + _kernel_packet_service(dtype) + RELAY_TURNAROUND_CYCLES)
    steady = (packets - 1) * _kernel_packet_service(dtype)
    drain = min(count, epp) - 1
    return (endpoint_cycles(config) + BCAST_SETUP_CYCLES
            + (num_ranks - 1) * per_member + steady + drain)


def reduce_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    chain_hops: float,
    config: HardwareConfig,
) -> float:
    """Credit-based linear reduction time (§4.4).

    Phases: a serialised per-rank rendezvous (the root grants credits to
    each contributing rank in turn, ``chain_hops`` apart), then the
    elementwise combine. Small communicators are paced by the combining
    kernel's per-packet turnaround; past ~5 ranks the root's combine of
    (P-1) network streams plus the local one takes over (§4.4's
    root-bound busy time, ~(P-1) * (1 + 1/epp) + 1 cycles per element).
    Every exhausted credit tile adds a latency-bound stall — per-rank
    credit round trips plus the drain/refill turnaround — the "latency
    sensitive" term that grows with network distance (§5.3.4).
    """
    if count <= 0:
        return 0.0
    if num_ranks <= 1:
        return float(2 * count)
    epp = dtype.elements_per_packet
    hop = hop_cycles(config)
    rendezvous = (num_ranks - 1) * (chain_hops * hop - 1)
    # The combining kernel services each contribution packet twice (pop
    # the contribution, push the combined/ack packet) plus turnaround.
    kernel_pace = (2 * _kernel_packet_service(dtype)
                   + RELAY_TURNAROUND_CYCLES) / epp
    root_pace = (num_ranks - 1) * (1.0 + 1.0 / epp) + 1.0
    busy = (count - 1) * max(kernel_pace, root_pace)
    tiles = ceil(count / config.reduce_credits)
    stall_per_tile = (
        2 * chain_hops * hop * (num_ranks - 1)  # credit out + data back
        + TILE_TURNAROUND_CYCLES
    )
    startup = endpoint_cycles(config) + _kernel_packet_service(dtype)
    return startup + rendezvous + busy + max(0, tiles - 1) * stall_per_tile


def scatter_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    avg_hops: float,
    config: HardwareConfig,
) -> float:
    """Linear scatter: per-rank rendezvous + sequential segment streams."""
    if count <= 0:
        return 0.0
    per_segment = p2p_stream(count, dtype, max(1, round(avg_hops)), config).cycles
    rendezvous = endpoint_cycles(config) + avg_hops * hop_cycles(config)
    # Segments are streamed in rank order; rendezvous overlaps only the
    # first (the root must observe READY k before starting segment k).
    return rendezvous + (num_ranks - 1) * per_segment + count


def gather_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    avg_hops: float,
    config: HardwareConfig,
) -> float:
    """Linear gather: sequential GRANT + segment stream per rank."""
    if count <= 0:
        return 0.0
    per_segment = (
        avg_hops * hop_cycles(config)              # GRANT to the rank
        + p2p_stream(count, dtype, max(1, round(avg_hops)), config).cycles
    )
    return endpoint_cycles(config) + (num_ranks - 1) * per_segment + count
