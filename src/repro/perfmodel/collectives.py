"""Closed-form timing of SMI collectives (Figs. 10-11 model extension).

Derived from the support-kernel implementations in
:mod:`repro.transport.collectives`; validated against the cycle simulator
on small/medium sizes and used to extend the benchmark sweeps to sizes the
cycle simulation cannot reach in reasonable wall time.
"""

from __future__ import annotations

from math import ceil

from ..core.config import HardwareConfig
from ..core.datatypes import SMIDatatype
from .streams import endpoint_cycles, hop_cycles, p2p_stream

#: Per-packet service at a relaying/combining support kernel: one cycle to
#: accept + relay, plus one cycle per payload element delivered/combined.
def _kernel_packet_service(dtype: SMIDatatype) -> float:
    return 1.0 + dtype.elements_per_packet


def bcast_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    avg_hops: float,
    config: HardwareConfig,
) -> float:
    """Chain broadcast time (§4.4 linear scheme, pipelined relay).

    Phases: readiness rendezvous (all non-roots report READY to the root),
    chain fill (first packet traverses P-1 support kernels), then the
    steady state paced by the slowest chain stage (a relaying support
    kernel: 1 + epp cycles per packet).
    """
    if count <= 0 or num_ranks <= 1:
        return float(count)
    packets = dtype.packets_for(count)
    epp = dtype.elements_per_packet
    sync = endpoint_cycles(config) + avg_hops * hop_cycles(config)
    fill = (num_ranks - 1) * (avg_hops * hop_cycles(config)
                              + _kernel_packet_service(dtype))
    steady = (packets - 1) * _kernel_packet_service(dtype)
    drain = min(count, epp)
    return sync + fill + steady + drain


def reduce_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    diameter_hops: float,
    config: HardwareConfig,
) -> float:
    """Credit-based linear reduction time (§4.4).

    The root combines every rank's stream elementwise at one element per
    cycle — (P-1) network streams plus the local one — so the busy time is
    ~count * ((P-1) * (1 + 1/epp) + 1) cycles. Every credit tile adds a
    latency-bound stall: the root drains the tile, sends credits to each
    rank, and the farthest rank's next tile travels back — this is the
    "latency sensitive" term that grows with the network diameter (§5.3.4).
    """
    if count <= 0:
        return 0.0
    if num_ranks <= 1:
        return float(2 * count)
    epp = dtype.elements_per_packet
    per_element_root = (num_ranks - 1) * (1.0 + 1.0 / epp) + 1.0
    busy = count * per_element_root
    tiles = ceil(count / config.reduce_credits)
    stall_per_tile = (
        2 * diameter_hops * hop_cycles(config)  # credit out + data back
        + (num_ranks - 1)                        # credit packets serialised
    )
    startup = endpoint_cycles(config) + diameter_hops * hop_cycles(config)
    return startup + busy + max(0, tiles - 1) * stall_per_tile


def scatter_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    avg_hops: float,
    config: HardwareConfig,
) -> float:
    """Linear scatter: per-rank rendezvous + sequential segment streams."""
    if count <= 0:
        return 0.0
    per_segment = p2p_stream(count, dtype, max(1, round(avg_hops)), config).cycles
    rendezvous = endpoint_cycles(config) + avg_hops * hop_cycles(config)
    # Segments are streamed in rank order; rendezvous overlaps only the
    # first (the root must observe READY k before starting segment k).
    return rendezvous + (num_ranks - 1) * per_segment + count


def gather_cycles(
    count: int,
    dtype: SMIDatatype,
    num_ranks: int,
    avg_hops: float,
    config: HardwareConfig,
) -> float:
    """Linear gather: sequential GRANT + segment stream per rank."""
    if count <= 0:
        return 0.0
    per_segment = (
        avg_hops * hop_cycles(config)              # GRANT to the rank
        + p2p_stream(count, dtype, max(1, round(avg_hops)), config).cycles
    )
    return endpoint_cycles(config) + (num_ranks - 1) * per_segment + count
