"""Host-mediated communication baseline (MPI + OpenCL, §5.3).

The paper's reference comparison moves data "through the host stack, where
the application writes the message into off-chip DRAM on the device,
transfers it across PCIe to the host, sends it to the remote host using an
MPI_Send primitive. On the receiving host, symmetric operations are
performed" — "a long sequence of copies through local device memory, local
PCIe, host network, remote PCIe, and remote device memory" (§5.3.1).

We model that path as a store-and-forward pipeline over named segments,
each with a fixed latency and a bandwidth; a transfer of S bytes costs

    T(S) = sum_i (L_i + S / B_i)

because MPI+OpenCL performs the copies sequentially at message granularity
(clEnqueueReadBuffer completes before MPI_Send starts, etc.).

Calibration (documented per constant below):

* one-way zero-byte latency sums to 36.61 us — Table 3's MPI+OpenCL value;
* the large-message effective bandwidth works out to ~12.1 Gbit/s —
  matching Fig. 9's MPI+OpenCL plateau at roughly one third of SMI's;
* host *collectives* carry a large fixed overhead (OpenCL kernel launches,
  event synchronisation, MPI collective setup across 8 processes) that
  makes their small-message latency sit in the millisecond range, as in
  Figs. 10–11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil, log2

from ..core.datatypes import SMIDatatype

#: PCIe gen3 x8 peak, the dashed "PCIe Peak Bandwidth" line of Fig. 9.
PCIE_PEAK_BPS = 63.0e9

#: Omni-Path host interconnect peak (§5.1: 100 Gbit/s).
HOST_NET_PEAK_BPS = 100.0e9


@dataclass(frozen=True)
class Segment:
    """One stage of the host path: fixed latency + bandwidth."""

    name: str
    latency_us: float
    bandwidth_bps: float

    def time_s(self, payload_bytes: int) -> float:
        return self.latency_us * 1e-6 + payload_bytes * 8 / self.bandwidth_bps


@dataclass(frozen=True)
class HostPathModel:
    """End-to-end device-to-device transfer through the hosts.

    The default segment list models (latencies calibrated so the zero-byte
    one-way total is exactly Table 3's 36.61 us):

    1. device DRAM drain on the sender (DMA-visible buffer),
    2. PCIe device->host including OpenCL readbuffer overhead,
    3. host memory copy into the MPI send path,
    4. MPI over Omni-Path,
    5. host memory copy out of the MPI receive path,
    6. PCIe host->device including OpenCL writebuffer overhead,
    7. device DRAM fill on the receiver.
    """

    segments: tuple = (
        Segment("dev-dram-src", 0.40, 128.0e9),
        Segment("pcie-up", 15.90, PCIE_PEAK_BPS),
        Segment("host-copy-src", 0.20, 80.0e9),
        Segment("mpi-omnipath", 3.61, HOST_NET_PEAK_BPS),
        Segment("host-copy-dst", 0.20, 80.0e9),
        Segment("pcie-down", 15.90, PCIE_PEAK_BPS),
        Segment("dev-dram-dst", 0.40, 128.0e9),
    )
    #: Extra fixed cost of a host-driven *collective* operation: OpenCL
    #: kernel launches + event sync + MPI collective setup over all ranks
    #: (calibrated to the flat small-message region of Figs. 10-11).
    collective_fixed_us: float = 1500.0

    # ------------------------------------------------------------------
    # Point-to-point (Fig. 9 / Table 3)
    # ------------------------------------------------------------------
    def p2p_time_s(self, payload_bytes: int) -> float:
        """One-way device-to-device transfer time."""
        return sum(seg.time_s(payload_bytes) for seg in self.segments)

    def p2p_latency_us(self) -> float:
        """Zero-byte one-way latency (Table 3's MPI+OpenCL entry)."""
        return self.p2p_time_s(0) * 1e6

    def p2p_bandwidth_gbps(self, payload_bytes: int) -> float:
        """Achieved payload bandwidth for a message of the given size."""
        if payload_bytes <= 0:
            return 0.0
        return payload_bytes * 8 / self.p2p_time_s(payload_bytes) / 1e9

    def peak_bandwidth_gbps(self) -> float:
        """Asymptotic effective bandwidth of the full path."""
        inv = sum(1.0 / seg.bandwidth_bps for seg in self.segments)
        return 1.0 / inv / 1e9

    # ------------------------------------------------------------------
    # Collectives (Figs. 10-11)
    # ------------------------------------------------------------------
    def _rounds(self, num_ranks: int) -> int:
        """Binomial-tree rounds of the host MPI collective."""
        return max(1, ceil(log2(num_ranks))) if num_ranks > 1 else 0

    def bcast_time_s(self, count: int, dtype: SMIDatatype, num_ranks: int) -> float:
        """Host-driven broadcast of ``count`` elements to ``num_ranks``.

        Each binomial round moves the full message device-to-device
        through the host path (data must land in the receiving FPGA's
        memory before that rank can serve the next round).
        """
        payload = count * dtype.size
        rounds = self._rounds(num_ranks)
        return self.collective_fixed_us * 1e-6 + rounds * self.p2p_time_s(payload)

    def reduce_time_s(self, count: int, dtype: SMIDatatype, num_ranks: int) -> float:
        """Host-driven reduction (binomial combine tree + host FLOPs)."""
        payload = count * dtype.size
        rounds = self._rounds(num_ranks)
        # Host-side elementwise combine per round: ~8 GB/s effective.
        combine_s = payload / 8.0e9
        return (
            self.collective_fixed_us * 1e-6
            + rounds * (self.p2p_time_s(payload) + combine_s)
        )

    def scatter_time_s(self, count: int, dtype: SMIDatatype, num_ranks: int) -> float:
        """Host-driven scatter: root sends one segment per peer."""
        payload = count * dtype.size
        return (
            self.collective_fixed_us * 1e-6
            + (num_ranks - 1) * self.p2p_time_s(payload)
        )

    def gather_time_s(self, count: int, dtype: SMIDatatype, num_ranks: int) -> float:
        """Host-driven gather: root receives one segment per peer."""
        return self.scatter_time_s(count, dtype, num_ranks)


#: The calibrated Noctua host path (Xeon Gold 6148F + Omni-Path, §5.1).
NOCTUA_HOST = HostPathModel()
