"""Host-mediated (MPI+OpenCL) baseline models."""

from .model import HOST_NET_PEAK_BPS, NOCTUA_HOST, PCIE_PEAK_BPS, HostPathModel, Segment
