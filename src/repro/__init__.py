"""repro — reproduction of "Streaming Message Interface" (SC 2019).

A cycle-level simulation of SMI's transport layer, the full SMI programming
API (point-to-point transient channels + collectives), route generation,
resource/host-baseline models, and the paper's applications and benchmarks.
"""

from .core import (
    HW_PRESETS,
    NOCTUA,
    NOCTUA_DEEP,
    NOCTUA_KERNEL_CLOCKS,
    NOCTUA_MEMORY,
    NOCTUA_XDEEP,
    hardware_preset,
    DATATYPES,
    OPS,
    SMI_ADD,
    SMI_CHAR,
    SMI_DOUBLE,
    SMI_FLOAT,
    SMI_INT,
    SMI_LONG,
    SMI_MAX,
    SMI_MIN,
    SMI_SHORT,
    ChannelError,
    CodegenError,
    ConfigurationError,
    DeadlockError,
    HardwareConfig,
    KernelClockModel,
    MemoryConfig,
    MessageOverrunError,
    ProgramResult,
    RoutingError,
    SimulationError,
    SMIComm,
    SMIContext,
    SMIDatatype,
    SMIError,
    SMIOp,
    SMIProgram,
    TopologyError,
    TypeMismatchError,
)
from .codegen import OpDecl
from .network import Topology, bus, compute_routes, noctua_bus, noctua_torus, ring, torus2d
from .shard import Partition, partition_topology

__version__ = "1.0.0"
