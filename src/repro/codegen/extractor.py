"""Metadata extraction from kernel source (the Clang-pass analog, §4.5).

"To generate the correct input to the code generator, we provide a metadata
extractor, that parses the user's device code with Clang, finds all used SMI
operations and extracts their metadata to a file."

Here the device code is a Python generator function and the parser is the
:mod:`ast` module: every ``open_*_channel`` call is located and its *static*
arguments (port, datatype, reduce op) are extracted. Like the original, the
extractor requires these to be compile-time constants — ports identify
physical FIFOs (§2.2) — while counts, ranks and communicators stay dynamic.
Names are resolved against the function's globals and closure, so idioms
like ``PORT_WEST = 1`` work; anything unresolvable is a
:class:`~repro.core.errors.CodegenError` asking for an explicit declaration.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Callable

from ..core import datatypes as _datatypes
from ..core import ops as _ops
from ..core.datatypes import SMIDatatype
from ..core.errors import CodegenError
from ..core.ops import SMIOp
from .metadata import OpDecl

#: open call -> (kind, index of the port argument). Credited channels
#: need both directions on their port (the reverse path carries credits).
_OPEN_CALLS: dict[str, tuple[str, int]] = {
    "open_send_channel": ("send", 3),
    "open_recv_channel": ("recv", 3),
    "open_credited_send_channel": ("send+recv", 3),
    "open_credited_recv_channel": ("recv+send", 3),
    "open_bcast_channel": ("bcast", 2),
    "open_reduce_channel": ("reduce", 3),
    "open_scatter_channel": ("scatter", 2),
    "open_gather_channel": ("gather", 2),
}

#: keyword names accepted for the port argument, per kind.
_PORT_KEYWORD = "port"
_DTYPE_INDEX = 1
_REDUCE_OP_INDEX = 2


def _build_env(fn: Callable) -> dict:
    env: dict = {}
    env.update(_datatypes.DATATYPES)
    env.update(_ops.OPS)
    env.update(getattr(fn, "__globals__", {}))
    closure = getattr(fn, "__closure__", None)
    if closure:
        for name, cell in zip(fn.__code__.co_freevars, closure):
            try:
                env[name] = cell.cell_contents
            except ValueError:  # pragma: no cover - unbound cell
                pass
    return env


def _resolve(node: ast.expr, env: dict, what: str, fn_name: str):
    """Statically resolve an AST expression to a Python value."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        if node.id in env:
            return env[node.id]
    if isinstance(node, ast.Attribute):
        base = _resolve(node.value, env, what, fn_name)
        if base is not None and hasattr(base, node.attr):
            return getattr(base, node.attr)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _resolve(node.operand, env, what, fn_name)
        if isinstance(inner, (int, float)):
            return -inner
    raise CodegenError(
        f"kernel {fn_name!r}: cannot statically resolve the {what} argument "
        f"at line {getattr(node, 'lineno', '?')}; SMI ports and types must "
        "be compile-time constants (§2.2) — pass ops=[...] explicitly if "
        "this is generated code"
    )


def _argument(call: ast.Call, index: int, keyword: str) -> ast.expr | None:
    if len(call.args) > index:
        return call.args[index]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def extract_ops(fn: Callable) -> list[OpDecl]:
    """Extract the :class:`OpDecl` set used by a kernel function."""
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise CodegenError(
            f"cannot read source of kernel {fn.__name__!r} for metadata "
            "extraction; pass ops=[...] explicitly"
        ) from exc
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - dedent covers most cases
        raise CodegenError(
            f"cannot parse source of kernel {fn.__name__!r}: {exc}"
        ) from exc
    env = _build_env(fn)
    decls: list[OpDecl] = []
    seen: set[tuple] = set()

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name not in _OPEN_CALLS:
            continue
        kind, port_index = _OPEN_CALLS[name]
        port_node = _argument(node, port_index, _PORT_KEYWORD)
        if port_node is None:
            raise CodegenError(
                f"kernel {fn.__name__!r}: {name} call at line {node.lineno} "
                "has no port argument"
            )
        port = _resolve(port_node, env, "port", fn.__name__)
        if not isinstance(port, int):
            raise CodegenError(
                f"kernel {fn.__name__!r}: port argument at line "
                f"{node.lineno} resolved to {port!r}, expected an int"
            )
        dtype_node = _argument(node, _DTYPE_INDEX, "dtype")
        if dtype_node is None:
            raise CodegenError(
                f"kernel {fn.__name__!r}: {name} call at line {node.lineno} "
                "has no dtype argument"
            )
        dtype = _resolve(dtype_node, env, "dtype", fn.__name__)
        if not isinstance(dtype, SMIDatatype):
            raise CodegenError(
                f"kernel {fn.__name__!r}: dtype argument at line "
                f"{node.lineno} resolved to {dtype!r}, expected an "
                "SMIDatatype"
            )
        reduce_op = None
        if kind == "reduce":
            op_node = _argument(node, _REDUCE_OP_INDEX, "op")
            if op_node is None:
                raise CodegenError(
                    f"kernel {fn.__name__!r}: reduce open at line "
                    f"{node.lineno} has no op argument"
                )
            reduce_op = _resolve(op_node, env, "reduce op", fn.__name__)
            if not isinstance(reduce_op, SMIOp):
                raise CodegenError(
                    f"kernel {fn.__name__!r}: reduce op at line "
                    f"{node.lineno} resolved to {reduce_op!r}, expected an "
                    "SMIOp"
                )
        for one_kind in kind.split("+"):
            key = (one_kind, port, dtype.name,
                   reduce_op.name if reduce_op else None)
            if key in seen:
                continue
            seen.add(key)
            decls.append(OpDecl(kind=one_kind, port=port, dtype=dtype,
                                reduce_op=reduce_op))
    return decls
