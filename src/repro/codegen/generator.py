"""Transport code generation report (Fig. 8's "code generator").

In the paper, the code generator consumes the extracted op metadata and
emits an OpenCL device file with all CKS/CKR modules, communication
primitives and collective support kernels, plus a host header. In the
simulator the "generated hardware" is built directly by
:mod:`repro.transport.builder`; this module produces the *generation plan* —
the exact inventory of hardware the builder will instantiate — as an
inspectable/serialisable artifact, together with a resource estimate. This
is what a build system (the paper ships CMake integration) would consume.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

from ..core.config import HardwareConfig
from ..network.topology import Topology
from ..resources.model import SMIResourceEstimate, estimate
from .metadata import ProgramPlan, RankPlan


@dataclass
class GeneratedRank:
    """Everything the generator emits for one rank."""

    rank: int
    active_interfaces: list[int]
    cks_modules: list[str]
    ckr_modules: list[str]
    send_endpoints: dict[int, str]
    recv_endpoints: dict[int, str]
    support_kernels: dict[int, str]
    port_interface: dict[int, int]
    resources: SMIResourceEstimate | None = None


@dataclass
class GenerationReport:
    """The full code-generation output for a program."""

    topology: str
    num_ranks: int
    ranks: list[GeneratedRank] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "topology": self.topology,
            "num_ranks": self.num_ranks,
            "ranks": [
                {
                    "rank": r.rank,
                    "active_interfaces": r.active_interfaces,
                    "cks_modules": r.cks_modules,
                    "ckr_modules": r.ckr_modules,
                    "send_endpoints": r.send_endpoints,
                    "recv_endpoints": r.recv_endpoints,
                    "support_kernels": r.support_kernels,
                    "port_interface": r.port_interface,
                    "resources": None if r.resources is None else {
                        "luts": r.resources.total.luts,
                        "ffs": r.resources.total.ffs,
                        "m20ks": r.resources.total.m20ks,
                        "dsps": r.resources.total.dsps,
                    },
                }
                for r in self.ranks
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)


def generate(plan: ProgramPlan, topology: Topology,
             config: HardwareConfig) -> GenerationReport:
    """Produce the generation plan for ``plan`` over ``topology``.

    Mirrors the builder's decisions exactly (interface activation, port
    round-robin assignment, support kernel instantiation) so the report is
    a faithful description of the simulated hardware.
    """
    plan.validate()
    report = GenerationReport(topology=topology.name, num_ranks=plan.num_ranks)
    for rank in range(plan.num_ranks):
        rank_plan = plan.rank_plans.get(rank, RankPlan(rank))
        active = topology.interfaces_of(rank) or [0]
        ports = rank_plan.ports
        port_iface = {p: active[i % len(active)] for i, p in enumerate(ports)}
        coll = {}
        for op in rank_plan.collective_ops():
            coll[op.port] = f"smi_{op.kind}_{op.dtype.name.lower()}_port{op.port}"
        coll_counts: dict[str, int] = {}
        for op in rank_plan.collective_ops():
            coll_counts[op.kind] = coll_counts.get(op.kind, 0) + 1
        n_send = len(rank_plan.send_ports())
        endpoints_per_pair = max(
            1, -(-max(n_send, len(rank_plan.recv_ports())) // len(active))
        )
        resources = estimate(
            qsfps=min(4, len(active)),
            endpoints_per_pair=endpoints_per_pair,
            collectives=coll_counts or None,
        )
        report.ranks.append(GeneratedRank(
            rank=rank,
            active_interfaces=list(active),
            cks_modules=[f"smi_kernel_cks_{i}" for i in active],
            ckr_modules=[f"smi_kernel_ckr_{i}" for i in active],
            send_endpoints={
                p: f"cks_data_{p}" for p in rank_plan.send_ports()
            },
            recv_endpoints={
                p: f"ckr_data_{p}" for p in rank_plan.recv_ports()
            },
            support_kernels=coll,
            port_interface=port_iface,
            resources=resources,
        ))
    return report
