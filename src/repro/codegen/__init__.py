"""Code generation workflow (Fig. 8): metadata extraction, transport
generation, route generation."""

from .extractor import extract_ops
from .generator import GeneratedRank, GenerationReport, generate
from .metadata import (
    ALL_KINDS,
    COLLECTIVE_KINDS,
    P2P_KINDS,
    OpDecl,
    ProgramPlan,
    RankPlan,
)
from .routes import generate_routes, load_routes
