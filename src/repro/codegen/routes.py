"""Route generator CLI (Fig. 8's "routes generator").

"A route generator accepts the network topology of the FPGA cluster and
produces the necessary routing tables that drive the forwarding logic at
runtime. The topology is provided as a JSON file [...] it can be executed
independently from the compilation (crucially, you can change the routes
without recompiling the bitstream)."

Usage::

    smi-routes --topology topology.json --out routes/ [--scheme auto]

Writes one ``rank<N>.json`` routing table per rank plus a ``summary.json``
with the scheme used and the deadlock-freedom verdict. Also importable:
:func:`generate_routes`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..network.routing import Routes, compute_routes, is_deadlock_free
from ..network.topology import Topology


def generate_routes(topology: Topology, out_dir: str | Path,
                    scheme: str = "auto") -> Routes:
    """Compute routes and write per-rank table files into ``out_dir``."""
    routes = compute_routes(topology, scheme)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for rank, table in enumerate(routes.next_iface):
        path = out / f"rank{rank}.json"
        path.write_text(json.dumps(
            {str(dst): iface for dst, iface in sorted(table.items())},
            indent=2,
        ))
    (out / "summary.json").write_text(json.dumps({
        "topology": topology.name,
        "num_ranks": topology.num_ranks,
        "scheme": routes.scheme,
        "deadlock_free": routes.deadlock_free,
        "verified_deadlock_free": is_deadlock_free(routes),
        "diameter": topology.diameter(),
    }, indent=2))
    return routes


def load_routes(topology: Topology, out_dir: str | Path,
                scheme_name: str = "loaded") -> Routes:
    """Read per-rank table files back into a :class:`Routes` object.

    This is the runtime-upload step of §4.3: tables written earlier (or by
    hand, e.g. to emulate a degraded interconnect) drive the transport
    without rebuilding anything.
    """
    out = Path(out_dir)
    tables = []
    for rank in range(topology.num_ranks):
        raw = json.loads((out / f"rank{rank}.json").read_text())
        tables.append({int(dst): iface for dst, iface in raw.items()})
    return Routes(topology, scheme_name, tables)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="smi-routes",
        description="Generate SMI routing tables from a topology JSON file.",
    )
    parser.add_argument("--topology", required=True,
                        help="path to the topology JSON description")
    parser.add_argument("--out", required=True,
                        help="output directory for per-rank table files")
    parser.add_argument("--scheme", default="auto",
                        choices=("auto", "shortest", "tree"),
                        help="routing scheme (default: auto)")
    args = parser.parse_args(argv)
    topology = Topology.from_json(Path(args.topology))
    routes = generate_routes(topology, args.out, args.scheme)
    print(
        f"generated routes for {topology.num_ranks} ranks "
        f"(scheme={routes.scheme}, deadlock_free={routes.deadlock_free}) "
        f"into {args.out}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
