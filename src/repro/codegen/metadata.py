"""SMI operation metadata (§4.5, Fig. 8).

The paper's workflow extracts every SMI operation used by the device code
(with a Clang pass) into a metadata file; the code generator then emits a
transport layer tailored to exactly that set of ports. Here the same
metadata is an :class:`OpDecl` list per rank: the Python-AST extractor in
:mod:`repro.codegen.extractor` produces it from kernel source, or programs
declare it explicitly.

"All ports must be known at compile time, such that, within each rank, the
necessary hardware connections between the communication endpoints and the
network can be instantiated" (§2.2) — which is why the transport builder
consumes these declarations, not runtime channel opens.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.datatypes import SMIDatatype
from ..core.errors import CodegenError
from ..core.ops import SMIOp

#: Operation kinds and the endpoint hardware each needs.
P2P_KINDS = ("send", "recv")
COLLECTIVE_KINDS = ("bcast", "reduce", "scatter", "gather")
ALL_KINDS = P2P_KINDS + COLLECTIVE_KINDS


@dataclass(frozen=True)
class OpDecl:
    """One declared SMI operation on one port of one rank.

    Attributes
    ----------
    kind:
        "send" / "recv" for point-to-point endpoints, or one of the
        collective kinds. A collective op instantiates a support kernel plus
        both a send and a receive hardware endpoint on its port (§4.4).
    port:
        The port number (0..255); identifies the endpoint within the rank.
    dtype:
        Element datatype carried over this port.
    reduce_op:
        The reduction operator (reduce only).
    buffer_depth:
        Optional override of the endpoint FIFO depth in packets — the
        compile-time buffer size of §4.2 that realises the channel
        asynchronicity degree k (§3.3).
    scheme:
        Collective implementation scheme: "linear" (the paper's reference
        implementation, §4.4) or "tree" (the binary-tree extension the
        paper suggests; Bcast/Reduce only).
    peer:
        Optional static peer rank (destination for "send", source for
        "recv"). When declared, the transport builder narrows its
        flow-liveness analysis to the exact route this operation uses,
        which lets the burst fast path prove more arbiter inputs idle;
        ``None`` means "any rank" (always safe, possibly slower to
        simulate). Purely a simulator optimisation hint — routing itself
        stays fully dynamic.
    """

    kind: str
    port: int
    dtype: SMIDatatype
    reduce_op: SMIOp | None = None
    buffer_depth: int | None = None
    scheme: str = "linear"
    peer: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise CodegenError(
                f"unknown op kind {self.kind!r}; expected one of {ALL_KINDS}"
            )
        if self.scheme not in ("linear", "tree"):
            raise CodegenError(
                f"unknown collective scheme {self.scheme!r}"
            )
        if self.scheme == "tree" and self.kind not in ("bcast", "reduce"):
            raise CodegenError(
                f"tree scheme is only implemented for bcast/reduce, "
                f"not {self.kind!r}"
            )
        if not 0 <= self.port <= 255:
            raise CodegenError(
                f"port {self.port} does not fit the 1-byte header field"
            )
        if self.kind == "reduce" and self.reduce_op is None:
            raise CodegenError("reduce ops must declare a reduce_op")
        if self.kind != "reduce" and self.reduce_op is not None:
            raise CodegenError(f"{self.kind} ops must not declare a reduce_op")
        if self.buffer_depth is not None and self.buffer_depth < 1:
            raise CodegenError("buffer_depth must be >= 1 packet")
        if self.peer is not None and not 0 <= self.peer <= 255:
            raise CodegenError(
                f"peer rank {self.peer} does not fit the 1-byte header field"
            )

    @property
    def needs_send_endpoint(self) -> bool:
        return self.kind == "send" or self.kind in COLLECTIVE_KINDS

    @property
    def needs_recv_endpoint(self) -> bool:
        return self.kind == "recv" or self.kind in COLLECTIVE_KINDS

    @property
    def is_collective(self) -> bool:
        return self.kind in COLLECTIVE_KINDS


@dataclass
class RankPlan:
    """All declared operations of one rank."""

    rank: int
    ops: list[OpDecl] = field(default_factory=list)

    def validate(self) -> None:
        """Enforce the port-sharing rules of the interface (§2.2, §3.2).

        Per rank, a port may carry at most one sending use and one receiving
        use (a rank may both send east and receive from west on the same
        port, as in the stencil of Listing 3); a collective claims its port
        exclusively, because its support kernel owns both directions.
        """
        send_users: dict[int, OpDecl] = {}
        recv_users: dict[int, OpDecl] = {}
        collective: dict[int, OpDecl] = {}
        for op in self.ops:
            if op.is_collective:
                for owner in (send_users, recv_users, collective):
                    if op.port in owner:
                        raise CodegenError(
                            f"rank {self.rank}: port {op.port} already used "
                            f"by {owner[op.port].kind!r}; collectives need "
                            "an exclusive port"
                        )
                collective[op.port] = op
                send_users[op.port] = op
                recv_users[op.port] = op
                continue
            if op.port in collective:
                raise CodegenError(
                    f"rank {self.rank}: port {op.port} is owned by a "
                    f"{collective[op.port].kind!r} collective"
                )
            users = send_users if op.kind == "send" else recv_users
            if op.port in users:
                raise CodegenError(
                    f"rank {self.rank}: duplicate {op.kind!r} endpoint on "
                    f"port {op.port}"
                )
            users[op.port] = op
        # Endpoints sharing a port must agree on the element type (§3.1.1).
        for port in set(send_users) & set(recv_users):
            s, r = send_users[port], recv_users[port]
            if s.dtype is not r.dtype and s.dtype != r.dtype:
                raise CodegenError(
                    f"rank {self.rank}: port {port} used with conflicting "
                    f"datatypes {s.dtype.name} and {r.dtype.name}"
                )

    @property
    def ports(self) -> list[int]:
        """All distinct ports, ascending."""
        return sorted({op.port for op in self.ops})

    def collective_ops(self) -> list[OpDecl]:
        return [op for op in self.ops if op.is_collective]

    def send_ports(self) -> dict[int, OpDecl]:
        return {op.port: op for op in self.ops if op.needs_send_endpoint}

    def recv_ports(self) -> dict[int, OpDecl]:
        return {op.port: op for op in self.ops if op.needs_recv_endpoint}


@dataclass
class ProgramPlan:
    """The full metadata the code generator consumes: one plan per rank."""

    num_ranks: int
    rank_plans: dict[int, RankPlan] = field(default_factory=dict)

    def plan_for(self, rank: int) -> RankPlan:
        if rank not in self.rank_plans:
            self.rank_plans[rank] = RankPlan(rank)
        return self.rank_plans[rank]

    def add(self, rank: int, op: OpDecl) -> None:
        if not 0 <= rank < self.num_ranks:
            raise CodegenError(f"rank {rank} out of range [0, {self.num_ranks})")
        self.plan_for(rank).ops.append(op)

    def validate(self) -> None:
        for plan in self.rank_plans.values():
            plan.validate()

    def total_ops(self) -> int:
        return sum(len(p.ops) for p in self.rank_plans.values())
