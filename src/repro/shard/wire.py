"""Packed boundary wire format and shared-memory rings (process backend).

The process backend's unit of IPC is one :class:`~repro.shard.proxy`
batch per boundary link per exchange. PR 5 pickled each batch — one
Python object graph per packet — which made serialization the dominant
cost of a process-sharded run. This module replaces that with a packed
binary codec and a shared-memory transport:

* **Record codec** — one struct-packed header plus contiguous
  ``numpy`` payload blocks per batch. A :class:`ShipBatch` of ``k``
  packets becomes ``28 + 9k + 32k`` bytes: an ``int64`` visibility-cycle
  block, a 1-byte-per-packet datatype-id sidecar (the 32-byte wire
  format drops the payload's element type, which in SMI is per-port
  knowledge — see :meth:`repro.network.packet.Packet.decode`), and the
  packets themselves in the bit-exact 32-byte wire layout of §4.1–4.2.
  Batches whose items are not plain :class:`Packet` objects with
  registered scalar datatypes (test doubles, oversized payloads) fall
  back to pickle, flagged in the record header — the codec is faithful
  either way, the fast path is just faster.

* **SPSC byte rings** (:class:`ShmRing`) — single-producer
  single-consumer rings of length-prefixed records over one
  ``multiprocessing.shared_memory`` block (:class:`ShmFabric`), two per
  boundary channel (ship and ack directions). Head/tail are monotone
  ``int64`` counters; the producer writes the record body before
  publishing the new head, which on the total-store-order memory model
  CPython runs under (x86-64, and the GIL-serialised stores elsewhere)
  is sufficient for SPSC correctness. A full ring makes ``try_push``
  return ``False`` — the caller keeps the record in a backlog and
  retries, it is never dropped — and records wider than the ring are
  split at batch granularity by :func:`pack_ship_records` /
  :func:`pack_ack_records` (applying a split batch in segments is
  equivalent: cycles stay monotone and floors are per-record).

The coordinator creates the fabric before forking and unlinks it
immediately, so workers inherit the one mapping and no name can leak —
crash-safe by construction. Record streams are also the pipe
transport's payload (:func:`encode_exchange` / :func:`decode_exchange`):
with ``shard_transport="pipe"`` the same codec rides the control pipe,
isolating codec wins from transport wins in A/B runs.

Channel keys (the ``(src rank, iface)`` tuples of
:class:`~repro.shard.timesync.BoundaryChannel`) never cross the wire:
both sides index the same sorted key table, built identically from the
partition, and records carry the 32-bit table index.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from ..core.datatypes import DATATYPES, PACKET_BYTES, PAYLOAD_BYTES
from ..core.errors import SimulationError
from ..network.packet import OpType, Packet

#: Record kinds (header field 0).
KIND_SHIP = 1         # packed ship: cycles + dtype ids + 32-byte packets
KIND_SHIP_PICKLE = 2  # fallback ship: pickled (items, cycles)
KIND_ACK = 3          # ack: cycles block only

#: Record header: kind (u8), flags (u8, reserved), pad (u16), key id
#: (u32), count (u32; items for ships, bytes for pickled ships, cycles
#: for acks), and two kind-specific ``int64`` floors — horizon+slack for
#: ships, take-floor+0 for acks.
RECORD_HEADER = struct.Struct("<BBHIIqq")

#: Datatype-id sidecar values: 0 is "no datatype" (control packets),
#: ids 1.. index the sorted registry — identical in every process that
#: imports this module, so the id table itself never needs shipping.
DTYPES_BY_ID: tuple = (None,) + tuple(
    DATATYPES[name] for name in sorted(DATATYPES)
)
DTYPE_IDS: dict[str, int] = {
    dt.name: i for i, dt in enumerate(DTYPES_BY_ID) if dt is not None
}


# ----------------------------------------------------------------------
# Packet block codec
# ----------------------------------------------------------------------
def _pack_items(items) -> tuple[np.ndarray, np.ndarray] | None:
    """Items as (k, 32) wire rows + dtype-id sidecar, or None to fall back."""
    k = len(items)
    rows = np.zeros((k, PACKET_BYTES), dtype=np.uint8)
    ids = np.zeros(k, dtype=np.uint8)
    for i, pkt in enumerate(items):
        if type(pkt) is not Packet:
            return None
        dtype = pkt.dtype
        if dtype is None:
            did = 0
        else:
            did = DTYPE_IDS.get(dtype.name, 0)
            if did == 0:
                return None
        row = rows[i]
        row[0] = pkt.src
        row[1] = pkt.dst
        row[2] = pkt.port
        row[3] = ((int(pkt.op) & 0b111) << 5) | pkt.count
        if dtype is not None and pkt.count:
            body = np.ascontiguousarray(
                pkt.payload[: pkt.count], dtype=dtype.np_dtype
            ).view(np.uint8)
            if body.size > PAYLOAD_BYTES:
                return None
            row[4 : 4 + body.size] = body
        ids[i] = did
    return rows, ids


def _unpack_items(rows: np.ndarray, ids: np.ndarray) -> list[Packet]:
    """Inverse of :func:`_pack_items` (matches ``Packet.decode``)."""
    items = []
    for i in range(len(ids)):
        row = rows[i]
        opcount = int(row[3])
        count = opcount & 0b11111
        dtype = DTYPES_BY_ID[int(ids[i])]
        if dtype is not None and count:
            payload = np.frombuffer(
                row[4 : 4 + count * dtype.size].tobytes(),
                dtype=dtype.np_dtype,
            ).copy()
        else:
            payload = np.zeros(0, np.uint8)
        items.append(Packet(
            src=int(row[0]), dst=int(row[1]), port=int(row[2]),
            op=OpType.from_bits(opcount >> 5), count=count,
            payload=payload, dtype=dtype,
        ))
    return items


# ----------------------------------------------------------------------
# Record codec
# ----------------------------------------------------------------------
def pack_ship(key_id: int, ship) -> bytes:
    """One ShipBatch as a wire record (packed fast path or pickle)."""
    packed = _pack_items(ship.items)
    if packed is None:
        blob = pickle.dumps((tuple(ship.items), tuple(ship.cycles)),
                            protocol=pickle.HIGHEST_PROTOCOL)
        head = RECORD_HEADER.pack(KIND_SHIP_PICKLE, 0, 0, key_id,
                                  len(blob), ship.horizon, ship.slack)
        return head + blob
    rows, ids = packed
    head = RECORD_HEADER.pack(KIND_SHIP, 0, 0, key_id, len(ids),
                              ship.horizon, ship.slack)
    cycles = np.asarray(ship.cycles, dtype=np.int64)
    return b"".join((head, cycles.tobytes(), ids.tobytes(), rows.tobytes()))


def pack_ack(key_id: int, ack) -> bytes:
    """One AckBatch as a wire record."""
    head = RECORD_HEADER.pack(KIND_ACK, 0, 0, key_id,
                              len(ack.cycles), ack.floor, 0)
    return head + np.asarray(ack.cycles, dtype=np.int64).tobytes()


def unpack_record(record: bytes, keys_by_id) -> tuple[str, object]:
    """Decode one record; returns ``("ship"|"ack", batch)``."""
    from .proxy import AckBatch, ShipBatch

    kind, _flags, _pad, key_id, n, f0, f1 = RECORD_HEADER.unpack_from(record)
    key = keys_by_id[key_id]
    body = record[RECORD_HEADER.size:]
    if kind == KIND_ACK:
        cycles = tuple(
            int(c) for c in np.frombuffer(body, np.int64, count=n)
        )
        return "ack", AckBatch(key, cycles, f0)
    if kind == KIND_SHIP_PICKLE:
        items, cycles = pickle.loads(body[:n])
        return "ship", ShipBatch(key, tuple(items), tuple(cycles), f0, f1)
    if kind != KIND_SHIP:  # pragma: no cover - protocol guard
        raise SimulationError(f"unknown boundary record kind {kind}")
    cycles = tuple(int(c) for c in np.frombuffer(body, np.int64, count=n))
    ids = np.frombuffer(body, np.uint8, count=n, offset=8 * n)
    rows = np.frombuffer(
        body, np.uint8, count=n * PACKET_BYTES, offset=9 * n
    ).reshape(n, PACKET_BYTES)
    return "ship", ShipBatch(key, tuple(_unpack_items(rows, ids)),
                             cycles, f0, f1)


def _split(batch, max_bytes: int, packer, splitter, sizer) -> list:
    record = packer(batch)
    if len(record) <= max_bytes:
        return [(record, sizer(batch))]
    halves = splitter(batch)
    if halves is None:
        raise SimulationError(
            f"boundary record of {len(record)} B cannot fit a "
            f"{max_bytes} B ring even as a single item; raise "
            "HardwareConfig.shard_ring_bytes"
        )
    return (_split(halves[0], max_bytes, packer, splitter, sizer)
            + _split(halves[1], max_bytes, packer, splitter, sizer))


def pack_ship_records(key_id: int, ship,
                      max_bytes: int) -> list[tuple[bytes, int]]:
    """ShipBatch as ``(record, item count)`` pairs each fitting ``max_bytes``.

    Each segment's *horizon* only promises what that segment (plus its
    predecessors) actually carries: the first half advertises the second
    half's earliest cycle, and only the final segment advertises the
    batch horizon. A segment may sit in a full-ring backlog for several
    rounds — had it carried the batch horizon, the peer could advance
    past cycles whose items are still queued behind the ring. Slack is
    a credit self-sufficiency bound independent of the carried items,
    so every segment repeats it. The per-record item counts let a
    caller account shipped items at the moment a record actually
    reaches its ring.
    """
    from .proxy import ShipBatch

    def splitter(b):
        if len(b.items) < 2:
            return None
        mid = len(b.items) // 2
        return (ShipBatch(b.key, b.items[:mid], b.cycles[:mid],
                          min(b.horizon, b.cycles[mid]), b.slack),
                ShipBatch(b.key, b.items[mid:], b.cycles[mid:],
                          b.horizon, b.slack))

    return _split(ship, max_bytes, lambda b: pack_ship(key_id, b),
                  splitter, lambda b: len(b.items))


def pack_ack_records(key_id: int, ack,
                     max_bytes: int) -> list[tuple[bytes, int]]:
    """AckBatch as ``(record, cycle count)`` pairs each fitting ``max_bytes``.

    As with ships, a non-final segment's *floor* stops just short of the
    next segment's earliest cycle so a backlogged tail can never be
    outrun by the bound its own head published.
    """
    from .proxy import AckBatch

    def splitter(b):
        if len(b.cycles) < 2:
            return None
        mid = len(b.cycles) // 2
        return (AckBatch(b.key, b.cycles[:mid],
                         min(b.floor, b.cycles[mid] - 1)),
                AckBatch(b.key, b.cycles[mid:], b.floor))

    return _split(ack, max_bytes, lambda b: pack_ack(key_id, b),
                  splitter, lambda b: len(b.cycles))


# ----------------------------------------------------------------------
# Exchange blobs (pipe transport payload)
# ----------------------------------------------------------------------
def encode_exchange(ships: dict, acks: dict, key_ids: dict) -> bytes:
    """All of one exchange's batches as one length-prefixed record blob."""
    parts = []
    for key in sorted(ships):
        parts.append(pack_ship(key_ids[key], ships[key]))
    for key in sorted(acks):
        parts.append(pack_ack(key_ids[key], acks[key]))
    return b"".join(
        len(p).to_bytes(4, "little") + p for p in parts
    )


def decode_exchange(blob: bytes, keys_by_id) -> tuple[dict, dict]:
    """Inverse of :func:`encode_exchange`; returns (ships, acks)."""
    ships: dict = {}
    acks: dict = {}
    offset = 0
    total = len(blob)
    while offset < total:
        n = int.from_bytes(blob[offset : offset + 4], "little")
        offset += 4
        kind, batch = unpack_record(blob[offset : offset + n], keys_by_id)
        offset += n
        (ships if kind == "ship" else acks)[batch.key] = batch
    return ships, acks


# ----------------------------------------------------------------------
# Shared-memory rings
# ----------------------------------------------------------------------
class ShmRing:
    """SPSC ring of length-prefixed byte records over a shared buffer.

    ``head``/``tail`` are monotone byte counters (they never wrap; the
    data index is ``counter % capacity``), stored as two ``int64`` at
    the start of the slot. Exactly one process pushes and exactly one
    pops; the GIL plus x86-TSO store ordering make the head publish a
    sufficient barrier for that pairing.
    """

    CTRL_BYTES = 16

    def __init__(self, buf, offset: int, capacity: int) -> None:
        self._ctrl = np.frombuffer(buf, dtype=np.int64, count=2,
                                   offset=offset)
        self._data = np.frombuffer(buf, dtype=np.uint8, count=capacity,
                                   offset=offset + self.CTRL_BYTES)
        self.capacity = capacity

    @property
    def record_capacity(self) -> int:
        """Largest record ``try_push`` can ever accept."""
        return self.capacity - 4

    def try_push(self, record: bytes) -> bool:
        """Append one record; False (and no write) when it does not fit."""
        need = 4 + len(record)
        head = int(self._ctrl[0])
        if self.capacity - (head - int(self._ctrl[1])) < need:
            return False
        self._write(head, len(record).to_bytes(4, "little"))
        self._write(head + 4, record)
        self._ctrl[0] = head + need  # publish after the body is visible
        return True

    def try_pop(self) -> bytes | None:
        """Remove and return the oldest record, or None when empty."""
        tail = int(self._ctrl[1])
        if int(self._ctrl[0]) == tail:
            return None
        n = int.from_bytes(self._read(tail, 4), "little")
        record = self._read(tail + 4, n)
        self._ctrl[1] = tail + 4 + n
        return record

    def _write(self, pos: int, data: bytes) -> None:
        start = pos % self.capacity
        end = start + len(data)
        arr = np.frombuffer(data, np.uint8)
        if end <= self.capacity:
            self._data[start:end] = arr
        else:
            cut = self.capacity - start
            self._data[start:] = arr[:cut]
            self._data[: end - self.capacity] = arr[cut:]

    def _read(self, pos: int, n: int) -> bytes:
        start = pos % self.capacity
        end = start + n
        if end <= self.capacity:
            return self._data[start:end].tobytes()
        return (self._data[start:].tobytes()
                + self._data[: end - self.capacity].tobytes())

    def release(self) -> None:
        """Drop the buffer views (required before the mapping closes)."""
        self._ctrl = None
        self._data = None


class ShmFabric:
    """One shared-memory block holding a ship+ack ring per channel key.

    Created by the coordinator *before* forking — workers inherit the
    mapping — and unlinked immediately, so the name cannot leak even if
    every process crashes. ``close`` releases the coordinator's views
    and mapping; forked workers exit via ``os._exit`` and never need to.
    """

    def __init__(self, keys, ring_bytes: int) -> None:
        from multiprocessing import shared_memory

        self.keys_by_id = sorted(keys)
        self.key_ids = {key: i for i, key in enumerate(self.keys_by_id)}
        self.ring_bytes = ring_bytes
        slot = ShmRing.CTRL_BYTES + ring_bytes
        size = max(1, 2 * slot * len(self.keys_by_id))
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._shm.buf[:size] = bytes(size)
        self.ship_rings: dict = {}
        self.ack_rings: dict = {}
        for i, key in enumerate(self.keys_by_id):
            self.ship_rings[key] = ShmRing(self._shm.buf, 2 * i * slot,
                                           ring_bytes)
            self.ack_rings[key] = ShmRing(self._shm.buf,
                                          (2 * i + 1) * slot, ring_bytes)
        self._shm.unlink()

    def close(self) -> None:
        for ring in (*self.ship_rings.values(), *self.ack_rings.values()):
            ring.release()
        self._shm.close()
