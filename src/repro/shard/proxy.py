"""Boundary-link proxies: a cut link's two halves, one per shard.

A directed link whose transmitting rank and receiving rank live in
different shards is materialised twice — once per shard — and the two
halves are kept coherent purely through the *SupplySchedule contract*
the burst planner already speaks:

* The **transmitting half** (:class:`BoundaryTx`) is the ordinary link
  the local CKS stages into. Every stage is logged with its exact
  visibility cycle and shipped to the peer shard at the next exchange;
  *acks* (the remote consumer's take cycles) are applied with
  :meth:`~repro.simulation.fifo.Fifo.take_burst`, which reproduces the
  per-flit slot-release trajectory — reserved slots, producer wakes at
  ``take + 1``, the planner's ``slot_plan`` release schedule — exactly
  as if the remote CKR were local.

* The **receiving half** (:class:`BoundaryRx`) is a closed-producer FIFO
  with no local writer. Shipped stages are injected future-dated
  (:meth:`~repro.simulation.fifo.Fifo.inject_staged`) — committed supply
  the local planner consumes like any other ``present_schedule`` — and
  the link's *horizon* is pinned
  (:meth:`~repro.simulation.fifo.Fifo.pin_horizon`) to the remote
  producer's published sleep floor plus the wire latency. The planning
  cascade naturally stops here: the proxy is just another supply
  schedule, with no consumer/producer CK wired behind it.

Each half also publishes a *floor* for the unknown future at every
exchange, computed from the same producer-sleep machinery the planner
uses (:meth:`Engine.process_floor` /
:meth:`Fifo.supply_horizon` / :meth:`Fifo.earliest_readable`), clamped
to the epoch bound: no unshipped stage can be visible before
:attr:`ShipBatch.horizon`, and no unreported take can happen before
:attr:`AckBatch.floor`. Those floors are exactly what
:mod:`repro.shard.timesync` turns into the next epoch's bounds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ShipBatch:
    """One exchange's worth of committed supply on a boundary link.

    ``items[i]`` becomes visible at the far end at ``cycles[i]``
    (absolute, non-decreasing). ``horizon`` bounds everything *not* in
    the batch: no future stage of the transmitting CKS can be visible
    before it.
    """

    key: tuple[int, int]
    items: tuple
    cycles: tuple
    horizon: int
    #: Producer-side self-sufficiency horizon (see
    #: :func:`tx_self_sufficiency`): the transmitting shard needs no ack
    #: information below this cycle.
    slack: int = 0

    def pack(self, key_id: int) -> bytes:
        """Encode as one packed wire record (see :mod:`repro.shard.wire`).

        Items that are plain :class:`~repro.network.packet.Packet`
        objects with registered scalar datatypes take the contiguous
        ndarray fast path; anything else falls back to pickle inside the
        same record framing.
        """
        from .wire import pack_ship

        return pack_ship(key_id, self)

    @staticmethod
    def unpack(record: bytes, keys_by_id) -> "ShipBatch":
        """Decode one record produced by :meth:`pack`."""
        from .wire import unpack_record

        kind, batch = unpack_record(record, keys_by_id)
        if kind != "ship":
            raise TypeError(f"record holds an {kind} batch, not a ship")
        return batch


@dataclass
class AckBatch:
    """One exchange's worth of consumer takes on a boundary link.

    ``cycles`` are the absolute take cycles of the oldest
    still-unacked items (FIFO order, non-decreasing). ``floor`` bounds
    the unreported future: no further take can happen before it, so the
    transmitting shard may safely simulate up to ``floor + 1`` without
    missing a slot-release wake.
    """

    key: tuple[int, int]
    cycles: tuple
    floor: int

    def pack(self, key_id: int) -> bytes:
        """Encode as one packed wire record (see :mod:`repro.shard.wire`)."""
        from .wire import pack_ack

        return pack_ack(key_id, self)

    @staticmethod
    def unpack(record: bytes, keys_by_id) -> "AckBatch":
        """Decode one record produced by :meth:`pack`."""
        from .wire import unpack_record

        kind, batch = unpack_record(record, keys_by_id)
        if kind != "ack":
            raise TypeError(f"record holds a {kind} batch, not an ack")
        return batch


def tx_self_sufficiency(link, bound: int) -> int:
    """Earliest cycle an *unknown* remote take could affect the producer.

    Unacked takes only reach the producer through the link's slot state.
    With ``free`` slots provably free and ``rels`` further releases
    already known, the producer's next ``budget = free + len(rels)``
    stages are fully provable. Stages onto a link are line-paced (at
    least ``pace`` cycles apart, the first no earlier than the line's
    ``_next_free`` and the epoch bound), and a blocked stage *attempt*
    follows the previous stage by at least one cycle — so the first
    event that could depend on an unknown release (the attempt of stage
    ``budget + 1``) happens no earlier than::

        max(line _next_free, bound) + (budget - 1) * pace + 1

    The producer shard may run to that cycle on slot-budget grounds
    alone — the deep-buffer analogue of link-latency lookahead for the
    *reverse* (backpressure) direction.

    The budget is computed without touching the FIFO: every slot not
    physically occupied by an item is either free now or has a known
    (reserved) release, so ``capacity - present_count`` *is*
    ``free + len(releases)`` — calling ``slot_plan(bound)`` here would
    trim reservations whose release the local clock has not reached,
    corrupting the occupancy the next epoch's producers observe.
    """
    fifo = link.fifo
    budget = fifo.capacity - fifo.present_count
    if budget == 0:
        return bound
    start = link._next_free
    if bound > start:
        start = bound
    return start + (budget - 1) * link.cycles_per_packet + 1


class BoundaryTx:
    """Producer-side proxy endpoint of one directed cut link."""

    __slots__ = ("key", "link", "fifo")

    def __init__(self, key: tuple[int, int], link) -> None:
        self.key = key
        self.link = link
        self.fifo = link.fifo
        self.fifo.record_boundary_stages()

    def apply(self, ack: AckBatch) -> None:
        """Apply the remote consumer's takes to the local link FIFO."""
        if ack.cycles:
            self.fifo.apply_remote_takes(list(ack.cycles))

    def collect(self, engine, bound: int, memo: dict) -> ShipBatch:
        """Drain newly committed stages and publish the supply horizon.

        ``bound`` is the epoch's exclusive end: no local event below it
        remains, so no unshipped stage can land earlier — the published
        horizon is at least ``bound + latency``, and deeper whenever the
        producer-sleep machinery proves the CKS parked beyond the bound
        (a planner-committed window, a firm sleep).
        """
        fifo = self.fifo
        log = fifo.drain_stage_log()
        horizon = fifo.supply_horizon(memo)
        floor = bound + fifo.latency
        if horizon < floor:
            horizon = floor
        if log:
            items, cycles = zip(*log)
        else:
            items = cycles = ()
        return ShipBatch(self.key, items, cycles, horizon,
                         tx_self_sufficiency(self.link, bound))


class BoundaryRx:
    """Consumer-side proxy endpoint of one directed cut link."""

    __slots__ = ("key", "link", "fifo", "consumer_proc")

    def __init__(self, key: tuple[int, int], link, consumer_proc) -> None:
        self.key = key
        self.link = link
        self.fifo = link.fifo
        self.consumer_proc = consumer_proc
        self.fifo.record_boundary_takes()
        # Before the first exchange, nothing staged remotely at cycle 0
        # can be visible before the wire latency.
        self.fifo.pin_horizon(self.fifo.latency)

    def apply(self, ship: ShipBatch) -> None:
        """Inject shipped supply and advance the pinned horizon."""
        if ship.items:
            self.fifo.inject_staged(list(ship.items), list(ship.cycles))
        self.fifo.pin_horizon(ship.horizon)

    def collect(self, engine, bound: int, memo: dict) -> AckBatch:
        """Drain newly executed takes and publish the take floor.

        A future (unreported) take needs the consuming CKR runnable
        *and* an item visible, so the floor is the max of the epoch
        bound, the CKR's process floor, and the FIFO's earliest
        readability — each a lower bound the planner machinery already
        maintains.
        """
        fifo = self.fifo
        cycles = tuple(fifo.drain_take_log())
        floor = fifo.earliest_readable(memo)
        if floor < bound:
            floor = bound
        proc = self.consumer_proc
        if proc is not None:
            pf = engine.process_floor(proc, memo)
            if pf > floor:
                floor = pf
        return AckBatch(self.key, cycles, floor)
