"""Fabric partitioning for the sharded simulation backend.

Cuts a :class:`~repro.network.topology.Topology` into ``k`` shards of
ranks. Every connection whose endpoints land in different shards becomes
a *cut edge*; at simulation time each direction of a cut edge turns into
a boundary link whose two halves live in different shards and exchange
committed supply schedules (see :mod:`repro.shard.proxy`). The quality
of a partition is therefore the classic min-cut-under-balance objective:
fewer cut cables means fewer boundary schedules to ship per epoch, and
balanced shard sizes mean balanced per-epoch work.

The default partitioner is deterministic (no RNG): ranks are laid out in
BFS order from rank 0 (which keeps meshes, tori and buses contiguous),
split into ``k`` balanced blocks, and refined by greedy single-rank
moves that strictly reduce the cut weight while keeping every shard
within one rank of perfect balance. Callers may override the result
wholesale (``rank_lists``) or per rank (``overrides``).

Every cut edge must be a *latency-carrying* link: the link's wire delay
is the conservative lookahead the epoch synchroniser
(:mod:`repro.shard.timesync`) turns into free parallelism, and a
zero-latency cut would force one-cycle epochs. The simulator's
:class:`~repro.network.link.Link` clamps its FIFO latency to >= 1, so
every topology connection qualifies; :func:`validate_cut` pins that
contract against the active hardware config.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..core.errors import ConfigurationError, TopologyError
from ..network.topology import Connection, Topology


@dataclass(frozen=True)
class Partition:
    """A k-way split of a topology's ranks.

    ``shards[i]`` is the ascending tuple of ranks owned by shard ``i``;
    ``cut`` lists every connection crossing shard boundaries (the cables
    whose directed links become boundary proxies).
    """

    shards: tuple[tuple[int, ...], ...]
    cut: tuple[Connection, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self) -> dict[int, int]:
        """Rank -> shard index map."""
        return {
            rank: i for i, ranks in enumerate(self.shards) for rank in ranks
        }


def _bfs_order(topology: Topology) -> list[int]:
    """Deterministic BFS rank order (ties by rank id; components joined)."""
    order: list[int] = []
    seen: set[int] = set()
    for root in range(topology.num_ranks):
        if root in seen:
            continue
        seen.add(root)
        queue = deque([root])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in sorted(topology.neighbors_of(u)):
                if v not in seen:
                    seen.add(v)
                    queue.append(v)
    return order


def _edge_weights(topology: Topology) -> dict[tuple[int, int], int]:
    """Cables per rank pair (parallel connections weigh individually)."""
    weights: dict[tuple[int, int], int] = {}
    for conn in topology.connections:
        a, b = conn.a[0], conn.b[0]
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0) + 1
    return weights


def _cut_connections(topology: Topology,
                     shard_of: dict[int, int]) -> tuple[Connection, ...]:
    return tuple(
        conn for conn in topology.connections
        if shard_of[conn.a[0]] != shard_of[conn.b[0]]
    )


def _refine(topology: Topology, shard_of: dict[int, int], k: int,
            pinned: frozenset[int], max_passes: int = 8) -> None:
    """Greedy moves and swaps that strictly reduce the cut weight.

    Two admissible step kinds, both strict-improvement-only so the loop
    terminates (the cut weight is a strictly decreasing non-negative
    integer) and fully deterministic (ranks ascending, targets
    ascending):

    * a *single-rank move*, admissible when both shard sizes stay
      within the floor/ceil balance band — only possible at all when
      ``num_ranks % k != 0`` leaves slack in the band;
    * a *balanced pair swap* of two ranks in different shards — the
      Kernighan–Lin-style step that is the only admissible improvement
      at exact balance (where every single move would leave the band).
    """
    n = topology.num_ranks
    lo, hi = n // k, -(-n // k)  # floor / ceil balance band
    weights = _edge_weights(topology)
    sizes = [0] * k
    for shard in shard_of.values():
        sizes[shard] += 1
    # Per-rank weighted adjacency (rank -> [(peer, weight)]).
    adj: dict[int, list[tuple[int, int]]] = {r: [] for r in range(n)}
    for (a, b), w in sorted(weights.items()):
        adj[a].append((b, w))
        adj[b].append((a, w))

    def swap_delta(a: int, b: int) -> int:
        """Cut-weight change if ranks ``a`` and ``b`` trade shards."""
        sa, sb = shard_of[a], shard_of[b]
        delta = 0
        for peer, w in adj[a]:
            other = sa if peer == b else shard_of[peer]
            delta += w * ((sb != other) - (sa != shard_of[peer]))
        for peer, w in adj[b]:
            if peer == a:
                continue  # the a-b edge crosses before and after alike
            delta += w * ((sa != shard_of[peer]) - (sb != shard_of[peer]))
        return delta

    for _ in range(max_passes):
        improved = False
        for rank in range(n):
            if rank in pinned:
                continue
            cur = shard_of[rank]
            if sizes[cur] <= lo:
                continue  # moving out would unbalance below the floor
            gain_here = sum(w for peer, w in adj[rank]
                            if shard_of[peer] != cur)
            best = None
            for target in range(k):
                if target == cur or sizes[target] >= hi:
                    continue
                gain_there = sum(w for peer, w in adj[rank]
                                 if shard_of[peer] != target)
                if gain_there < gain_here and (
                        best is None or gain_there < best[1]):
                    best = (target, gain_there)
            if best is not None:
                sizes[cur] -= 1
                sizes[best[0]] += 1
                shard_of[rank] = best[0]
                improved = True
        for a in range(n):
            if a in pinned:
                continue
            for b in range(a + 1, n):
                if b in pinned or shard_of[a] == shard_of[b]:
                    continue
                if swap_delta(a, b) < 0:
                    shard_of[a], shard_of[b] = shard_of[b], shard_of[a]
                    improved = True
        if not improved:
            break


def partition_topology(
    topology: Topology,
    k: int,
    rank_lists: list[list[int]] | None = None,
    overrides: dict[int, int] | None = None,
) -> Partition:
    """Cut ``topology`` into ``k`` shards.

    Parameters
    ----------
    rank_lists:
        Explicit shard membership (one rank list per shard). Must cover
        every rank exactly once; skips the automatic partitioner
        entirely (``overrides`` still applies on top).
    overrides:
        Per-rank pins (``rank -> shard index``) applied after the base
        assignment; pinned ranks are excluded from refinement.
    """
    n = topology.num_ranks
    if not 1 <= k <= n:
        raise TopologyError(
            f"cannot cut {n} rank(s) into {k} shard(s): need 1 <= k <= "
            f"num_ranks"
        )
    if rank_lists is not None:
        if len(rank_lists) != k:
            raise TopologyError(
                f"rank_lists has {len(rank_lists)} shard(s), expected {k}"
            )
        shard_of: dict[int, int] = {}
        for i, ranks in enumerate(rank_lists):
            if not ranks:
                raise TopologyError(f"shard {i} is empty")
            for rank in ranks:
                if not 0 <= rank < n:
                    raise TopologyError(
                        f"shard {i}: rank {rank} out of range [0, {n})"
                    )
                if rank in shard_of:
                    raise TopologyError(
                        f"rank {rank} assigned to shards "
                        f"{shard_of[rank]} and {i}"
                    )
                shard_of[rank] = i
        if len(shard_of) != n:
            missing = sorted(set(range(n)) - set(shard_of))
            raise TopologyError(f"ranks not assigned to any shard: {missing}")
        pinned = frozenset(range(n))
    else:
        order = _bfs_order(topology)
        shard_of = {}
        i = 0
        for shard in range(k):
            size = n // k + (1 if shard < n % k else 0)
            for rank in order[i:i + size]:
                shard_of[rank] = shard
            i += size
        pinned = frozenset()
    if overrides:
        for rank, shard in overrides.items():
            if not 0 <= rank < n:
                raise TopologyError(f"override rank {rank} out of range")
            if not 0 <= shard < k:
                raise TopologyError(
                    f"override shard {shard} out of range [0, {k})"
                )
            shard_of[rank] = shard
        pinned = pinned | frozenset(overrides)
    if rank_lists is None and k > 1:
        _refine(topology, shard_of, k, pinned)
    shards = tuple(
        tuple(sorted(r for r, s in shard_of.items() if s == i))
        for i in range(k)
    )
    for i, ranks in enumerate(shards):
        if not ranks:
            raise TopologyError(
                f"partition left shard {i} empty (overrides too "
                "aggressive for this topology?)"
            )
    return Partition(shards=shards,
                     cut=_cut_connections(topology, shard_of))


def validate_cut(partition: Partition, topology: Topology, config) -> None:
    """Pin the cut contract: every cut edge is a physical connection.

    The conservative epoch protocol's lookahead is the cut links' wire
    latency. The latency >= 1 half of the contract is enforced where it
    is real: :class:`~repro.simulation.fifo.Fifo` refuses construction
    with latency < 1 and :class:`~repro.network.link.Link` clamps the
    configured ``link_latency_cycles`` into that range, so any future
    zero-latency link model fails at build time, before a shard plane
    exists. What remains checkable here — and is, loudly — is that the
    partition's cut edges are actual cables of the topology (``config``
    is kept in the signature so call sites state which platform model
    the cut was validated against).
    """
    del config  # latency >= 1 is enforced at Fifo/Link construction
    conns = {conn.normalized() for conn in topology.connections}
    for conn in partition.cut:
        if conn.normalized() not in conns:
            raise ConfigurationError(
                f"cut edge {conn} is not a connection of topology "
                f"{topology.name!r}"
            )
