"""Sharded parallel simulation backend.

Partitions the SMI fabric into shards (:mod:`.partitioner`), runs each
shard on its own engine behind boundary-link proxies (:mod:`.proxy`),
and advances them in conservative epochs synchronised on SupplySchedule
horizons (:mod:`.timesync`). Backend selection and result merging live
in :mod:`.backend`; ``HardwareConfig.backend`` chooses between the
sequential reference, the in-process sharded plane, and forked worker
processes. See ``docs/ARCHITECTURE.md`` ("Sharded execution & time
sync") for the epoch protocol and the cycle-exactness argument.
"""

from .backend import run_sharded
from .partitioner import Partition, partition_topology, validate_cut
from .proxy import AckBatch, BoundaryRx, BoundaryTx, ShipBatch
from .timesync import BoundaryChannel, EpochSynchronizer, SyncResult

__all__ = [
    "AckBatch",
    "BoundaryChannel",
    "BoundaryRx",
    "BoundaryTx",
    "EpochSynchronizer",
    "Partition",
    "ShipBatch",
    "SyncResult",
    "partition_topology",
    "run_sharded",
    "validate_cut",
]
