"""Conservative epoch synchronisation over SupplySchedule horizons.

Classic conservative parallel discrete-event simulation needs
*lookahead*: a guarantee that a neighbour cannot affect you before some
future time. The SMI reproduction gets it for free — the SupplySchedule
contract built for the burst planner already publishes, per boundary
link, committed ``(cycle, item)`` supply plus a *horizon* bounding the
unknown future, and the link latency makes that horizon deep. The
synchroniser simply runs each shard's engine up to the minimum of what
its neighbours have promised, exchanges the newly committed boundary
schedules, and repeats.

Per epoch, shard ``i`` may run every event strictly below::

    bound_i = min( min over incoming cut links  of horizon(link),
                   min over outgoing cut links  of ack_floor(link) + 1 )

* ``horizon(link)`` — no unshipped remote stage can be *visible* locally
  before it (forward supply dependency);
* ``ack_floor(link) + 1`` — no unreported remote take can free a slot
  (and wake a blocked local producer, at ``take + 1``) before it
  (reverse backpressure dependency — the model's slot release is
  instantaneous, so this is the binding constraint when a link fills).

Every published floor is itself at least the publishing shard's bound,
so the global minimum bound strictly increases every round: the
protocol needs no null messages and cannot livelock. True deadlocks
(cyclic send/receive dependencies, §3.3) are detected exactly: a round
in which every engine is idle, nothing was executed, and nothing was
shipped or delivered can never make progress, and raises
:class:`~repro.core.errors.DeadlockError` with every shard's blocked
processes — the same diagnosis a sequential run produces.

Once the last worker anywhere finishes, the global end cycle ``C`` is
fixed (daemons cannot extend it). A sequential run executes everything
scheduled up to and including cycle ``C``; the drain phase reproduces
that by driving every shard to bound ``C + 1`` and flushing boundary
traffic until the whole fabric is quiescent, which is what makes the
merged per-FIFO statistics exactly equal to a sequential run's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import DeadlockError
from ..simulation.engine import FOREVER
from .proxy import AckBatch, ShipBatch


@dataclass
class BoundaryChannel:
    """Coordinator-side state of one directed cut link.

    ``horizon`` / ``ack_floor`` hold the latest published floors (both
    monotone — an older floor bounded a superset of the still-unknown
    events, so ``max`` merging is always sound).
    """

    key: tuple[int, int]
    src_shard: int
    dst_shard: int
    latency: int
    horizon: int = 0
    ack_floor: int = 0
    #: Latest producer-side self-sufficiency horizon (not monotone — it
    #: reflects the current slot budget; each publication supersedes).
    slack: int = 0

    def __post_init__(self) -> None:
        # Before any exchange: nothing staged at cycle 0 is visible
        # before the wire latency, and nothing invisible can be taken.
        if self.horizon <= 0:
            self.horizon = self.latency
        if self.ack_floor <= 0:
            self.ack_floor = self.latency


@dataclass
class EpochReport:
    """One shard's answer to one epoch command."""

    reason: str                       # "bound" | "idle"
    executed: int                     # process steps + commits run
    ships: dict = field(default_factory=dict)   # key -> ShipBatch
    acks: dict = field(default_factory=dict)    # key -> AckBatch
    live_workers: int = 0
    last_worker_finish: int = 0
    #: Max over live local workers of their process floor — a proven
    #: lower bound on the global end cycle, ratcheted into the stats
    #: watermark every shard's FIFO folds respect.
    worker_floor: int = 0
    #: Boundary items the shard itself pushed/applied this round, for
    #: self-exchanging (shared-memory) handles whose batches never
    #: reach the coordinator; -1 means "coordinator counts from the
    #: batch dicts" (local and pipe handles).
    shipped: int = -1
    delivered: int = -1
    #: Deepest conservative bound the shard ran to this round (used by
    #: the ``max_cycles`` check when the coordinator no longer computes
    #: bounds itself).
    bound_reached: int = 0


@dataclass
class SyncResult:
    reason: str                       # "completed" | "max_cycles"
    cycles: int
    rounds: int
    epochs_executed: int


def compute_bounds(channels: list[BoundaryChannel], num_shards: int,
                   cap: int | None) -> list[int]:
    """Per-shard conservative epoch bounds from the current floors."""
    bounds = [FOREVER if cap is None else cap] * num_shards
    for ch in channels:
        if ch.horizon < bounds[ch.dst_shard]:
            bounds[ch.dst_shard] = ch.horizon
        # Reverse (backpressure) dependency: an unknown remote take can
        # matter no earlier than the published take floor's wake — and
        # no earlier than the producer exhausting its provable slot
        # budget at line rate (the slack), whichever is later.
        rev = ch.ack_floor + 1
        if ch.slack > rev:
            rev = ch.slack
        if rev < bounds[ch.src_shard]:
            bounds[ch.src_shard] = rev
    if cap is not None:
        bounds = [b if b < cap else cap for b in bounds]
    return bounds


class EpochSynchronizer:
    """Drives a set of shard handles to global quiescence.

    A *handle* hides where the shard actually runs (in-process object or
    forked worker); it must provide::

        begin_epoch(bound, ships, acks, watermark)  # dispatch one epoch
        finish_epoch() -> EpochReport    # collect its report
        dump_blocked() -> list[str]      # deadlock diagnostics

    and two capability flags that select the round discipline:

    * ``synchronous`` — ``begin_epoch`` runs the epoch to completion
      before returning (the in-process :class:`LocalHandle`). Such
      rounds fold *eagerly* (Gauss–Seidel): each shard's bound is
      recomputed from the floors its predecessors published moments
      ago, and their batches are delivered in the same round — fresher
      information, deeper epochs, identical cycle trajectories (floors
      are sound whenever published; ``max``-merging keeps them
      monotone).
    * ``self_exchanging`` — the handle moves boundary batches itself
      (shared-memory rings) and self-paces *mid-epoch*: within one
      coordinator round a worker repeatedly drains its rings,
      recomputes its own conservative bound from the freshest floors,
      runs, and publishes — floors post as soon as they are proven,
      not at the round barrier, pushing effective lookahead past the
      ~L/2 a half-duplex epoch exchange yields. The coordinator then
      only supplies the barrier: termination, deadlock and
      ``max_cycles`` detection from the per-round reports (which carry
      ``shipped``/``delivered``/``bound_reached`` instead of batches).

    For plain asynchronous handles (pipe transport), ``begin_epoch`` on
    every handle before any ``finish_epoch`` is what overlaps the
    epochs of all shards.
    """

    def __init__(self, handles, channels: list[BoundaryChannel]) -> None:
        self.handles = handles
        self.channels = channels
        self._by_key = {ch.key: ch for ch in channels}
        # Batches collected this round, delivered at the next round.
        self._pending_ships: list[dict] = [dict() for _ in handles]
        self._pending_acks: list[dict] = [dict() for _ in handles]
        # Proven lower bound on the global end cycle (monotone): FIFO
        # folds never cross it, keeping end-of-run stats exactly
        # reconstructible at the true end.
        self.watermark = 0
        self.rounds = 0
        self.epochs_executed = 0
        self.streaming = bool(handles) and all(
            getattr(h, "self_exchanging", False) for h in handles
        )
        self.eager = not self.streaming and all(
            getattr(h, "synchronous", False) for h in handles
        )

    # ------------------------------------------------------------------
    def _deliver(self, i: int, handle, bound: int) -> int:
        """Hand shard ``i`` its pending batches; returns items delivered."""
        ships = self._pending_ships[i]
        acks = self._pending_acks[i]
        delivered = sum(len(s.items) for s in ships.values())
        delivered += sum(len(a.cycles) for a in acks.values())
        self._pending_ships[i] = {}
        self._pending_acks[i] = {}
        handle.begin_epoch(bound, ships, acks, self.watermark)
        return delivered

    def _fold(self, report: EpochReport) -> int:
        """Merge one report's floors/batches; returns items shipped."""
        mark = max(report.last_worker_finish, report.worker_floor)
        if mark > self.watermark:
            self.watermark = mark
        shipped = 0
        for key, ship in report.ships.items():
            ch = self._by_key[key]
            if ship.horizon > ch.horizon:
                ch.horizon = ship.horizon
            ch.slack = ship.slack  # latest state supersedes
            shipped += len(ship.items)
            self._pending_ships[ch.dst_shard][key] = ship
        for key, ack in report.acks.items():
            ch = self._by_key[key]
            if ack.floor > ch.ack_floor:
                ch.ack_floor = ack.floor
            shipped += len(ack.cycles)
            self._pending_acks[ch.src_shard][key] = ack
        return shipped

    def _eager_bound(self, i: int, ceiling: int) -> int:
        """Shard ``i``'s bound from the floors as they stand *right now*."""
        bound = ceiling
        for ch in self.channels:
            if ch.dst_shard == i and ch.horizon < bound:
                bound = ch.horizon
            if ch.src_shard == i:
                rev = ch.ack_floor + 1
                if ch.slack > rev:
                    rev = ch.slack
                if rev < bound:
                    bound = rev
        return bound

    def _round(self, bounds: list[int],
               ceiling: int | None = None) -> tuple[list[EpochReport], int, bool]:
        """One round: deliver, run all shards, collect.

        With synchronous handles and a ``ceiling`` (main rounds), each
        shard's bound is recomputed just before it runs, folding in the
        floors earlier shards published within this very round.
        """
        handles = self.handles
        delivered = 0
        shipped = 0
        if self.eager and ceiling is not None:
            reports = []
            for i, handle in enumerate(handles):
                delivered += self._deliver(i, handle,
                                           self._eager_bound(i, ceiling))
                report = handle.finish_epoch()
                shipped += self._fold(report)
                reports.append(report)
        else:
            for i, handle in enumerate(handles):
                delivered += self._deliver(i, handle, bounds[i])
            reports = [handle.finish_epoch() for handle in handles]
            for report in reports:
                shipped += self._fold(report)
        self.rounds += 1
        self.epochs_executed += sum(r.executed for r in reports)
        return reports, shipped, delivered > 0

    def _stream_round(self, cap: int | None,
                      drain_end: int | None = None
                      ) -> tuple[list[EpochReport], int, int]:
        """One barrier round over self-exchanging handles."""
        handles = self.handles
        for handle in handles:
            if drain_end is None:
                handle.begin_stream(cap, self.watermark)
            else:
                handle.begin_drain(drain_end, self.watermark)
        reports = [handle.finish_epoch() for handle in handles]
        shipped = 0
        delivered = 0
        for report in reports:
            mark = max(report.last_worker_finish, report.worker_floor)
            if mark > self.watermark:
                self.watermark = mark
            if report.shipped > 0:
                shipped += report.shipped
            if report.delivered > 0:
                delivered += report.delivered
        self.rounds += 1
        self.epochs_executed += sum(r.executed for r in reports)
        return reports, shipped, delivered

    def _deadlock(self) -> DeadlockError:
        blocked: list[str] = []
        for i, handle in enumerate(self.handles):
            blocked.extend(handle.dump_blocked())
        detail = "\n".join(blocked) if blocked else "  (no blocked processes?)"
        return DeadlockError(
            "sharded simulation deadlocked: every shard is idle with no "
            "boundary traffic in flight.\nBlocked processes:\n"
            f"{detail}\n"
            "Hint: SMI sends are non-local (§3.3) — check for cyclic "
            "send/receive dependencies or undersized channel buffers."
        )

    def run(self, max_cycles: int | None = None) -> SyncResult:
        """Run epochs until every worker finishes (or the cap is hit)."""
        num = len(self.handles)
        cap = None if max_cycles is None else max_cycles + 1
        if self.streaming:
            return self._run_streaming(max_cycles, cap)
        ceiling = FOREVER if cap is None else cap
        while True:
            bounds = compute_bounds(self.channels, num, cap)
            reports, shipped, delivered = self._round(bounds, ceiling)
            if all(r.live_workers == 0 for r in reports):
                end = max(r.last_worker_finish for r in reports)
                self._drain(end)
                return SyncResult("completed", end, self.rounds,
                                  self.epochs_executed)
            if shipped or delivered or any(r.executed for r in reports):
                continue
            if all(r.reason == "idle" for r in reports):
                raise self._deadlock()
            if cap is not None and all(b >= cap for b in bounds):
                return SyncResult("max_cycles", max_cycles, self.rounds,
                                  self.epochs_executed)
            # Events exist beyond every bound; the floors ratchet the
            # global minimum bound up each round, so progress follows.

    def _run_streaming(self, max_cycles: int | None,
                       cap: int | None) -> SyncResult:
        """Barrier loop over self-exchanging (shared-memory) handles.

        Workers exchange batches and floors among themselves mid-round;
        each barrier only aggregates progress counters to decide
        completion, deadlock, or cap exhaustion — the same decisions,
        from the same evidence, as the batch-folding loop above.
        """
        while True:
            reports, shipped, delivered = self._stream_round(cap)
            if all(r.live_workers == 0 for r in reports):
                end = max(r.last_worker_finish for r in reports)
                self._drain(end)
                return SyncResult("completed", end, self.rounds,
                                  self.epochs_executed)
            if shipped or delivered or any(r.executed for r in reports):
                continue
            if all(r.reason == "idle" for r in reports):
                raise self._deadlock()
            if cap is not None and all(r.bound_reached >= cap
                                       for r in reports):
                return SyncResult("max_cycles", max_cycles, self.rounds,
                                  self.epochs_executed)

    def _drain(self, end: int) -> None:
        """Drive every shard through cycle ``end`` and flush boundaries.

        A sequential run executes the whole of its final cycle (the
        engine finishes the cycle's scheduled batch before observing
        that the last worker is done), so each shard must execute every
        event at cycles ``<= end``; trailing boundary batches are then
        exchanged until nothing moves, which completes both halves of
        every boundary FIFO's statistics.
        """
        if end > self.watermark:
            self.watermark = end  # the global end is now exactly known
        bounds = [end + 1] * len(self.handles)
        while True:
            if self.streaming:
                reports, shipped, delivered = self._stream_round(
                    None, drain_end=end)
            else:
                reports, shipped, delivered = self._round(bounds)
            if not shipped and not delivered \
                    and not any(r.executed for r in reports):
                return
