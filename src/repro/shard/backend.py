"""Execution backends: sequential reference, in-process shards, workers.

Three ways to execute an :class:`~repro.core.program.SMIProgram`,
selected by ``HardwareConfig.backend``:

* **sequential** — the reference: one
  :class:`~repro.simulation.engine.Engine` simulates the whole fabric
  (this is the path inside ``SMIProgram.run`` itself; this module never
  sees it).
* **sharded** — the fabric is partitioned
  (:mod:`repro.shard.partitioner`), each shard gets its own engine and
  its own transport plane with boundary proxies at the cut
  (:mod:`repro.shard.proxy`), and the epoch synchroniser
  (:mod:`repro.shard.timesync`) advances them in conservative rounds —
  all inside the current process. No parallelism; this backend exists as
  the deterministic cycle-exactness reference for the epoch protocol
  and is what the equivalence/fuzz suites sweep.
* **process** — the same shards and the same protocol, but each shard
  runs in a forked worker process and the coordinator exchanges pickled
  boundary batches over pipes. Fork (not spawn) start is required: the
  shard runtimes — application kernel generators included — are built in
  the parent and inherited by the workers, so only the boundary batches
  and the final reports ever cross the process boundary.

On completed runs all three produce identical ``ProgramResult.cycles``,
identical per-rank stores/returns, and identical per-FIFO push/pop
counts and occupancy peaks; only simulator wall-clock differs. (A
``max_cycles``-truncated run pins ``cycles``/``reason`` only: per-FIFO
counters tally *committed* events, and the planes legitimately commit
different distances past an arbitrary cap — exactly as the sequential
burst plane already differs from per-flit there.) Speedup comes from
genuine
multi-core parallelism in the process backend and scales with fabric
size over cut size — at small fabrics the per-epoch pickling and
synchronisation overhead can eat the win (``benchmarks/run_smoke.py``
reports the measured ratio honestly either way).
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from ..core.comm import SMIComm
from ..core.config import HardwareConfig
from ..core.context import SMIContext
from ..core.errors import ConfigurationError
from ..core.program import ProgramResult, SMIProgram
from ..network.routing import compute_routes
from ..simulation.engine import Engine
from ..simulation.memory import BoardMemory
from ..simulation.stats import PlannerStats, collect_planner_stats
from ..transport.builder import build_transport
from .partitioner import Partition, partition_topology, validate_cut
from .proxy import BoundaryRx, BoundaryTx
from .timesync import BoundaryChannel, EpochReport, EpochSynchronizer


@dataclass
class FinalReport:
    """One shard's end-of-run payload (picklable for the process backend)."""

    stores: dict
    returns: dict
    fifo_stats: dict
    planner_stats: PlannerStats


class _ShardRuntime:
    """One shard's engine, transport plane, proxies and app kernels."""

    def __init__(self, index: int, ranks: tuple[int, ...],
                 program: SMIProgram, plan, routes) -> None:
        self.index = index
        self.ranks = ranks
        local = frozenset(ranks)
        self.engine = Engine()
        # Clamp occupancy-log folds from the very first event: a shard
        # may run ahead of the (not yet known) global end cycle, and the
        # end-of-run stats must stay reconstructible exactly there.
        self.engine.stats_fold_limit = 0
        self.transport = build_transport(
            self.engine, plan, routes, program.config,
            validate_wire=program.validate_wire, shard_ranks=local,
        )
        comm_world = SMIComm.world(program.topology.num_ranks)
        self.stores: dict = {}
        memories: dict[int, BoardMemory] = {}
        if program.memory_config is not None:
            for rank in ranks:
                memories[rank] = BoardMemory(
                    self.engine, rank,
                    num_banks=program.memory_config.num_banks,
                    width_elements=program.memory_config.bank_width_elements,
                )
        self.procs: list[tuple[str, int, object]] = []
        for spec in program._kernels:
            for rank in spec.ranks:
                if rank not in local:
                    continue
                ctx = SMIContext(
                    rank=rank,
                    transport=self.transport.rank(rank),
                    config=program.config,
                    engine=self.engine,
                    comm_world=comm_world,
                    stores=self.stores,
                    memory=memories.get(rank),
                )
                proc = self.engine.spawn(
                    spec.fn(ctx), name=f"{spec.name}@rank{rank}"
                )
                self.procs.append((spec.name, rank, proc))
        # Boundary proxies, keyed by the directed link's (src rank, iface).
        self.tx: dict[tuple[int, int], BoundaryTx] = {}
        self.rx: dict[tuple[int, int], BoundaryRx] = {}
        for link, src_local in self.transport.boundaries:
            key = link.src
            if src_local:
                self.tx[key] = BoundaryTx(key, link)
            else:
                dst_rank, dst_iface = link.dst
                consumer = self.transport.rank(dst_rank).ckr[dst_iface]
                self.rx[key] = BoundaryRx(key, link, consumer.proc)

    # ------------------------------------------------------------------
    def epoch(self, bound: int, ships: dict, acks: dict,
              watermark: int = 0) -> EpochReport:
        """Apply inbound boundary batches, run one epoch, collect."""
        if watermark > self.engine.stats_fold_limit:
            self.engine.stats_fold_limit = watermark
        for key in sorted(acks):
            self.tx[key].apply(acks[key])
        for key in sorted(ships):
            self.rx[key].apply(ships[key])
        reason, executed = self.engine.run_until(bound)
        memo: dict = {}
        out_ships = {
            key: self.tx[key].collect(self.engine, bound, memo)
            for key in sorted(self.tx)
        }
        out_acks = {
            key: self.rx[key].collect(self.engine, bound, memo)
            for key in sorted(self.rx)
        }
        return EpochReport(
            reason=reason,
            executed=executed,
            ships=out_ships,
            acks=out_acks,
            live_workers=self.engine.live_workers,
            last_worker_finish=self.engine.last_worker_finish,
            worker_floor=self.engine.live_worker_floor(memo),
        )

    def dump_blocked(self) -> list[str]:
        return self.engine.blocked_process_dump()

    def finish(self, end: int) -> FinalReport:
        """Final stats snapshot, swept to the global end cycle.

        The receiving half of every boundary FIFO is skipped: after the
        drain phase both halves carry identical logs, and keeping only
        the transmitting half makes the merged per-FIFO stats a plain
        dict union that exactly matches a sequential run.
        """
        skip = {rx.fifo.name for rx in self.rx.values()}
        fifo_stats = {}
        for f in self.engine.fifos:
            if f.name in skip:
                continue
            pushes, pops = f.counts_at(end)
            fifo_stats[f.name] = {
                "pushes": pushes,
                "pops": pops,
                "max_occupancy": f.max_occupancy_at(end),
                "capacity": f.capacity,
                "latency": f.latency,
                "bursts": f.burst_stats.bursts,
                "burst_items": f.burst_stats.items,
            }
        returns = {
            (name, rank): proc.result for name, rank, proc in self.procs
        }
        return FinalReport(
            stores=dict(self.stores),
            returns=returns,
            fifo_stats=fifo_stats,
            planner_stats=collect_planner_stats(self.transport),
        )


# ----------------------------------------------------------------------
# Shard handles: where a shard actually runs
# ----------------------------------------------------------------------
class LocalHandle:
    """In-process shard: epochs execute synchronously on begin_epoch."""

    def __init__(self, runtime: _ShardRuntime) -> None:
        self.runtime = runtime
        self._report: EpochReport | None = None

    def begin_epoch(self, bound, ships, acks, watermark=0) -> None:
        self._report = self.runtime.epoch(bound, ships, acks, watermark)

    def finish_epoch(self) -> EpochReport:
        report, self._report = self._report, None
        return report

    def dump_blocked(self) -> list[str]:
        return self.runtime.dump_blocked()

    def finish(self, end: int) -> FinalReport:
        return self.runtime.finish(end)

    def close(self) -> None:
        pass


def _worker_main(conn, runtime: _ShardRuntime) -> None:
    """Forked worker loop: serve epoch/dump/finish commands over a pipe."""
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            try:
                if cmd == "epoch":
                    payload = runtime.epoch(msg[1], msg[2], msg[3], msg[4])
                elif cmd == "dump":
                    payload = runtime.dump_blocked()
                elif cmd == "finish":
                    payload = runtime.finish(msg[1])
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown shard command {cmd!r}")
            except Exception as exc:  # ship the failure to the coordinator
                try:
                    conn.send(("error", exc))
                except Exception:
                    conn.send(("error", RuntimeError(
                        f"shard {runtime.index}: {type(exc).__name__}: {exc}"
                    )))
                return
            conn.send(("ok", payload))
            if cmd == "finish":
                return
    except EOFError:  # pragma: no cover - coordinator went away
        return


class ProcessHandle:
    """Forked-worker shard: boundary batches cross a pipe, pickled."""

    def __init__(self, runtime: _ShardRuntime, ctx) -> None:
        self.index = runtime.index
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(child, runtime), daemon=True,
            name=f"smi-shard-{runtime.index}",
        )
        self._proc.start()
        child.close()

    def _recv(self):
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {self.index} died without reporting"
            ) from None
        if status == "error":
            raise payload
        return payload

    def begin_epoch(self, bound, ships, acks, watermark=0) -> None:
        self._conn.send(("epoch", bound, ships, acks, watermark))

    def finish_epoch(self) -> EpochReport:
        return self._recv()

    def dump_blocked(self) -> list[str]:
        self._conn.send(("dump",))
        return self._recv()

    def finish(self, end: int) -> FinalReport:
        self._conn.send(("finish", end))
        return self._recv()

    def close(self) -> None:
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join(timeout=5)
        self._conn.close()


# ----------------------------------------------------------------------
# Result facades
# ----------------------------------------------------------------------
class ShardedEngineView:
    """Duck-typed stand-in for ``ProgramResult.engine`` (merged stats)."""

    def __init__(self, fifo_stats: dict, cycle: int) -> None:
        self._fifo_stats = fifo_stats
        self.cycle = cycle

    def fifo_stats(self) -> dict:
        return self._fifo_stats


class ShardedTransportView:
    """Duck-typed stand-in for ``ProgramResult.transport``.

    ``ranks`` holds the shards' real :class:`RankTransport` objects for
    the in-process backend (workers' objects are unreachable from the
    process backend, so there it stays empty);
    ``planner_stats_snapshot`` carries the cluster-wide aggregate either
    way, honoured by
    :func:`repro.simulation.stats.collect_planner_stats`.
    """

    def __init__(self, config, routes, ranks: dict,
                 planner_stats: PlannerStats) -> None:
        self.config = config
        self.routes = routes
        self.ranks = ranks
        self.planner_stats_snapshot = planner_stats

    def rank(self, rank: int):
        return self.ranks[rank]


# ----------------------------------------------------------------------
# Entry point (SMIProgram.run dispatches here for non-sequential backends)
# ----------------------------------------------------------------------
def resolve_partition(program: SMIProgram) -> Partition:
    """The program's explicit partition, or the automatic min-cut one."""
    explicit = getattr(program, "partition", None)
    topology = program.topology
    if explicit is None:
        return partition_topology(topology, program.config.shards)
    if isinstance(explicit, Partition):
        return explicit
    return partition_topology(topology, len(explicit), rank_lists=explicit)


def run_sharded(program: SMIProgram,
                max_cycles: int | None = None) -> ProgramResult:
    """Partition, build per-shard planes, synchronise, merge results."""
    config: HardwareConfig = program.config
    partition = resolve_partition(program)
    validate_cut(partition, program.topology, config)
    shard_of = partition.shard_of()
    use_processes = (config.backend == "process"
                     and partition.num_shards > 1)
    if use_processes:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='process' needs the fork start method (the shard "
                "runtimes are built in the coordinator and inherited); "
                "use backend='sharded' on this platform"
            )
        ctx = multiprocessing.get_context("fork")
    routes = compute_routes(program.topology, program.routing_scheme)
    plan = program.build_plan()
    runtimes = [
        _ShardRuntime(i, ranks, program, plan, routes)
        for i, ranks in enumerate(partition.shards)
    ]
    channels = []
    for i, rt in enumerate(runtimes):
        for link, src_local in rt.transport.boundaries:
            if not src_local:
                continue
            channels.append(BoundaryChannel(
                key=link.src, src_shard=i,
                dst_shard=shard_of[link.dst[0]],
                latency=link.fifo.latency,
            ))
    if use_processes:
        handles = [ProcessHandle(rt, ctx) for rt in runtimes]
    else:
        handles = [LocalHandle(rt) for rt in runtimes]
    try:
        sync = EpochSynchronizer(handles, channels)
        outcome = sync.run(max_cycles)
        finals = [handle.finish(outcome.cycles) for handle in handles]
    finally:
        for handle in handles:
            handle.close()
    stores: dict = {}
    returns: dict = {}
    fifo_stats: dict = {}
    planner_stats = PlannerStats()
    for final in finals:
        stores.update(final.stores)
        returns.update(final.returns)
        fifo_stats.update(final.fifo_stats)
        planner_stats = planner_stats.merge(final.planner_stats)
    merged_ranks: dict = {}
    if not use_processes:
        for rt in runtimes:
            merged_ranks.update(rt.transport.ranks)
    return ProgramResult(
        cycles=outcome.cycles,
        elapsed_us=config.cycles_to_us(outcome.cycles),
        reason=outcome.reason,
        stores=stores,
        returns=returns,
        engine=ShardedEngineView(fifo_stats, outcome.cycles),
        transport=ShardedTransportView(config, routes, merged_ranks,
                                       planner_stats),
        routes=routes,
    )
