"""Execution backends: sequential reference, in-process shards, workers.

Three ways to execute an :class:`~repro.core.program.SMIProgram`,
selected by ``HardwareConfig.backend``:

* **sequential** — the reference: one
  :class:`~repro.simulation.engine.Engine` simulates the whole fabric
  (this is the path inside ``SMIProgram.run`` itself; this module never
  sees it).
* **sharded** — the fabric is partitioned
  (:mod:`repro.shard.partitioner`), each shard gets its own engine and
  its own transport plane with boundary proxies at the cut
  (:mod:`repro.shard.proxy`), and the epoch synchroniser
  (:mod:`repro.shard.timesync`) advances them in conservative rounds —
  all inside the current process. No parallelism; this backend exists as
  the deterministic cycle-exactness reference for the epoch protocol
  and is what the equivalence/fuzz suites sweep.
* **process** — the same shards and the same conservative protocol,
  but each shard runs in a forked worker process. Boundary batches
  travel in the packed binary wire format of :mod:`repro.shard.wire`
  (one struct header + contiguous ndarray blocks per boundary per
  exchange — not one pickle per packet), over one of two transports
  selected by ``HardwareConfig.shard_transport``: per-boundary
  shared-memory rings (``"shm"``, the default where available), where
  workers self-pace mid-epoch — draining peers' floors and publishing
  their own as soon as they are proven, without waiting for a
  coordinator barrier — or the coordinator pipe (``"pipe"``), which
  keeps the PR-5 round discipline with the pickle cost removed. Fork
  (not spawn) start is required: the shard runtimes — application
  kernel generators included — are built in the parent and inherited
  by the workers, so only boundary records and final reports ever
  cross the process boundary.

On completed runs all backends produce identical
``ProgramResult.cycles``, identical per-rank stores/returns, and
identical per-FIFO push/pop counts and occupancy peaks; only simulator
wall-clock differs. (A ``max_cycles``-truncated run pins
``cycles``/``reason`` only: per-FIFO counters tally *committed* events,
and the planes legitimately commit different distances past an
arbitrary cap — exactly as the sequential burst plane already differs
from per-flit there.) Speedup comes from genuine multi-core
parallelism in the process backend and scales with fabric size over
cut size; every shard reports a per-phase wall-clock breakdown
(compute / serialize / IPC wait, surfaced on ``ProgramResult.transport
.shard_timing``) so the overheads are measured, not guessed.
"""

from __future__ import annotations

import contextlib
import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter

from ..core.comm import SMIComm
from ..core.config import HardwareConfig
from ..core.context import SMIContext
from ..core.errors import ConfigurationError
from ..core.program import ProgramResult, SMIProgram
from ..network.routing import compute_routes
from ..simulation.engine import FOREVER, Engine
from ..simulation.memory import BoardMemory
from ..simulation.stats import PlannerStats, collect_planner_stats
from ..trace import merge_segments, new_phase, recorder_from_config
from ..transport.builder import build_transport
from .partitioner import Partition, partition_topology, validate_cut
from .proxy import BoundaryRx, BoundaryTx
from .timesync import BoundaryChannel, EpochReport, EpochSynchronizer
from .wire import (
    ShmFabric,
    decode_exchange,
    encode_exchange,
    pack_ack_records,
    pack_ship_records,
    unpack_record,
)


@dataclass
class FinalReport:
    """One shard's end-of-run payload (picklable for the process backend)."""

    stores: dict
    returns: dict
    fifo_stats: dict
    planner_stats: PlannerStats
    #: Per-phase wall-clock breakdown in the canonical schema
    #: (:data:`repro.trace.TIMING_FIELDS` — the trace exporter's wall
    #: lanes and ``shard_timing_summary`` both consume it):
    #: ``compute_s`` (engine ``run_until``), ``serialize_s`` (record
    #: codec + ring/pipe blob work), ``ipc_wait_s`` (blocked on the
    #: control pipe), plus ``inner_rounds`` (self-paced exchange
    #: iterations) and ``outer_rounds`` (coordinator commands served).
    timing: dict = field(default_factory=new_phase)
    #: The shard's flight-recorder segment
    #: (:meth:`repro.trace.TraceRecorder.segment`) when tracing is on,
    #: else ``None``. Plain builtins only — it rides the same
    #: control-pipe pickle as the rest of the report.
    trace: dict | None = None


class _ShardLinks:
    """One worker's half of the shared-memory boundary fabric.

    Holds the rings this shard reads and writes, local mirrors of the
    floors its conservative bound depends on (floors travel *inside*
    ring records, so a floor is never observed before the batch it
    bounds — no separate-cell races), a FIFO backlog per ring for
    records that did not fit (never dropped, retried on the next
    publish), and the last published floors so empty records are only
    written when a floor actually moved.
    """

    def __init__(self, index: int, channels, fabric: ShmFabric) -> None:
        self.index = index
        self.key_ids = fabric.key_ids
        self.keys_by_id = fabric.keys_by_id
        self.max_record = fabric.ring_bytes - 4
        self.in_ship: dict = {}
        self.in_ack: dict = {}
        self.out_ship: dict = {}
        self.out_ack: dict = {}
        self.horizon: dict = {}    # incoming cut links (this shard is dst)
        self.ack_floor: dict = {}  # outgoing cut links (this shard is src)
        self.slack: dict = {}      # own published tx self-sufficiency
        for ch in channels:
            if ch.src_shard == index:
                self.out_ship[ch.key] = fabric.ship_rings[ch.key]
                self.in_ack[ch.key] = fabric.ack_rings[ch.key]
                self.ack_floor[ch.key] = ch.ack_floor
                self.slack[ch.key] = ch.slack
            if ch.dst_shard == index:
                self.in_ship[ch.key] = fabric.ship_rings[ch.key]
                self.out_ack[ch.key] = fabric.ack_rings[ch.key]
                self.horizon[ch.key] = ch.horizon
        self._backlog: dict = {}
        self._last_pub: dict = {}

    # -- inbound ------------------------------------------------------
    def drain(self, runtime: "_ShardRuntime") -> int:
        """Apply every readable record; returns items applied."""
        applied = 0
        for key in sorted(self.in_ack):
            ring = self.in_ack[key]
            while True:
                record = ring.try_pop()
                if record is None:
                    break
                _, ack = unpack_record(record, self.keys_by_id)
                runtime.tx[key].apply(ack)
                if ack.floor > self.ack_floor[key]:
                    self.ack_floor[key] = ack.floor
                applied += len(ack.cycles)
        for key in sorted(self.in_ship):
            ring = self.in_ship[key]
            while True:
                record = ring.try_pop()
                if record is None:
                    break
                _, ship = unpack_record(record, self.keys_by_id)
                runtime.rx[key].apply(ship)
                if ship.horizon > self.horizon[key]:
                    self.horizon[key] = ship.horizon
                applied += len(ship.items)
        return applied

    # -- bound --------------------------------------------------------
    def compute_bound(self, cap: int | None) -> int:
        """This shard's conservative bound from the mirrored floors.

        The same formula the coordinator's ``compute_bounds`` applies,
        restricted to this shard's cut links — incoming horizons
        forward, ``max(ack_floor + 1, slack)`` reverse.
        """
        bound = FOREVER if cap is None else cap
        for horizon in self.horizon.values():
            if horizon < bound:
                bound = horizon
        for key, floor in self.ack_floor.items():
            rev = floor + 1
            slack = self.slack[key]
            if slack > rev:
                rev = slack
            if rev < bound:
                bound = rev
        return bound

    # -- outbound -----------------------------------------------------
    def publish(self, runtime: "_ShardRuntime", bound: int,
                memo: dict) -> int:
        """Collect and push this epoch's batches; returns items pushed.

        Items are counted when they reach a ring (not when collected):
        a backlogged record's items stay "in flight" until the peer can
        actually see them, which keeps the coordinator's
        progress/deadlock accounting exact.
        """
        pushed = self._flush_backlog()
        for key in sorted(runtime.tx):
            ship = runtime.tx[key].collect(runtime.engine, bound, memo)
            self.slack[key] = ship.slack
            if not ship.items:
                state = (ship.horizon, ship.slack)
                if self._last_pub.get(("ship", key)) == state:
                    continue
                self._last_pub[("ship", key)] = state
            else:
                self._last_pub[("ship", key)] = (ship.horizon, ship.slack)
            records = pack_ship_records(self.key_ids[key], ship,
                                        self.max_record)
            pushed += self._push(self.out_ship[key], records)
        for key in sorted(runtime.rx):
            ack = runtime.rx[key].collect(runtime.engine, bound, memo)
            if not ack.cycles:
                if self._last_pub.get(("ack", key)) == ack.floor:
                    continue
            self._last_pub[("ack", key)] = ack.floor
            records = pack_ack_records(self.key_ids[key], ack,
                                       self.max_record)
            pushed += self._push(self.out_ack[key], records)
        return pushed

    def _push(self, ring, records) -> int:
        backlog = self._backlog.get(ring)
        if backlog:  # keep per-ring FIFO order behind older records
            backlog.extend(records)
            return 0
        pushed = 0
        it = iter(records)
        for record, items in it:
            if ring.try_push(record):
                pushed += items
            else:
                backlog = self._backlog.setdefault(ring, deque())
                backlog.append((record, items))
                backlog.extend(it)
                break
        return pushed

    def _flush_backlog(self) -> int:
        pushed = 0
        for ring, backlog in self._backlog.items():
            while backlog:
                record, items = backlog[0]
                if not ring.try_push(record):
                    break
                backlog.popleft()
                pushed += items
        return pushed


class _ShardRuntime:
    """One shard's engine, transport plane, proxies and app kernels."""

    def __init__(self, index: int, ranks: tuple[int, ...],
                 program: SMIProgram, plan, routes) -> None:
        self.index = index
        self.ranks = ranks
        local = frozenset(ranks)
        self.engine = Engine()
        # Clamp occupancy-log folds from the very first event: a shard
        # may run ahead of the (not yet known) global end cycle, and the
        # end-of-run stats must stay reconstructible exactly there.
        self.engine.stats_fold_limit = 0
        # Shard-indexed flight recorder (None with tracing off). Every
        # instrumented site reaches it through ``engine.trace``; the
        # process backend forks *after* this, so each worker inherits
        # its own recorder and ships the segment back in FinalReport.
        self.engine.trace = recorder_from_config(program.config,
                                                 shard=index)
        self.transport = build_transport(
            self.engine, plan, routes, program.config,
            validate_wire=program.validate_wire, shard_ranks=local,
        )
        comm_world = SMIComm.world(program.topology.num_ranks)
        self.stores: dict = {}
        memories: dict[int, BoardMemory] = {}
        if program.memory_config is not None:
            for rank in ranks:
                memories[rank] = BoardMemory(
                    self.engine, rank,
                    num_banks=program.memory_config.num_banks,
                    width_elements=program.memory_config.bank_width_elements,
                )
        self.procs: list[tuple[str, int, object]] = []
        for spec in program._kernels:
            for rank in spec.ranks:
                if rank not in local:
                    continue
                ctx = SMIContext(
                    rank=rank,
                    transport=self.transport.rank(rank),
                    config=program.config,
                    engine=self.engine,
                    comm_world=comm_world,
                    stores=self.stores,
                    memory=memories.get(rank),
                )
                proc = self.engine.spawn(
                    spec.fn(ctx), name=f"{spec.name}@rank{rank}"
                )
                self.procs.append((spec.name, rank, proc))
        # Boundary proxies, keyed by the directed link's (src rank, iface).
        self.tx: dict[tuple[int, int], BoundaryTx] = {}
        self.rx: dict[tuple[int, int], BoundaryRx] = {}
        for link, src_local in self.transport.boundaries:
            key = link.src
            if src_local:
                self.tx[key] = BoundaryTx(key, link)
            else:
                dst_rank, dst_iface = link.dst
                consumer = self.transport.rank(dst_rank).ckr[dst_iface]
                self.rx[key] = BoundaryRx(key, link, consumer.proc)
        self.phase = new_phase()
        self.inner_limit = program.config.shard_inner_rounds
        # Process-backend wiring, attached by run_sharded before fork.
        self.links: _ShardLinks | None = None
        self.wire_key_ids: dict | None = None
        self.wire_keys_by_id: list | None = None

    # ------------------------------------------------------------------
    def epoch(self, bound: int, ships: dict, acks: dict,
              watermark: int = 0) -> EpochReport:
        """Apply inbound boundary batches, run one epoch, collect."""
        if watermark > self.engine.stats_fold_limit:
            self.engine.stats_fold_limit = watermark
        for key in sorted(acks):
            self.tx[key].apply(acks[key])
        for key in sorted(ships):
            self.rx[key].apply(ships[key])
        trace = self.engine.trace
        if trace is not None:
            trace.emit(self.engine.cycle, "epoch", "shard", "epoch",
                       args={"bound": bound})
        t0 = perf_counter()
        reason, executed = self.engine.run_until(bound)
        t1 = perf_counter()
        self.phase["compute_s"] += t1 - t0
        self.phase["outer_rounds"] += 1
        if trace is not None:
            trace.wall_span("compute", t0, t1)
        memo: dict = {}
        out_ships = {
            key: self.tx[key].collect(self.engine, bound, memo)
            for key in sorted(self.tx)
        }
        out_acks = {
            key: self.rx[key].collect(self.engine, bound, memo)
            for key in sorted(self.rx)
        }
        return EpochReport(
            reason=reason,
            executed=executed,
            ships=out_ships,
            acks=out_acks,
            live_workers=self.engine.live_workers,
            last_worker_finish=self.engine.last_worker_finish,
            worker_floor=self.engine.live_worker_floor(memo),
        )

    def epoch_stream(self, cap: int | None, watermark: int) -> EpochReport:
        """Self-paced exchange loop over the shared-memory rings.

        Each iteration drains the rings (floors ride inside the
        records, so everything drained is sound to use immediately),
        recomputes this shard's conservative bound from the freshest
        mirrors, runs the engine to it, and publishes what the epoch
        committed. The loop ends when an iteration makes no progress —
        nothing applied, nothing executed, bound not advanced — or
        after ``shard_inner_rounds`` iterations, so the coordinator's
        global termination/deadlock barrier runs regularly.
        """
        engine = self.engine
        if watermark > engine.stats_fold_limit:
            engine.stats_fold_limit = watermark
        links = self.links
        phase = self.phase
        trace = engine.trace
        total_executed = shipped = delivered = 0
        reason = "bound"
        bound = 0
        prev_bound = -1
        for _ in range(self.inner_limit):
            t0 = perf_counter()
            applied = links.drain(self)
            bound = links.compute_bound(cap)
            t1 = perf_counter()
            reason, executed = engine.run_until(bound)
            t2 = perf_counter()
            pushed = links.publish(self, bound, {})
            t3 = perf_counter()
            phase["serialize_s"] += (t1 - t0) + (t3 - t2)
            phase["compute_s"] += t2 - t1
            phase["inner_rounds"] += 1
            if trace is not None:
                trace.wall_span("serialize", t0, t1)
                trace.wall_span("compute", t1, t2)
                trace.wall_span("serialize", t2, t3)
                if bound > prev_bound:
                    # One bound-update event per inner round that moved
                    # the conservative bound (not per drained record).
                    trace.emit(engine.cycle, "epoch", "shard", "bound",
                               args={"bound": bound})
            delivered += applied
            total_executed += executed
            shipped += pushed
            if not applied and not executed and bound <= prev_bound:
                break
            prev_bound = bound
        phase["outer_rounds"] += 1
        return EpochReport(
            reason=reason,
            executed=total_executed,
            live_workers=engine.live_workers,
            last_worker_finish=engine.last_worker_finish,
            worker_floor=engine.live_worker_floor({}),
            shipped=shipped,
            delivered=delivered,
            bound_reached=bound,
        )

    def epoch_drain(self, end: int, watermark: int) -> EpochReport:
        """One drain iteration at bound ``end + 1`` over the rings."""
        engine = self.engine
        if watermark > engine.stats_fold_limit:
            engine.stats_fold_limit = watermark
        links = self.links
        phase = self.phase
        trace = engine.trace
        if trace is not None:
            trace.emit(engine.cycle, "drain", "shard", "drain",
                       args={"end": end})
        t0 = perf_counter()
        applied = links.drain(self)
        t1 = perf_counter()
        reason, executed = engine.run_until(end + 1)
        t2 = perf_counter()
        pushed = links.publish(self, end + 1, {})
        t3 = perf_counter()
        phase["serialize_s"] += (t1 - t0) + (t3 - t2)
        phase["compute_s"] += t2 - t1
        phase["inner_rounds"] += 1
        phase["outer_rounds"] += 1
        if trace is not None:
            trace.wall_span("serialize", t0, t1)
            trace.wall_span("compute", t1, t2)
            trace.wall_span("serialize", t2, t3)
        return EpochReport(
            reason=reason,
            executed=executed,
            live_workers=engine.live_workers,
            last_worker_finish=engine.last_worker_finish,
            worker_floor=engine.live_worker_floor({}),
            shipped=pushed,
            delivered=applied,
            bound_reached=end + 1,
        )

    def dump_blocked(self) -> list[str]:
        lines = self.engine.blocked_process_dump()
        trace = self.engine.trace
        if trace is not None and len(trace):
            # Same post-mortem the sequential engine's DeadlockError
            # carries: the flight recorder's tail, per shard.
            lines.append(f"shard {self.index} last trace events:")
            lines.extend(trace.tail_lines())
        return lines

    def finish(self, end: int) -> FinalReport:
        """Final stats snapshot, swept to the global end cycle.

        The receiving half of every boundary FIFO is skipped: after the
        drain phase both halves carry identical logs, and keeping only
        the transmitting half makes the merged per-FIFO stats a plain
        dict union that exactly matches a sequential run.
        """
        skip = {rx.fifo.name for rx in self.rx.values()}
        fifo_stats = {}
        for f in self.engine.fifos:
            if f.name in skip:
                continue
            pushes, pops = f.counts_at(end)
            fifo_stats[f.name] = {
                "pushes": pushes,
                "pops": pops,
                "max_occupancy": f.max_occupancy_at(end),
                "capacity": f.capacity,
                "latency": f.latency,
                "bursts": f.burst_stats.bursts,
                "burst_items": f.burst_stats.items,
            }
        returns = {
            (name, rank): proc.result for name, rank, proc in self.procs
        }
        timing = {
            key: (round(value, 6) if isinstance(value, float) else value)
            for key, value in self.phase.items()
        }
        trace = self.engine.trace
        return FinalReport(
            stores=dict(self.stores),
            returns=returns,
            fifo_stats=fifo_stats,
            planner_stats=collect_planner_stats(self.transport),
            timing=timing,
            trace=trace.segment() if trace is not None else None,
        )


# ----------------------------------------------------------------------
# Shard handles: where a shard actually runs
# ----------------------------------------------------------------------
class LocalHandle:
    """In-process shard: epochs execute synchronously on begin_epoch."""

    #: begin_epoch completes the epoch before returning, so the
    #: synchroniser may fold this shard's floors before its successors
    #: run (eager Gauss–Seidel rounds).
    synchronous = True
    self_exchanging = False

    def __init__(self, runtime: _ShardRuntime) -> None:
        self.runtime = runtime
        self._report: EpochReport | None = None

    def begin_epoch(self, bound, ships, acks, watermark=0) -> None:
        self._report = self.runtime.epoch(bound, ships, acks, watermark)

    def finish_epoch(self) -> EpochReport:
        report, self._report = self._report, None
        return report

    def dump_blocked(self) -> list[str]:
        return self.runtime.dump_blocked()

    def finish(self, end: int) -> FinalReport:
        return self.runtime.finish(end)

    def close(self) -> None:
        pass

    def __enter__(self) -> "LocalHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _worker_main(conn, runtime: _ShardRuntime) -> None:
    """Forked worker loop: serve shard commands over the control pipe.

    Commands: ``("epoch", bound, blob, watermark)`` — the pipe
    transport's coordinator-driven epoch, batches as one packed record
    blob each way; ``("stream", cap, watermark)`` /
    ``("drain", end, watermark)`` — the shared-memory transport's
    self-paced rounds (batches never touch the pipe); ``("dump",)`` and
    ``("finish", end)`` as before.
    """
    phase = runtime.phase
    trace = runtime.engine.trace
    try:
        while True:
            t0 = perf_counter()
            msg = conn.recv()
            t1 = perf_counter()
            phase["ipc_wait_s"] += t1 - t0
            if trace is not None:
                trace.wall_span("ipc_wait", t0, t1)
            cmd = msg[0]
            try:
                if cmd == "epoch":
                    t0 = perf_counter()
                    ships, acks = decode_exchange(msg[2],
                                                  runtime.wire_keys_by_id)
                    t1 = perf_counter()
                    phase["serialize_s"] += t1 - t0
                    if trace is not None:
                        trace.wall_span("serialize", t0, t1)
                    report = runtime.epoch(msg[1], ships, acks, msg[3])
                    t0 = perf_counter()
                    blob = encode_exchange(report.ships, report.acks,
                                           runtime.wire_key_ids)
                    t1 = perf_counter()
                    phase["serialize_s"] += t1 - t0
                    if trace is not None:
                        trace.wall_span("serialize", t0, t1)
                    report.ships = {}
                    report.acks = {}
                    payload = (report, blob)
                elif cmd == "stream":
                    payload = runtime.epoch_stream(msg[1], msg[2])
                elif cmd == "drain":
                    payload = runtime.epoch_drain(msg[1], msg[2])
                elif cmd == "dump":
                    payload = runtime.dump_blocked()
                elif cmd == "finish":
                    payload = runtime.finish(msg[1])
                else:  # pragma: no cover - protocol guard
                    raise RuntimeError(f"unknown shard command {cmd!r}")
            except Exception as exc:  # ship the failure to the coordinator
                try:
                    conn.send(("error", exc))
                except Exception:
                    conn.send(("error", RuntimeError(
                        f"shard {runtime.index}: {type(exc).__name__}: {exc}"
                    )))
                return
            conn.send(("ok", payload))
            if cmd == "finish":
                return
    except EOFError:  # pragma: no cover - coordinator went away
        return


class ProcessHandle:
    """Forked-worker shard: packed boundary records, shm rings or pipe.

    A context manager: ``close`` terminates and joins the worker, and
    ``run_sharded`` enters every handle on an ``ExitStack`` the moment
    it is constructed — a failure while the remaining shards are still
    being forked (or any mid-run coordinator exception) tears down
    every worker already started instead of leaking it.
    """

    synchronous = False

    def __init__(self, runtime: _ShardRuntime, ctx,
                 transport: str = "pipe") -> None:
        self.index = runtime.index
        self.transport = transport
        #: True when boundary batches move through shared-memory rings
        #: worker-to-worker; the synchroniser then only runs barriers.
        self.self_exchanging = transport == "shm"
        self._key_ids = runtime.wire_key_ids
        self._keys_by_id = runtime.wire_keys_by_id
        self._mode: str | None = None
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_worker_main, args=(child, runtime), daemon=True,
            name=f"smi-shard-{runtime.index}",
        )
        self._proc.start()
        child.close()

    def _recv(self):
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {self.index} died without reporting"
            ) from None
        if status == "error":
            raise payload
        return payload

    def begin_epoch(self, bound, ships, acks, watermark=0) -> None:
        blob = encode_exchange(ships, acks, self._key_ids)
        self._conn.send(("epoch", bound, blob, watermark))
        self._mode = "epoch"

    def begin_stream(self, cap, watermark=0) -> None:
        self._conn.send(("stream", cap, watermark))
        self._mode = "stream"

    def begin_drain(self, end, watermark=0) -> None:
        self._conn.send(("drain", end, watermark))
        self._mode = "drain"

    def finish_epoch(self) -> EpochReport:
        payload = self._recv()
        if self._mode == "epoch":
            report, blob = payload
            ships, acks = decode_exchange(blob, self._keys_by_id)
            report.ships = ships
            report.acks = acks
            return report
        return payload

    def dump_blocked(self) -> list[str]:
        self._conn.send(("dump",))
        return self._recv()

    def finish(self, end: int) -> FinalReport:
        self._conn.send(("finish", end))
        return self._recv()

    def close(self) -> None:
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join(timeout=5)
        self._conn.close()

    def __enter__(self) -> "ProcessHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Result facades
# ----------------------------------------------------------------------
class ShardedEngineView:
    """Duck-typed stand-in for ``ProgramResult.engine`` (merged stats)."""

    def __init__(self, fifo_stats: dict, cycle: int) -> None:
        self._fifo_stats = fifo_stats
        self.cycle = cycle

    def fifo_stats(self) -> dict:
        return self._fifo_stats


class ShardedTransportView:
    """Duck-typed stand-in for ``ProgramResult.transport``.

    ``ranks`` holds the shards' real :class:`RankTransport` objects for
    the in-process backend (workers' objects are unreachable from the
    process backend, so there it stays empty);
    ``planner_stats_snapshot`` carries the cluster-wide aggregate either
    way, honoured by
    :func:`repro.simulation.stats.collect_planner_stats`;
    ``shard_timing`` is the per-shard wall-clock phase breakdown
    (one ``FinalReport.timing`` dict per shard, in shard order).
    ``trace_segments`` holds each shard's flight-recorder segment and
    ``trace`` the coordinator-merged single timeline
    (:func:`repro.trace.merge_segments`) — both ``None``/empty with
    tracing off.
    """

    def __init__(self, config, routes, ranks: dict,
                 planner_stats: PlannerStats,
                 shard_timing: list | None = None,
                 trace_segments: list | None = None) -> None:
        self.config = config
        self.routes = routes
        self.ranks = ranks
        self.planner_stats_snapshot = planner_stats
        self.shard_timing = shard_timing or []
        self.trace_segments = trace_segments or []
        self.trace = (merge_segments(self.trace_segments)
                      if self.trace_segments else None)

    def rank(self, rank: int):
        return self.ranks[rank]


# ----------------------------------------------------------------------
# Entry point (SMIProgram.run dispatches here for non-sequential backends)
# ----------------------------------------------------------------------
def resolve_partition(program: SMIProgram) -> Partition:
    """The program's explicit partition, or the automatic min-cut one."""
    explicit = getattr(program, "partition", None)
    topology = program.topology
    if explicit is None:
        return partition_topology(topology, program.config.shards)
    if isinstance(explicit, Partition):
        return explicit
    return partition_topology(topology, len(explicit), rank_lists=explicit)


def _resolve_transport(config: HardwareConfig, keys: list) -> ShmFabric | None:
    """The shm fabric for this run, or None for the pipe transport."""
    if config.shard_transport == "pipe":
        return None
    try:
        return ShmFabric(keys, config.shard_ring_bytes)
    except Exception as exc:
        if config.shard_transport == "shm":
            raise ConfigurationError(
                f"shard_transport='shm' is unavailable here ({exc}); "
                "use shard_transport='pipe' or 'auto'"
            ) from exc
        return None  # auto: fall back to the pipe transport


def run_sharded(program: SMIProgram,
                max_cycles: int | None = None) -> ProgramResult:
    """Partition, build per-shard planes, synchronise, merge results."""
    config: HardwareConfig = program.config
    partition = resolve_partition(program)
    validate_cut(partition, program.topology, config)
    shard_of = partition.shard_of()
    use_processes = (config.backend == "process"
                     and partition.num_shards > 1)
    if use_processes:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "backend='process' needs the fork start method (the shard "
                "runtimes are built in the coordinator and inherited); "
                "use backend='sharded' on this platform"
            )
        ctx = multiprocessing.get_context("fork")
    routes = compute_routes(program.topology, program.routing_scheme)
    plan = program.build_plan()
    runtimes = [
        _ShardRuntime(i, ranks, program, plan, routes)
        for i, ranks in enumerate(partition.shards)
    ]
    channels = []
    for i, rt in enumerate(runtimes):
        for link, src_local in rt.transport.boundaries:
            if not src_local:
                continue
            channels.append(BoundaryChannel(
                key=link.src, src_shard=i,
                dst_shard=shard_of[link.dst[0]],
                latency=link.fifo.latency,
            ))
    fabric = None
    if use_processes:
        keys = sorted(ch.key for ch in channels)
        key_ids = {key: i for i, key in enumerate(keys)}
        fabric = _resolve_transport(config, keys)
        for i, rt in enumerate(runtimes):
            rt.wire_key_ids = key_ids
            rt.wire_keys_by_id = keys
            if fabric is not None:
                rt.links = _ShardLinks(i, channels, fabric)
    with contextlib.ExitStack() as stack:
        if fabric is not None:
            stack.callback(fabric.close)
        handles: list = []
        for rt in runtimes:
            if use_processes:
                handle = ProcessHandle(
                    rt, ctx, "shm" if fabric is not None else "pipe")
            else:
                handle = LocalHandle(rt)
            handles.append(stack.enter_context(handle))
        sync = EpochSynchronizer(handles, channels)
        outcome = sync.run(max_cycles)
        finals = [handle.finish(outcome.cycles) for handle in handles]
    stores: dict = {}
    returns: dict = {}
    fifo_stats: dict = {}
    planner_stats = PlannerStats()
    shard_timing: list = []
    trace_segments: list = []
    for final in finals:
        stores.update(final.stores)
        returns.update(final.returns)
        fifo_stats.update(final.fifo_stats)
        planner_stats = planner_stats.merge(final.planner_stats)
        shard_timing.append(final.timing)
        if final.trace is not None:
            trace_segments.append(final.trace)
    merged_ranks: dict = {}
    if not use_processes:
        for rt in runtimes:
            merged_ranks.update(rt.transport.ranks)
    return ProgramResult(
        cycles=outcome.cycles,
        elapsed_us=config.cycles_to_us(outcome.cycles),
        reason=outcome.reason,
        stores=stores,
        returns=returns,
        engine=ShardedEngineView(fifo_stats, outcome.cycles),
        transport=ShardedTransportView(config, routes, merged_ranks,
                                       planner_stats, shard_timing,
                                       trace_segments),
        routes=routes,
    )
