"""Benchmark harness: paper data, runners, and report formatting."""

from . import paperdata
from .reporting import Comparison, burst_summary, format_table, planner_summary
from .runners import (
    SIM_ELEMENT_LIMIT,
    SweepPoint,
    bandwidth_sweep,
    collective_sweep,
    default_config,
    host_bandwidth_sweep,
    host_collective_sweep,
    measure_injection_cycles,
    measure_pingpong_us,
    measure_stream_sim,
)
