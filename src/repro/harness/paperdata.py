"""Reference values digitised from the paper's tables and figures.

Every benchmark prints its measurements side by side with these, and
EXPERIMENTS.md records the comparison. Table values are exact (copied from
the text); figure values are approximate reads of the plotted curves and
are marked as such.
"""

from __future__ import annotations

# ----------------------------------------------------------------------
# Table 1 — SMI resource consumption (§5.2)
# ----------------------------------------------------------------------
TABLE1 = {
    "1 QSFP": {
        "interconnect": {"luts": 144, "ffs": 4872, "m20ks": 0},
        "comm_kernels": {"luts": 6186, "ffs": 7189, "m20ks": 10},
        "pct": {"luts": 0.3, "ffs": 0.7, "m20ks": 0.0},
    },
    "4 QSFPs": {
        "interconnect": {"luts": 1152, "ffs": 39264, "m20ks": 0},
        "comm_kernels": {"luts": 30960, "ffs": 31072, "m20ks": 40},
        "pct": {"luts": 1.7, "ffs": 1.9, "m20ks": 0.3},
    },
}

# ----------------------------------------------------------------------
# Table 2 — collective support kernel resources (§5.2)
# ----------------------------------------------------------------------
TABLE2 = {
    "Broadcast": {"luts": 2560, "ffs": 3593, "m20ks": 0, "dsps": 0,
                  "pct_luts": 0.1, "pct_ffs": 0.1},
    "Reduce (FP32 SUM)": {"luts": 10268, "ffs": 14648, "m20ks": 0, "dsps": 6,
                          "pct_luts": 0.6, "pct_ffs": 0.4},
}

# ----------------------------------------------------------------------
# Table 3 — ping-pong latency in microseconds (§5.3.2)
# ----------------------------------------------------------------------
TABLE3_LATENCY_US = {
    "MPI+OpenCL": 36.61,
    "SMI-1": 0.801,
    "SMI-4": 2.896,
    "SMI-7": 5.103,
}

# ----------------------------------------------------------------------
# Table 4 — average injection rate in cycles (§5.3.3)
# ----------------------------------------------------------------------
TABLE4_INJECTION_CYCLES = {1: 5.0, 4: 2.5, 8: 1.8, 16: 1.69}

# ----------------------------------------------------------------------
# Fig. 9 — bandwidth (Gbit/s) vs message size (§5.3.1). Approximate curve
# reads; the paper states SMI reaches 91% of the 35 Gbit/s payload peak
# and that the host path achieves about one third of SMI's bandwidth.
# ----------------------------------------------------------------------
FIG9_QSFP_PEAK_GBITS = 40.0
FIG9_PAYLOAD_PEAK_GBITS = 35.0
FIG9_SMI_PLATEAU_GBITS = 0.91 * 35.0      # ~31.9
FIG9_MPI_PLATEAU_GBITS = 12.0             # ~1/3 of SMI (approximate read)
FIG9_SIZES_BYTES = [2**k for k in range(10, 29)]  # 1 KiB .. 256 MiB

# ----------------------------------------------------------------------
# Figs. 10-11 — collective times (usec) vs element count (approximate
# curve reads at three anchor sizes; FP32 elements).
# ----------------------------------------------------------------------
FIG10_BCAST_ANCHORS_US = {
    # elements: (SMI torus 8 ranks, MPI+OpenCL 8 ranks)
    64: (30.0, 1600.0),
    16_384: (180.0, 1800.0),
    1_048_576: (9_000.0, 10_000.0),
}
FIG11_REDUCE_ANCHORS_US = {
    64: (40.0, 1600.0),
    16_384: (1_000.0, 1_900.0),
    1_048_576: (40_000.0, 12_000.0),  # MPI wins at large sizes (§5.3.4)
}

# ----------------------------------------------------------------------
# Fig. 13 — GESUMMV (§5.4.1): distributed-over-single speedup ~2x; the
# annotated SMI (distributed) execution times in milliseconds.
# ----------------------------------------------------------------------
FIG13_SQUARE_TIMES_MS = {2048: 0.7, 4096: 2.8, 8192: 10.8, 16384: 51.1}
FIG13_RECT_2048xM_TIMES_MS = {4096: 1.4, 8192: 2.8, 16384: 5.5}
FIG13_RECT_Nx2048_TIMES_MS = {4096: 1.4, 8192: 2.8, 16384: 5.5}
FIG13_EXPECTED_SPEEDUP = 2.0

# ----------------------------------------------------------------------
# Fig. 15 — stencil strong scaling (4096^2, 32 iterations).
# ----------------------------------------------------------------------
FIG15_STRONG_SCALING = {
    "1 bank/1 FPGA": {"speedup": 1.0, "time_ms": 254.0},
    "4 banks/1 FPGA": {"speedup": 3.5, "time_ms": 72.0},
    "1 bank/4 FPGAs": {"speedup": 3.5, "time_ms": 72.0},
    "4 banks/4 FPGAs": {"speedup": 12.3, "time_ms": 20.0},
    "4 banks/8 FPGAs": {"speedup": 23.1, "time_ms": 11.0},
}

# ----------------------------------------------------------------------
# Fig. 16 — stencil weak scaling (ns per grid point, 32 iterations,
# 4 banks). Approximate curve reads; at large grids 8 ranks approach a
# 2x advantage over 4 ranks.
# ----------------------------------------------------------------------
FIG16_GRID_SIZES = [1024, 2048, 4096, 8192, 16384]
FIG16_NS_PER_POINT_4RANKS = {1024: 1.9, 2048: 1.4, 4096: 1.2,
                             8192: 1.15, 16384: 1.1}
FIG16_NS_PER_POINT_8RANKS = {1024: 1.1, 2048: 0.8, 4096: 0.65,
                             8192: 0.6, 16384: 0.55}
