"""Paper-vs-measured report tables printed by every benchmark."""

from __future__ import annotations

from dataclasses import dataclass, field


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render a plain-text table with aligned columns."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


@dataclass
class Comparison:
    """Collects (label, paper value, measured value) rows for one figure."""

    title: str
    unit: str
    rows: list[tuple] = field(default_factory=list)

    def add(self, label: str, paper, measured, note: str = "") -> None:
        self.rows.append((label, paper, measured, note))

    def ratio_rows(self) -> list[list]:
        out = []
        for label, paper, measured, note in self.rows:
            if (
                isinstance(paper, (int, float))
                and isinstance(measured, (int, float))
                and paper
            ):
                ratio = measured / paper
                out.append([label, paper, measured, f"{ratio:.2f}x", note])
            else:
                out.append([label, paper, measured, "-", note])
        return out

    def render(self) -> str:
        return format_table(
            ["case", f"paper [{self.unit}]", f"measured [{self.unit}]",
             "measured/paper", "note"],
            self.ratio_rows(),
            title=self.title,
        )

    def max_abs_log_ratio(self) -> float:
        """max |log2(measured/paper)| over numeric rows — a shape metric."""
        import math

        worst = 0.0
        for _label, paper, measured, _note in self.rows:
            if (
                isinstance(paper, (int, float))
                and isinstance(measured, (int, float))
                and paper > 0
                and measured > 0
            ):
                worst = max(worst, abs(math.log2(measured / paper)))
        return worst

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def planner_summary(stats) -> str:
    """One-line supply-schedule plane summary for benchmark reports.

    Takes an aggregate :class:`~repro.simulation.stats.PlannerStats`
    (e.g. from ``collect_planner_stats``) and renders the planning,
    replication, and cruise-induction counters in one scannable line.
    """
    return (
        f"planner: hit {stats.hit_rate:.2f} "
        f"meanwin {stats.mean_window:.1f}cy "
        f"coplans {stats.coplans:,} | replication: "
        f"{stats.replications:,} trains x {stats.mean_train_rounds:.2f} "
        f"rounds (hit {stats.replication_hit_rate:.2f}) | cruise: "
        f"{stats.cruise_rounds:,} rounds in {stats.cruise_commits:,} "
        f"bursts (induction hit {stats.cruise_hit_rate:.2f})"
        + (
            f" | macro: {stats.ff_jumps:,} jumps x "
            f"{stats.mean_ff_chain_len:.1f} relay sessions, "
            f"{stats.ff_bulk_rounds:,} bulk rounds over "
            f"{stats.ff_cycles:,}cy"
            if stats.ff_windows else ""
        )
        + (
            # A disarmed plane looks identical to a never-tried one in
            # the counters (all ff zeros); say "permanently refused" and
            # why, so the zeros read as a verdict, not an absence.
            f" | macro: DISARMED"
            + (f" ({stats.ff_disarm_reason})"
               if stats.ff_disarm_reason else "")
            if getattr(stats, "ff_disarms", 0) else ""
        )
    )


def shard_timing_summary(timings: list[dict]) -> str:
    """Per-shard wall-clock phase table for sharded benchmark reports.

    Takes the ``ProgramResult.transport.shard_timing`` list (one
    ``FinalReport.timing`` dict per shard) and renders where each
    worker's wall-clock went: simulating (``compute``), encoding and
    decoding boundary records (``serialize``), or blocked on the control
    pipe (``ipc wait``) — plus the exchange-round counters that show how
    hard the self-paced inner loop worked. Empty input (sequential or
    in-process runs) renders as a single note line; a shard whose entry
    is ``None``/empty (the worker aborted before its first epoch) gets a
    placeholder row. A *non-empty* entry must carry exactly the
    canonical schema (:data:`repro.trace.TIMING_FIELDS` — the same one
    the trace exporter's wall lanes consume): a malformed dict raises
    ``ValueError`` loudly instead of being rendered as zeros.
    """
    from ..trace import validate_timing

    if not timings:
        return "shard timing: n/a (no worker processes)"
    rows = []
    for i, t in enumerate(timings):
        if validate_timing(t, where=f"shard {i} timing") is None:
            # A worker that aborted before its first epoch reports no
            # timing dict (or an empty one); render a placeholder row
            # instead of crashing so the rest of the table survives.
            rows.append([f"shard {i}", "-", "-", "-", "-", "-"])
            continue
        # An aborted worker reports unmeasured phases as None: the
        # schema validated above, so count those as zero here.
        rows.append([
            f"shard {i}",
            f"{(t['compute_s'] or 0.0) * 1e3:.1f}",
            f"{(t['serialize_s'] or 0.0) * 1e3:.1f}",
            f"{(t['ipc_wait_s'] or 0.0) * 1e3:.1f}",
            t["inner_rounds"] or 0,
            t["outer_rounds"] or 0,
        ])
    return format_table(
        ["shard", "compute [ms]", "serialize [ms]", "ipc wait [ms]",
         "inner rounds", "outer rounds"],
        rows,
        title="Per-shard wall-clock breakdown",
    )


def burst_summary(engine) -> str:
    """One-line burst fast-path summary for benchmark reports.

    Aggregates the per-FIFO counters kept by the simulator's burst data
    plane (``HardwareConfig.burst_mode``): how many multi-item bursts
    moved through the FIFO layer, how many items they carried, and the
    mean burst length. All-zero counters mean the run was per-flit.
    """
    from ..simulation.stats import collect_burst_stats

    total = collect_burst_stats(engine)
    if not total.bursts:
        return "bursts: none (per-flit data plane)"
    return (
        f"bursts: {total.bursts:,} moving {total.items:,} items "
        f"(mean length {total.mean_length:.2f})"
    )
