"""Measurement runners shared by the benchmark suite and the CLI.

Each runner regenerates one experiment: it executes the cycle simulator up
to a size threshold, extends the sweep with the validated analytical model
where cycle simulation would be too slow (points are labelled ``sim`` /
``model``), adds the host-baseline curve, and returns rows ready for a
paper-vs-measured report.

When a runner is called without an explicit ``config``, the platform
model is resolved by :func:`default_config` from the environment —
``REPRO_PRESET`` (a :data:`repro.core.config.HW_PRESETS` name),
``REPRO_BACKEND`` and ``REPRO_SHARDS`` — which is how the ``smi-bench``
CLI's ``--preset``/``--backend`` flags reach every experiment without
code edits. Runner kernels communicate their measurements through
``smi.store`` (not closures), so every runner works unchanged under the
process-sharded backend, where kernels execute in worker processes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..codegen.metadata import OpDecl
from ..core.config import HardwareConfig, hardware_preset
from ..core.datatypes import SMI_FLOAT, SMI_INT, SMIDatatype
from ..core.program import SMIProgram
from ..hostexec import NOCTUA_HOST, HostPathModel
from ..network.topology import Topology, noctua_bus, noctua_torus, torus2d
from ..perfmodel import (
    bcast_cycles,
    p2p_bandwidth_gbps,
    p2p_stream,
    reduce_cycles,
)

#: Element-count threshold above which sweeps switch from the cycle
#: simulator to the validated analytical model.
SIM_ELEMENT_LIMIT = 1 << 17  # 128 Ki elements (512 KiB of floats)


def default_config() -> HardwareConfig:
    """The runners' default platform model, environment-overridable.

    ``REPRO_PRESET`` selects a named :data:`~repro.core.config.HW_PRESETS`
    entry (default ``noctua``); ``REPRO_BACKEND`` and ``REPRO_SHARDS``
    select the execution backend on top (default sequential), and
    ``REPRO_SHARD_TRANSPORT`` the process backend's boundary transport
    (``auto``/``shm``/``pipe``). ``REPRO_MACRO_CRUISE=1`` enables the
    macro-cruise whole-program fast-forward on top of whichever preset
    was chosen (``0``/``""``/``false``/``no`` force it off), and
    ``REPRO_TRACE=1`` the cycle-domain flight recorder (same falsy
    set forces it off; ``REPRO_TRACE_OUT`` names the export file,
    consumed by ``SMIProgram.run``). The ``smi-bench`` CLI sets these
    from ``--preset``/``--backend``/``--shard-transport``/
    ``--macro-cruise``/``--trace``.
    """
    config = hardware_preset(os.environ.get("REPRO_PRESET", "noctua"))
    backend = os.environ.get("REPRO_BACKEND")
    if backend:
        shards = int(os.environ.get("REPRO_SHARDS", "2"))
        config = config.with_(backend=backend,
                              shards=1 if backend == "sequential" else shards)
    transport = os.environ.get("REPRO_SHARD_TRANSPORT")
    if transport:
        config = config.with_(shard_transport=transport)
    macro = os.environ.get("REPRO_MACRO_CRUISE")
    if macro is not None:
        # An empty string is an explicit "off", same as "0": the CLI
        # clears a stale opt-in by writing a falsy value, and a leaked
        # empty var must not silently keep the previous run's setting.
        config = config.with_(
            macro_cruise=macro not in ("", "0", "false", "no"))
    trace = os.environ.get("REPRO_TRACE")
    if trace is not None:
        config = config.with_(trace=trace not in ("", "0", "false", "no"))
    return config


# ----------------------------------------------------------------------
# Fig. 9 — bandwidth
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    size: int          # message size (bytes for fig9, elements for 10/11)
    value: float
    source: str        # "sim" | "model" | "host-model"


def _snapshot_planner_stats(transport, out: dict | None) -> None:
    """Fill ``out`` with aggregate burst-planner counters (if asked)."""
    if out is None:
        return
    from ..simulation.stats import collect_planner_stats

    stats = collect_planner_stats(transport)
    out.update(
        attempts=stats.attempts,
        windows=stats.windows,
        extensions=stats.extensions,
        coplans=stats.coplans,
        takes=stats.takes,
        hit_rate=round(stats.hit_rate, 4),
        mean_window=round(stats.mean_window, 2),
        pattern_checks=stats.pattern_checks,
        replications=stats.replications,
        replicated_rounds=stats.replicated_rounds,
        replication_hit_rate=round(stats.replication_hit_rate, 4),
        mean_train_rounds=round(stats.mean_train_rounds, 2),
        cruise_checks=stats.cruise_checks,
        cruise_commits=stats.cruise_commits,
        cruise_rounds=stats.cruise_rounds,
        cruise_hit_rate=round(stats.cruise_hit_rate, 4),
        ff_windows=stats.ff_windows,
        ff_cycles=stats.ff_cycles,
        ff_takes=stats.ff_takes,
        lane_extends=stats.lane_extends,
        ff_bulk_rounds=stats.ff_bulk_rounds,
        ff_jumps=stats.ff_jumps,
        ff_chain_hops=stats.ff_chain_hops,
        ff_disarms=stats.ff_disarms,
        mean_ff_chain_len=round(stats.mean_ff_chain_len, 2),
        mean_ff_span=round(stats.mean_ff_span, 2),
    )


def measure_stream_sim(
    n_elements: int,
    hops: int,
    dtype: SMIDatatype = SMI_FLOAT,
    config: HardwareConfig | None = None,
    topology: Topology | None = None,
    app_width: int = 8,
    planner_stats: dict | None = None,
) -> int:
    """Cycle-simulate one stream; returns elapsed cycles at the receiver.

    ``planner_stats`` (optional dict) receives the run's aggregate burst
    planner counters — window hit rate, mean committed window length,
    cascade co-plans — for the perf-trajectory reports.
    """
    config = config or default_config()
    topology = topology or noctua_bus()
    prog = SMIProgram(topology, config=config)

    def snd(smi):
        ch = smi.open_send_channel(n_elements, dtype, hops, 0)
        data = np.zeros(n_elements, dtype=dtype.np_dtype)
        yield from ch.push_vec(data, width=app_width)

    def rcv(smi):
        ch = smi.open_recv_channel(n_elements, dtype, 0, 0)
        yield from ch.pop_vec(n_elements, width=app_width)
        smi.store("end", smi.cycle)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, dtype, peer=hops)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, dtype, peer=0)])
    res = prog.run(max_cycles=500_000_000)
    assert res.completed, res.reason
    _snapshot_planner_stats(res.transport, planner_stats)
    return res.store(hops, "end")


def bandwidth_sweep(
    sizes_bytes: list[int],
    hops: int,
    config: HardwareConfig | None = None,
    dtype: SMIDatatype = SMI_FLOAT,
    sim_limit_elements: int = SIM_ELEMENT_LIMIT,
) -> list[SweepPoint]:
    """SMI payload bandwidth (Gbit/s) per message size (Fig. 9 series)."""
    config = config or default_config()
    points = []
    for size in sizes_bytes:
        n = max(1, size // dtype.size)
        if n <= sim_limit_elements:
            cycles = measure_stream_sim(n, hops, dtype, config)
            secs = config.cycles_to_seconds(cycles)
            bw = n * dtype.size * 8 / secs / 1e9
            points.append(SweepPoint(size, bw, "sim"))
        else:
            bw = p2p_bandwidth_gbps(n, dtype, hops, config, app_width=8)
            points.append(SweepPoint(size, bw, "model"))
    return points


def host_bandwidth_sweep(
    sizes_bytes: list[int], host: HostPathModel = NOCTUA_HOST
) -> list[SweepPoint]:
    return [
        SweepPoint(size, host.p2p_bandwidth_gbps(size), "host-model")
        for size in sizes_bytes
    ]


# ----------------------------------------------------------------------
# Table 3 — latency
# ----------------------------------------------------------------------
def measure_pingpong_us(
    hops: int,
    config: HardwareConfig | None = None,
    topology: Topology | None = None,
) -> float:
    """Half round-trip of a 1-element message over ``hops`` hops (§5.3.2)."""
    config = config or default_config()
    topology = topology or noctua_bus()
    prog = SMIProgram(topology, config=config)

    def origin(smi):
        s = smi.open_send_channel(1, SMI_INT, hops, 0)
        r = smi.open_recv_channel(1, SMI_INT, hops, 1)
        start = smi.cycle
        yield from smi.push(s, 1)
        yield from smi.pop(r)
        smi.store("rtt", smi.cycle - start)

    def reflector(smi):
        r = smi.open_recv_channel(1, SMI_INT, 0, 0)
        s = smi.open_send_channel(1, SMI_INT, 0, 1)
        v = yield from smi.pop(r)
        yield from smi.push(s, v)

    prog.add_kernel(origin, rank=0,
                    ops=[OpDecl("send", 0, SMI_INT, peer=hops),
                         OpDecl("recv", 1, SMI_INT, peer=hops)])
    prog.add_kernel(reflector, rank=hops,
                    ops=[OpDecl("recv", 0, SMI_INT, peer=0),
                         OpDecl("send", 1, SMI_INT, peer=0)])
    res = prog.run(max_cycles=5_000_000)
    assert res.completed, res.reason
    return config.cycles_to_us(res.store(0, "rtt")) / 2


# ----------------------------------------------------------------------
# Table 4 — injection rate
# ----------------------------------------------------------------------
def measure_injection_cycles(read_burst: int, packets: int = 400,
                             config: HardwareConfig | None = None) -> float:
    """Average cycles per packet injected from one endpoint (§5.3.3).

    4 CKS/CKR pairs are instantiated (torus wiring); one application
    endpoint streams continuously; the CKS therefore polls 5 inputs.
    """
    cfg = (config or default_config()).with_(read_burst=read_burst)
    n = packets * SMI_FLOAT.elements_per_packet
    cycles = measure_stream_sim(n, 1, SMI_FLOAT, cfg, topology=noctua_torus())
    # Subtract the constant path latency to isolate the steady-state gap.
    startup = p2p_stream(1, SMI_FLOAT, 1, cfg).cycles
    return (cycles - startup) / packets


# ----------------------------------------------------------------------
# Figs. 10-11 — collective sweeps
# ----------------------------------------------------------------------
def measure_bcast_sim_us(
    n: int, topology: Topology, num_ranks: int,
    config: HardwareConfig | None = None,
    planner_stats: dict | None = None,
) -> float:
    config = config or default_config()
    prog = SMIProgram(topology, config=config)
    comm_members = list(range(num_ranks))

    def kernel(smi):
        comm = (smi.comm_world.sub(comm_members)
                if num_ranks < topology.num_ranks else smi.comm_world)
        if not comm.contains(smi.rank):
            return
            yield  # pragma: no cover
        chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0, comm)
        for i in range(n):
            yield from chan.bcast(float(i) if smi.rank == 0 else None)
        smi.store("end", smi.cycle)

    prog.add_kernel(kernel, ranks="all", ops=[OpDecl("bcast", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=500_000_000)
    assert res.completed, res.reason
    _snapshot_planner_stats(res.transport, planner_stats)
    ends = [res.store(r, "end") for r in comm_members]
    return config.cycles_to_us(max(ends))


def measure_reduce_sim_us(
    n: int, topology: Topology, num_ranks: int,
    config: HardwareConfig | None = None,
    planner_stats: dict | None = None,
) -> float:
    config = config or default_config()
    prog = SMIProgram(topology, config=config)
    comm_members = list(range(num_ranks))

    def kernel(smi):
        from ..core.ops import SMI_ADD

        comm = (smi.comm_world.sub(comm_members)
                if num_ranks < topology.num_ranks else smi.comm_world)
        if not comm.contains(smi.rank):
            return
            yield  # pragma: no cover
        chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD, 0, 0, comm)
        for i in range(n):
            yield from chan.reduce(float(smi.rank + i))
        smi.store("end", smi.cycle)

    from ..core.ops import SMI_ADD

    prog.add_kernel(kernel, ranks="all",
                    ops=[OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)])
    res = prog.run(max_cycles=500_000_000)
    assert res.completed, res.reason
    _snapshot_planner_stats(res.transport, planner_stats)
    ends = [res.store(r, "end") for r in comm_members]
    return config.cycles_to_us(max(ends))


def _chain_hops(topology: Topology, num_ranks: int) -> float:
    """Mean hop distance between consecutive chain ranks.

    The linear collectives relay along rank order, so the distance that
    sets their rendezvous/fill/stall terms is between chain neighbours,
    not from the root (see :mod:`repro.perfmodel.collectives`).
    """
    hops = topology.hop_matrix()
    return float(np.mean([hops[r][r + 1] for r in range(num_ranks - 1)]))


def collective_sweep(
    kind: str,
    sizes_elements: list[int],
    topology: Topology,
    num_ranks: int,
    config: HardwareConfig | None = None,
    sim_limit_elements: int = 1 << 13,
) -> list[SweepPoint]:
    """SMI collective time (us) per message size, sim + model points."""
    config = config or default_config()
    chain_hops = _chain_hops(topology, num_ranks)
    points = []
    for n in sizes_elements:
        if n <= sim_limit_elements:
            if kind == "bcast":
                us = measure_bcast_sim_us(n, topology, num_ranks, config)
            elif kind == "reduce":
                us = measure_reduce_sim_us(n, topology, num_ranks, config)
            else:
                raise ValueError(f"unknown collective sweep kind {kind!r}")
            points.append(SweepPoint(n, us, "sim"))
        else:
            if kind == "bcast":
                cyc = bcast_cycles(n, SMI_FLOAT, num_ranks, chain_hops,
                                   config)
            else:
                cyc = reduce_cycles(n, SMI_FLOAT, num_ranks, chain_hops,
                                    config)
            points.append(SweepPoint(n, config.cycles_to_us(cyc), "model"))
    return points


def host_collective_sweep(
    kind: str,
    sizes_elements: list[int],
    num_ranks: int,
    host: HostPathModel = NOCTUA_HOST,
) -> list[SweepPoint]:
    fn = host.bcast_time_s if kind == "bcast" else host.reduce_time_s
    return [
        SweepPoint(n, fn(n, SMI_FLOAT, num_ranks) * 1e6, "host-model")
        for n in sizes_elements
    ]
