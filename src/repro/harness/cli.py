"""Experiment CLI: regenerate any paper table/figure from the command line.

Usage::

    smi-bench table1|table2|table3|table4|fig9|fig10|fig11|fig13|fig15|fig16
    smi-bench all            # everything (slowest)
    smi-bench fig9 --full    # include paper-scale model-only points
    smi-bench fig9 --preset noctua-deep       # deep-buffer regime
    smi-bench fig10 --backend sharded --shards 2   # sharded simulation

``--preset`` selects a named hardware preset (``noctua`` /
``noctua-deep`` / ``noctua-xdeep``, see
:func:`repro.core.config.hardware_preset`), and ``--backend`` the
simulation backend (``sequential`` / ``sharded`` / ``process``, see
:mod:`repro.shard`) with ``--shards`` fabric partitions — so any
experiment runs under any buffer regime and execution backend without
code edits; ``--shard-transport`` additionally picks the process
backend's boundary transport (shared-memory rings vs the coordinator
pipe), and ``--macro-cruise`` turns on the whole-program analytical
fast-forward (see docs/ARCHITECTURE.md, "Macro-cruise fast-forward")
on top of the chosen preset. ``--trace out.json`` turns on the
cycle-domain flight recorder (see docs/ARCHITECTURE.md,
"Observability & tracing") and writes every simulated point's merged
timeline to the given file — ``.json`` is Chrome/Perfetto trace-event
format, ``.jsonl`` the compact line form. The flags reach the
measurement runners through the
``REPRO_PRESET`` / ``REPRO_BACKEND`` / ``REPRO_SHARDS`` /
``REPRO_SHARD_TRANSPORT`` / ``REPRO_MACRO_CRUISE`` / ``REPRO_TRACE`` /
``REPRO_TRACE_OUT`` environment
variables (:func:`repro.harness.runners.default_config` and
``SMIProgram.run``'s export hook).
"""

from __future__ import annotations

import argparse
import os
import sys

EXPERIMENTS = (
    "table1", "table2", "table3", "table4",
    "fig9", "fig10", "fig11", "fig13", "fig15", "fig16",
)


def run_experiment(name: str) -> None:
    # Imports are local so each invocation only pays for what it runs.
    if name == "table1":
        import importlib

        mod = importlib.import_module("bench_table1_resources")
        mod.build_table1_report().print()
    elif name == "table2":
        import importlib

        mod = importlib.import_module("bench_table2_collective_resources")
        mod.build_table2_report().print()
    elif name == "table3":
        import importlib

        mod = importlib.import_module("bench_table3_latency")
        mod.build_table3_report().print()
    elif name == "table4":
        import importlib

        mod = importlib.import_module("bench_table4_injection")
        mod.build_table4_report().print()
    elif name == "fig9":
        import importlib

        mod = importlib.import_module("bench_fig9_bandwidth")
        _print_series(mod.build_fig9_series(), mod.sweep_sizes(), "bytes",
                      "Fig. 9: bandwidth [Gbit/s]")
    elif name == "fig10":
        import importlib

        mod = importlib.import_module("bench_fig10_bcast")
        _print_series(mod.build_fig10_series(), mod.sweep_sizes(), "elems",
                      "Fig. 10: Bcast time [usec]")
    elif name == "fig11":
        import importlib

        mod = importlib.import_module("bench_fig11_reduce")
        _print_series(mod.build_fig11_series(), mod.sweep_sizes(), "elems",
                      "Fig. 11: Reduce time [usec]")
    elif name == "fig13":
        import importlib

        mod = importlib.import_module("bench_fig13_gesummv")
        mod.build_fig13_report().print()
    elif name == "fig15":
        import importlib

        mod = importlib.import_module("bench_fig15_stencil_strong")
        mod.build_fig15_report().print()
    elif name == "fig16":
        import importlib

        mod = importlib.import_module("bench_fig16_stencil_weak")
        from .paperdata import FIG16_GRID_SIZES
        from .reporting import format_table

        series = mod.build_fig16_series()
        rows = [
            [f"{s}x{s}", round(series["4 Ranks"][s], 3),
             round(series["8 Ranks"][s], 3)]
            for s in FIG16_GRID_SIZES
        ]
        print(format_table(["grid", "4 ranks [ns/pt]", "8 ranks [ns/pt]"],
                           rows, title="Fig. 16: stencil weak scaling"))
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)


def _print_series(series: dict, sizes: list[int], size_label: str,
                  title: str) -> None:
    from .reporting import format_table

    rows = [
        [size] + [f"{series[k][i].value:,.2f} ({series[k][i].source})"
                  for k in series]
        for i, size in enumerate(sizes)
    ]
    print(format_table([size_label] + list(series), rows, title=title))


def _preset_names() -> tuple[str, ...]:
    from repro.core.config import HW_PRESETS

    return tuple(sorted(HW_PRESETS))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="smi-bench",
        description="Regenerate the SMI paper's tables and figures.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS + ("all",))
    parser.add_argument("--full", action="store_true",
                        help="extend sweeps to paper-scale sizes "
                             "(model-backed points)")
    parser.add_argument("--preset", default=None,
                        choices=_preset_names(),
                        help="hardware preset the simulated points run on "
                             "(default: noctua)")
    parser.add_argument("--backend", default=None,
                        choices=("sequential", "sharded", "process"),
                        help="simulation backend for the simulated points "
                             "(default: sequential)")
    parser.add_argument("--shards", type=int, default=None,
                        help="fabric partitions for the sharded backends "
                             "(default: 2; requires --backend)")
    parser.add_argument("--shard-transport", default=None,
                        choices=("auto", "shm", "pipe"),
                        help="process-backend boundary transport: "
                             "shared-memory rings or the coordinator pipe "
                             "(default: auto; requires --backend process)")
    parser.add_argument("--macro-cruise", action="store_true",
                        help="enable the whole-program analytical "
                             "fast-forward for the simulated points "
                             "(implies the full cruise gate chain)")
    parser.add_argument("--trace", default=None, metavar="OUT",
                        help="record a cycle-domain trace of the simulated "
                             "points and write the merged timeline to OUT "
                             "(.json = Chrome/Perfetto trace-event format, "
                             ".jsonl = compact lines)")
    args = parser.parse_args(argv)
    if args.shards is not None and args.backend not in ("sharded",
                                                        "process"):
        parser.error("--shards requires --backend sharded|process")
    if args.shard_transport is not None and args.backend != "process":
        parser.error("--shard-transport requires --backend process")
    if args.full:
        os.environ["REPRO_FULL_SWEEP"] = "1"
    if args.preset:
        os.environ["REPRO_PRESET"] = args.preset
    if args.backend:
        os.environ["REPRO_BACKEND"] = args.backend
        os.environ["REPRO_SHARDS"] = str(args.shards or 2)
    if args.shard_transport:
        os.environ["REPRO_SHARD_TRANSPORT"] = args.shard_transport
    if args.macro_cruise:
        os.environ["REPRO_MACRO_CRUISE"] = "1"
    else:
        # Two-way plumbing: an absent flag must clear a stale opt-in,
        # or back-to-back in-process invocations leak the setting into
        # runs that asked for it off.
        os.environ["REPRO_MACRO_CRUISE"] = "0"
    if args.trace:
        os.environ["REPRO_TRACE"] = "1"
        os.environ["REPRO_TRACE_OUT"] = args.trace
    else:
        # Same two-way discipline as --macro-cruise above.
        os.environ["REPRO_TRACE"] = "0"
        os.environ["REPRO_TRACE_OUT"] = ""
    # The benchmark modules live in benchmarks/, importable from the repo
    # root; fall back gracefully when invoked from elsewhere.
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    bench_dir = os.path.join(here, "benchmarks")
    if os.path.isdir(bench_dir) and bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        run_experiment(name)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
