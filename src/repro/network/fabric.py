"""Cluster fabric: instantiate the physical network inside a simulation.

Given a :class:`~repro.network.topology.Topology` and a
:class:`~repro.core.config.HardwareConfig`, build the directed
:class:`~repro.network.link.Link` pair for every cable, indexed so the
transport layer can fetch "the link behind my interface i".
"""

from __future__ import annotations

from ..core.config import HardwareConfig
from ..core.errors import TopologyError
from .link import Link
from .topology import Topology


class Fabric:
    """All physical links of the cluster, plus endpoint lookups."""

    def __init__(
        self,
        engine,
        topology: Topology,
        config: HardwareConfig,
        validate_wire: bool = False,
    ) -> None:
        if topology.num_interfaces > config.num_interfaces:
            raise TopologyError(
                f"topology {topology.name!r} needs {topology.num_interfaces} "
                f"interfaces but the platform has {config.num_interfaces}"
            )
        self.engine = engine
        self.topology = topology
        self.config = config
        # Directed links keyed by transmitting endpoint (rank, iface).
        self.tx_link: dict[tuple[int, int], Link] = {}
        # Directed links keyed by receiving endpoint (rank, iface).
        self.rx_link: dict[tuple[int, int], Link] = {}
        for conn in topology.connections:
            for src, dst in ((conn.a, conn.b), (conn.b, conn.a)):
                link = Link(
                    engine, src, dst,
                    latency_cycles=config.link_latency_cycles,
                    cycles_per_packet=config.link_cycles_per_packet,
                    validate=validate_wire,
                )
                self.tx_link[src] = link
                self.rx_link[dst] = link

    def outgoing(self, rank: int, iface: int) -> Link | None:
        """The link transmitting from ``rank:iface`` (None if unwired)."""
        return self.tx_link.get((rank, iface))

    def incoming(self, rank: int, iface: int) -> Link | None:
        """The link delivering into ``rank:iface`` (None if unwired)."""
        return self.rx_link.get((rank, iface))

    def links(self) -> list[Link]:
        """All directed links."""
        return list(self.tx_link.values())

    def total_packets(self) -> int:
        """Packets carried across the whole fabric."""
        return sum(link.packets for link in self.links())
