"""Cluster fabric: instantiate the physical network inside a simulation.

Given a :class:`~repro.network.topology.Topology` and a
:class:`~repro.core.config.HardwareConfig`, build the directed
:class:`~repro.network.link.Link` pair for every cable, indexed so the
transport layer can fetch "the link behind my interface i".
"""

from __future__ import annotations

from ..core.config import HardwareConfig
from ..core.errors import TopologyError
from .link import Link
from .topology import Topology


class Fabric:
    """All physical links of the cluster, plus endpoint lookups."""

    def __init__(
        self,
        engine,
        topology: Topology,
        config: HardwareConfig,
        validate_wire: bool = False,
        local_ranks: frozenset[int] | set[int] | None = None,
    ) -> None:
        if topology.num_interfaces > config.num_interfaces:
            raise TopologyError(
                f"topology {topology.name!r} needs {topology.num_interfaces} "
                f"interfaces but the platform has {config.num_interfaces}"
            )
        self.engine = engine
        self.topology = topology
        self.config = config
        self.local_ranks = local_ranks
        # Directed links keyed by transmitting endpoint (rank, iface).
        self.tx_link: dict[tuple[int, int], Link] = {}
        # Directed links keyed by receiving endpoint (rank, iface).
        self.rx_link: dict[tuple[int, int], Link] = {}
        for conn in topology.connections:
            for src, dst in ((conn.a, conn.b), (conn.b, conn.a)):
                if local_ranks is not None and src[0] not in local_ranks \
                        and dst[0] not in local_ranks:
                    continue  # a sharded build only owns links it touches
                link = Link(
                    engine, src, dst,
                    latency_cycles=config.link_latency_cycles,
                    cycles_per_packet=config.link_cycles_per_packet,
                    validate=validate_wire,
                )
                self.tx_link[src] = link
                self.rx_link[dst] = link

    def outgoing(self, rank: int, iface: int) -> Link | None:
        """The link transmitting from ``rank:iface`` (None if unwired)."""
        return self.tx_link.get((rank, iface))

    def incoming(self, rank: int, iface: int) -> Link | None:
        """The link delivering into ``rank:iface`` (None if unwired)."""
        return self.rx_link.get((rank, iface))

    def links(self) -> list[Link]:
        """All directed links."""
        return list(self.tx_link.values())

    def boundary_links(self) -> list[tuple[Link, bool]]:
        """Directed links crossing the shard cut (sharded builds only).

        Each entry is ``(link, src_is_local)``: ``True`` for the
        transmitting (producer) side of the cut, ``False`` for the
        receiving (consumer) side. Empty for unsharded builds.
        """
        if self.local_ranks is None:
            return []
        out = []
        for link in self.tx_link.values():
            src_local = link.src[0] in self.local_ranks
            dst_local = link.dst[0] in self.local_ranks
            if src_local != dst_local:
                out.append((link, src_local))
        return out

    def total_packets(self) -> int:
        """Packets carried across the whole fabric."""
        return sum(link.packets for link in self.links())
