"""Route generation (§4.3, §4.5).

SMI uses *static* routing: before an application starts, a route generator
computes, for every (rank, destination) pair, which network interface packets
must leave through. The tables are uploaded at runtime — changing topology or
scaling ranks requires only new tables, never a bitstream rebuild.

The paper computes "deadlock-free routing scheme[s]" following Domke et
al. [8]. We provide:

* ``shortest`` — hop-by-hop minimal routing: each rank forwards towards the
  neighbour with the smallest remaining BFS distance (deterministic
  tie-break by neighbour rank, then interface index). Paths are minimal;
  deadlock freedom is *verified* (not guaranteed) via the channel-dependency
  graph below. On the evaluation's linear bus it is provably acyclic.
* ``tree`` — routing restricted to a BFS spanning tree. Paths may be longer,
  but the channel dependency graph of a tree is always acyclic, so this
  scheme is unconditionally deadlock-free (the classic up*/down* fallback).
* ``auto`` — ``shortest`` if its channel-dependency graph is acyclic,
  otherwise ``tree``.

Deadlock freedom is checked with Dally & Seitz's criterion: build the
*channel dependency graph* whose nodes are directed links and whose edges
connect consecutive links on any routed path; routing is deadlock-free iff
this graph is acyclic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import networkx as nx

from ..core.errors import RoutingError
from .topology import Topology

#: Adjacency entry: (iface, peer_rank, peer_iface).
AdjEntry = tuple[int, int, int]


def _adjacency(topology: Topology) -> list[list[AdjEntry]]:
    """Per-rank sorted adjacency (iface, peer rank, peer iface)."""
    adj: list[list[AdjEntry]] = [[] for _ in range(topology.num_ranks)]
    for conn in topology.connections:
        (ra, ia), (rb, ib) = conn.a, conn.b
        adj[ra].append((ia, rb, ib))
        adj[rb].append((ib, ra, ia))
    for entries in adj:
        entries.sort()
    return adj


def _bfs_distances(adj: list[list[AdjEntry]], source: int) -> list[int]:
    """Hop distances from ``source`` to every rank (-1 if unreachable)."""
    dist = [-1] * len(adj)
    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for _iface, v, _pi in adj[u]:
            if dist[v] < 0:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def _bfs_tree_parent(adj: list[list[AdjEntry]], root: int) -> list[int | None]:
    """Deterministic BFS tree: parent[rank] (None at root / unreachable)."""
    parent: list[int | None] = [None] * len(adj)
    seen = [False] * len(adj)
    seen[root] = True
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for _iface, v, _pi in adj[u]:
            if not seen[v]:
                seen[v] = True
                parent[v] = u
                queue.append(v)
    return parent


@dataclass
class Routes:
    """Routing tables: for each rank, the egress interface per destination.

    ``next_iface[rank][dst]`` is the local network interface through which
    ``rank`` forwards packets destined to ``dst`` (``None`` for the local
    rank itself). These are exactly the tables the CKS modules index by
    destination rank (§4.3); CKR port tables are derived at transport-build
    time from the program's port→endpoint assignment.
    """

    topology: Topology
    scheme: str
    next_iface: list[dict[int, int | None]]
    deadlock_free: bool = field(default=False)

    def egress(self, rank: int, dst: int) -> int | None:
        """Interface through which ``rank`` sends packets towards ``dst``."""
        try:
            return self.next_iface[rank][dst]
        except (IndexError, KeyError):
            raise RoutingError(f"no route entry for {rank}->{dst}") from None

    def path(self, src: int, dst: int) -> list[int]:
        """The rank sequence a packet follows from ``src`` to ``dst``."""
        path = [src]
        cur = src
        guard = 0
        while cur != dst:
            iface = self.egress(cur, dst)
            if iface is None:
                raise RoutingError(f"routing loop or dead end at {cur} -> {dst}")
            peer = self.topology.peer(cur, iface)
            if peer is None:
                raise RoutingError(
                    f"table at rank {cur} uses unconnected interface {iface}"
                )
            cur = peer[0]
            path.append(cur)
            guard += 1
            if guard > self.topology.num_ranks:
                raise RoutingError(f"routing loop detected for {src} -> {dst}")
        return path

    def hops(self, src: int, dst: int) -> int:
        """Number of link traversals from ``src`` to ``dst``."""
        return len(self.path(src, dst)) - 1

    def link_path(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Directed links (rank, egress iface) traversed from src to dst."""
        links = []
        cur = src
        while cur != dst:
            iface = self.egress(cur, dst)
            links.append((cur, iface))
            cur = self.topology.peer(cur, iface)[0]
        return links

    def to_dict(self) -> dict:
        """Serializable form (what `smi-routes` writes per rank)."""
        return {
            "scheme": self.scheme,
            "deadlock_free": self.deadlock_free,
            "topology": self.topology.name,
            "tables": [
                {str(dst): iface for dst, iface in table.items()}
                for table in self.next_iface
            ],
        }


def channel_dependency_graph(routes: Routes) -> nx.DiGraph:
    """Dally & Seitz channel dependency graph of all-pairs routed paths."""
    cdg = nx.DiGraph()
    n = routes.topology.num_ranks
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            links = routes.link_path(src, dst)
            for link in links:
                cdg.add_node(link)
            for a, b in zip(links, links[1:]):
                cdg.add_edge(a, b)
    return cdg


def is_deadlock_free(routes: Routes) -> bool:
    """True iff the channel dependency graph is acyclic."""
    cdg = channel_dependency_graph(routes)
    return nx.is_directed_acyclic_graph(cdg)


def _shortest_tables(topology: Topology) -> list[dict[int, int | None]]:
    adj = _adjacency(topology)
    n = topology.num_ranks
    # dist[d][u]: hop distance from u to destination d (undirected graph).
    dist = [_bfs_distances(adj, d) for d in range(n)]
    tables: list[dict[int, int | None]] = []
    for rank in range(n):
        table: dict[int, int | None] = {rank: None}
        for dst in range(n):
            if dst == rank:
                continue
            if dist[dst][rank] < 0:
                raise RoutingError(
                    f"rank {dst} unreachable from rank {rank} in topology "
                    f"{topology.name!r}"
                )
            best: tuple | None = None
            for iface, peer, _pi in adj[rank]:
                d = dist[dst][peer]
                if d < 0:
                    continue
                key = (d, peer, iface)
                if best is None or key < best:
                    best = key
            assert best is not None
            table[dst] = best[2]
        tables.append(table)
    return tables


def _tree_tables(topology: Topology, root: int = 0) -> list[dict[int, int | None]]:
    adj = _adjacency(topology)
    n = topology.num_ranks
    parent = _bfs_tree_parent(adj, root)
    for rank in range(n):
        if rank != root and parent[rank] is None:
            raise RoutingError(
                f"rank {rank} unreachable from root {root} in topology "
                f"{topology.name!r}"
            )

    def iface_towards(rank: int, neighbor: int) -> int:
        for iface, peer, _pi in adj[rank]:
            if peer == neighbor:
                return iface
        raise RoutingError(f"no link {rank} -> {neighbor}")  # pragma: no cover

    # children of each node in the tree
    children: list[list[int]] = [[] for _ in range(n)]
    for rank in range(n):
        p = parent[rank]
        if p is not None:
            children[p].append(rank)

    # subtree membership: for each node, the set of ranks below it
    subtree: list[set[int]] = [set() for _ in range(n)]

    def fill(u: int) -> set[int]:
        s = {u}
        for c in children[u]:
            s |= fill(c)
        subtree[u] = s
        return s

    fill(root)

    tables: list[dict[int, int | None]] = []
    for rank in range(n):
        table: dict[int, int | None] = {rank: None}
        for dst in range(n):
            if dst == rank:
                continue
            # Towards the child whose subtree contains dst, else to parent.
            hop = None
            for c in children[rank]:
                if dst in subtree[c]:
                    hop = c
                    break
            if hop is None:
                hop = parent[rank]
            assert hop is not None
            table[dst] = iface_towards(rank, hop)
        tables.append(table)
    return tables


def compute_routes(
    topology: Topology, scheme: str = "auto", tree_root: int = 0
) -> Routes:
    """Generate routing tables for ``topology`` under ``scheme``.

    Raises :class:`RoutingError` if any rank pair is unreachable.
    """
    if scheme not in ("auto", "shortest", "tree"):
        raise RoutingError(f"unknown routing scheme {scheme!r}")
    if scheme in ("auto", "shortest"):
        routes = Routes(topology, "shortest", _shortest_tables(topology))
        routes.deadlock_free = is_deadlock_free(routes)
        if scheme == "shortest" or routes.deadlock_free:
            return routes
        # auto: fall back to provably deadlock-free tree routing.
    routes = Routes(topology, "tree", _tree_tables(topology, tree_root))
    routes.deadlock_free = True  # tree CDG is acyclic by construction
    return routes
