"""Network packet format (§4.1–4.2).

A network packet is the minimal unit of routing and is as wide as the BSP's
I/O channel: 32 bytes. It carries 4 bytes of header and 28 bytes of payload:

* source rank — 1 byte
* destination rank — 1 byte
* port — 1 byte
* operation type — 3 bits, and number of valid payload elements — 5 bits

(the rank and port fields are truncated to 8 bits "to mitigate the penalty of
packet switching", §4.2 — hence at most 256 ranks/ports).

Inside the simulator packets travel as Python objects for speed; the
bit-exact 32-byte encoding is implemented and tested so the wire format of
the reference implementation is fully specified, and the codec is exercised
at the link boundary when ``Link(validate=True)`` is used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from ..core.datatypes import PACKET_BYTES, PAYLOAD_BYTES, SMIDatatype
from ..core.errors import ConfigurationError, SimulationError


class OpType(IntEnum):
    """Packet operation type (3-bit field)."""

    DATA = 0          # point-to-point / collective payload
    SYNC_READY = 1    # Bcast/Scatter rendezvous: receiver is ready (§4.4)
    CREDIT = 2        # Reduce credit release from the root (§4.4)
    GRANT = 3         # Gather: root grants a rank permission to stream
    PING = 4          # latency microbenchmark probe
    PONG = 5          # latency microbenchmark response

    @classmethod
    def from_bits(cls, bits: int) -> "OpType":
        try:
            return cls(bits)
        except ValueError:
            raise SimulationError(f"invalid op-type bits: {bits}") from None


# 5-bit valid-count field limits elements per packet. The paper's smallest
# type (char) yields 28 elements per packet, which fits in 5 bits (<= 31).
MAX_VALID_COUNT = 31


@dataclass
class Packet:
    """One 32-byte network packet.

    ``payload`` is a NumPy array of up to ``dtype.elements_per_packet``
    elements of the message datatype; ``count`` of them are valid. Control
    packets (non-DATA ops) typically carry an empty payload, though CREDIT
    packets reuse ``count`` semantics via the payload of a single element.
    """

    src: int
    dst: int
    port: int
    op: OpType = OpType.DATA
    count: int = 0
    payload: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    dtype: SMIDatatype | None = None

    def __post_init__(self) -> None:
        for name, value in (("src", self.src), ("dst", self.dst), ("port", self.port)):
            if not 0 <= value <= 255:
                raise ConfigurationError(
                    f"packet {name}={value} does not fit the 1-byte header "
                    "field (§4.2 truncates ranks and ports to 8 bits)"
                )
        if not 0 <= self.count <= MAX_VALID_COUNT:
            raise ConfigurationError(
                f"packet count={self.count} does not fit the 5-bit field"
            )
        if self.dtype is not None:
            if self.count > self.dtype.elements_per_packet:
                raise ConfigurationError(
                    f"count={self.count} exceeds capacity "
                    f"{self.dtype.elements_per_packet} of {self.dtype.name}"
                )

    # ------------------------------------------------------------------
    # Wire codec
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the 32-byte wire format."""
        header = bytes(
            (self.src, self.dst, self.port, ((self.op & 0b111) << 5) | self.count)
        )
        if self.dtype is not None and self.count:
            body = np.asarray(self.payload[: self.count], self.dtype.np_dtype).tobytes()
        else:
            body = b""
        if len(body) > PAYLOAD_BYTES:
            raise SimulationError(
                f"payload of {len(body)} B exceeds {PAYLOAD_BYTES} B"
            )
        return header + body + bytes(PAYLOAD_BYTES - len(body))

    @classmethod
    def decode(cls, wire: bytes, dtype: SMIDatatype | None = None) -> "Packet":
        """Deserialize a 32-byte wire packet.

        ``dtype`` is needed to reinterpret payload bytes as elements; it is
        per-port knowledge in SMI (the channel carries the type, §3.1.1).
        """
        if len(wire) != PACKET_BYTES:
            raise SimulationError(
                f"wire packet must be {PACKET_BYTES} B, got {len(wire)}"
            )
        src, dst, port, opcount = wire[0], wire[1], wire[2], wire[3]
        op = OpType.from_bits(opcount >> 5)
        count = opcount & 0b11111
        if dtype is not None and count:
            nbytes = count * dtype.size
            payload = np.frombuffer(wire[4 : 4 + nbytes], dtype=dtype.np_dtype).copy()
        else:
            payload = np.zeros(0, np.uint8)
        return cls(src=src, dst=dst, port=port, op=op, count=count,
                   payload=payload, dtype=dtype)

    # ------------------------------------------------------------------
    @property
    def payload_bytes(self) -> int:
        """Valid payload bytes carried (0 for control packets)."""
        if self.dtype is None:
            return 0
        return self.count * self.dtype.size

    def elements(self) -> np.ndarray:
        """The valid payload elements."""
        return self.payload[: self.count]

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return (
            f"Packet({self.op.name} {self.src}->{self.dst} port={self.port} "
            f"count={self.count})"
        )


def make_data_packets(
    src: int, dst: int, port: int, dtype: SMIDatatype, data: np.ndarray
) -> list[Packet]:
    """Packetise a full message into DATA packets (helper for models/tests).

    The streaming Push path builds packets incrementally; this bulk helper is
    used by analytical models, the host baseline, and tests.
    """
    data = np.asarray(data, dtype=dtype.np_dtype)
    epp = dtype.elements_per_packet
    packets = []
    for start in range(0, len(data), epp):
        chunk = data[start : start + epp]
        packets.append(
            Packet(src=src, dst=dst, port=port, op=OpType.DATA,
                   count=len(chunk), payload=chunk.copy(), dtype=dtype)
        )
    return packets
