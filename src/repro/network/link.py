"""Inter-FPGA serial links.

A QSFP connection (§5.1) carries one 256-bit word — one network packet — per
*link slot* (``link_cycles_per_packet`` kernel cycles; 40 Gbit/s raw at the
defaults), with a fixed in-flight latency (SerDes + wire). The BSP
guarantees error correction, flow control and backpressure, so the link is
modelled as a lossless, in-order, bounded channel: a
:class:`~repro.simulation.fifo.Fifo` whose latency is the wire delay, whose
capacity covers the bandwidth-delay product (so latency never limits
throughput, as on the real hardware), and whose write port is paced to the
line rate.

Optionally a link *validates* the wire format: every packet is encoded to
its 32-byte representation and decoded back on arrival, asserting that the
object-level fast path and the bit-exact codec agree.
"""

from __future__ import annotations

from ..core.errors import SimulationError
from ..simulation.conditions import WaitCycles
from ..simulation.fifo import Fifo
from .packet import Packet


class Link:
    """A directed inter-FPGA channel paced at one packet per link slot."""

    __slots__ = ("fifo", "src", "dst", "validate", "packets", "payload_bytes",
                 "cycles_per_packet", "_next_free")

    def __init__(
        self,
        engine,
        src: tuple[int, int],
        dst: tuple[int, int],
        latency_cycles: int,
        cycles_per_packet: int = 1,
        validate: bool = False,
    ) -> None:
        self.src = src  # (rank, iface)
        self.dst = dst
        self.validate = validate
        self.cycles_per_packet = max(1, cycles_per_packet)
        self._next_free = 0
        # Capacity >= in-flight packets at full rate, + handoff slack.
        latency = max(1, latency_cycles)
        capacity = latency // self.cycles_per_packet + 4
        self.fifo = Fifo(
            engine,
            name=f"link.{src[0]}:{src[1]}->{dst[0]}:{dst[1]}",
            capacity=capacity,
            latency=latency,
        )
        self.packets = 0
        self.payload_bytes = 0

    # The transport pushes/pops packets through the link's FIFO interface.
    @property
    def writable(self) -> bool:
        return self.fifo.writable and self.fifo.engine.cycle >= self._next_free

    @property
    def readable(self) -> bool:
        return self.fifo.readable

    @property
    def can_push(self):
        return self.fifo.can_push

    @property
    def can_pop(self):
        return self.fifo.can_pop

    def wait_writable(self):
        """Condition for a stalled producer: FIFO space or line pacing."""
        if not self.fifo.writable:
            return self.fifo.can_push
        gap = self._next_free - self.fifo.engine.cycle
        return WaitCycles(max(1, gap))

    def wait_readable(self):
        return self.fifo.can_pop

    # -- supply-schedule contract (delegated to the backing FIFO) --------
    def register_producer(self, proc) -> None:
        """Register the CKS that owns this link as the line's only writer.

        This is what lets a downstream CKR's planner derive producer-sleep
        horizons *through the wire*: with the sending CKS parked or asleep
        until cycle T, nothing new can be visible at the far end before
        ``T + latency`` — a horizon the full link latency makes very deep.
        """
        self.fifo.register_producer(proc)

    def supply_horizon(self, memo: dict | None = None) -> int:
        return self.fifo.supply_horizon(memo)

    def _check_wire(self, packet: Packet) -> None:
        wire = packet.encode()
        check = Packet.decode(wire, packet.dtype)
        if (check.src, check.dst, check.port, check.op, check.count) != (
            packet.src, packet.dst, packet.port, packet.op, packet.count
        ):
            raise SimulationError(
                f"wire codec mismatch on {self.fifo.name}: {packet!r}"
            )

    def stage(self, packet: Packet) -> None:
        """Transmit one packet (occupies one link slot)."""
        if not self.writable:
            raise SimulationError(
                f"link {self.fifo.name}: stage() while busy or full"
            )
        if self.validate:
            self._check_wire(packet)
        self.fifo.stage(packet)
        self._next_free = self.fifo.engine.cycle + self.cycles_per_packet
        self.packets += 1
        self.payload_bytes += packet.payload_bytes
        trace = self.fifo.engine.trace
        if trace is not None:
            now = self.fifo.engine.cycle
            trace.emit(now, "xfer", self.fifo.name, "xfer",
                       dur=self.cycles_per_packet)
            trace.sample(
                f"link_util/{self.fifo.name}", now,
                self.utilization(max(now, 1)))

    def stage_burst(self, packets: list[Packet], cycles: list[int],
                    verify_occupancy: bool = True) -> None:
        """Transmit a run of packets as if staged one per ``cycles[i]``.

        The caller (a CKS burst drain) has already paced ``cycles`` at
        ``cycles_per_packet`` granularity starting no earlier than
        ``_next_free``, and checked the FIFO has space; packet counters are
        still maintained per item so :meth:`utilization` stays accurate.
        """
        if not packets:
            return
        if cycles[0] < self._next_free:
            raise SimulationError(
                f"link {self.fifo.name}: burst starts at {cycles[0]} but the "
                f"line is busy until {self._next_free}"
            )
        if self.validate:
            for packet in packets:
                self._check_wire(packet)
        self.fifo.stage_burst(packets, cycles, verify_occupancy)
        self._next_free = cycles[-1] + self.cycles_per_packet
        self.packets += len(packets)
        # Inlined Packet.payload_bytes (count * dtype.size): a macro-cruise
        # commit pushes tens of thousands of packets through here and the
        # property dispatch dominates the accounting.
        pb = 0
        for p in packets:
            dt = p.dtype
            if dt is not None:
                pb += p.count * dt.size
        self.payload_bytes += pb
        trace = self.fifo.engine.trace
        if trace is not None:
            trace.emit(cycles[0], "xfer", self.fifo.name, "xfer-burst",
                       dur=cycles[-1] - cycles[0] + self.cycles_per_packet,
                       args={"n": len(packets), "bytes": pb})
            trace.sample(
                f"link_util/{self.fifo.name}", cycles[-1],
                self.utilization(max(cycles[-1], 1)))

    def take(self) -> Packet:
        return self.fifo.take()

    def utilization(self, cycles: int) -> float:
        """Fraction of link slots that carried a packet."""
        if cycles <= 0:
            return 0.0
        return self.packets * self.cycles_per_packet / cycles

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Link({self.src} -> {self.dst}, {self.packets} pkts)"
