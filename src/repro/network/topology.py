"""Interconnect topology descriptions (§4.5, §5.1).

The FPGA cluster's interconnect is "described by a list of point-to-point
connections" between FPGA network ports. This module models that description,
offers the builders used in the evaluation (2-D torus and linear bus over 8
FPGAs, §5.1/§5.3), and round-trips the JSON format consumed by the route
generator (Fig. 8) plus the compact ``"A:0 - B:0"`` text form shown there.

A *connection* joins ``(rank_a, iface_a)`` to ``(rank_b, iface_b)`` — both
directions, since QSFP links are full duplex. Each (rank, interface) can be
wired at most once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import networkx as nx

from ..core.errors import TopologyError

#: A network endpoint: (rank, interface index).
Endpoint = tuple[int, int]


@dataclass(frozen=True)
class Connection:
    """A full-duplex cable between two FPGA network ports."""

    a: Endpoint
    b: Endpoint

    def normalized(self) -> "Connection":
        """Order endpoints canonically so connections compare stably."""
        return self if self.a <= self.b else Connection(self.b, self.a)

    def other(self, endpoint: Endpoint) -> Endpoint:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise TopologyError(f"{endpoint} is not part of {self}")

    def __str__(self) -> str:
        return f"{self.a[0]}:{self.a[1]} - {self.b[0]}:{self.b[1]}"


class Topology:
    """A cluster interconnect: ranks, interfaces, and their wiring."""

    def __init__(
        self,
        num_ranks: int,
        connections: list[Connection | tuple],
        num_interfaces: int = 4,
        name: str = "custom",
    ) -> None:
        if num_ranks < 1:
            raise TopologyError(f"num_ranks must be >= 1, got {num_ranks}")
        if num_ranks > 256:
            raise TopologyError("packet header limits ranks to 256 (§4.2)")
        if num_interfaces < 1:
            raise TopologyError("num_interfaces must be >= 1")
        self.num_ranks = num_ranks
        self.num_interfaces = num_interfaces
        self.name = name
        self.connections: list[Connection] = []
        used: set[Endpoint] = set()
        for conn in connections:
            if not isinstance(conn, Connection):
                conn = Connection(tuple(conn[0]), tuple(conn[1]))
            conn = conn.normalized()
            for rank, iface in (conn.a, conn.b):
                if not 0 <= rank < num_ranks:
                    raise TopologyError(
                        f"connection {conn}: rank {rank} out of range "
                        f"[0, {num_ranks})"
                    )
                if not 0 <= iface < num_interfaces:
                    raise TopologyError(
                        f"connection {conn}: interface {iface} out of range "
                        f"[0, {num_interfaces})"
                    )
                if (rank, iface) in used:
                    raise TopologyError(
                        f"network port {rank}:{iface} wired more than once"
                    )
                used.add((rank, iface))
            if conn.a == conn.b:
                raise TopologyError(f"self-loop connection: {conn}")
            if conn.a[0] == conn.b[0]:
                raise TopologyError(
                    f"connection {conn} loops back to the same FPGA"
                )
            self.connections.append(conn)
        self._peer: dict[Endpoint, Endpoint] = {}
        for conn in self.connections:
            self._peer[conn.a] = conn.b
            self._peer[conn.b] = conn.a

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def peer(self, rank: int, iface: int) -> Endpoint | None:
        """The endpoint wired to ``rank:iface``, or None if unconnected."""
        return self._peer.get((rank, iface))

    def interfaces_of(self, rank: int) -> list[int]:
        """Connected interface indices of one rank, ascending."""
        return sorted(i for (r, i) in self._peer if r == rank)

    def neighbors_of(self, rank: int) -> set[int]:
        """Ranks directly connected to ``rank``."""
        return {self._peer[(r, i)][0] for (r, i) in self._peer if r == rank}

    def graph(self) -> nx.MultiGraph:
        """The interconnect as a networkx multigraph (parallel links kept)."""
        g = nx.MultiGraph()
        g.add_nodes_from(range(self.num_ranks))
        for conn in self.connections:
            g.add_edge(conn.a[0], conn.b[0], iface_a=conn.a[1], iface_b=conn.b[1])
        return g

    def is_connected(self) -> bool:
        """Whether every rank can reach every other rank."""
        if self.num_ranks == 1:
            return True
        return nx.is_connected(self.graph())

    def hop_matrix(self) -> dict[int, dict[int, int]]:
        """All-pairs hop distances (BFS over the interconnect graph)."""
        return {
            src: dict(lengths)
            for src, lengths in nx.all_pairs_shortest_path_length(self.graph())
        }

    def diameter(self) -> int:
        """Maximum hop distance between any two ranks."""
        hops = self.hop_matrix()
        return max(d for row in hops.values() for d in row.values())

    # ------------------------------------------------------------------
    # Serialization (route generator input, Fig. 8)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "num_ranks": self.num_ranks,
            "num_interfaces": self.num_interfaces,
            "connections": [
                [list(conn.a), list(conn.b)] for conn in self.connections
            ],
        }

    def to_json(self, path: str | Path | None = None) -> str:
        text = json.dumps(self.to_dict(), indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "Topology":
        try:
            return cls(
                num_ranks=data["num_ranks"],
                connections=[
                    Connection(tuple(a), tuple(b)) for a, b in data["connections"]
                ],
                num_interfaces=data.get("num_interfaces", 4),
                name=data.get("name", "custom"),
            )
        except (KeyError, TypeError) as exc:
            raise TopologyError(f"malformed topology description: {exc}") from exc

    @classmethod
    def from_json(cls, source: str | Path) -> "Topology":
        text = str(source)
        if not text.lstrip().startswith("{"):
            text = Path(source).read_text()
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_text(cls, text: str, num_ranks: int | None = None,
                  num_interfaces: int = 4, name: str = "custom") -> "Topology":
        """Parse the compact ``"0:0 - 1:2"`` per-line form (Fig. 8)."""
        connections = []
        max_rank = -1
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                left, right = (part.strip() for part in line.split("-"))
                ra, ia = (int(x) for x in left.split(":"))
                rb, ib = (int(x) for x in right.split(":"))
            except ValueError as exc:
                raise TopologyError(
                    f"line {lineno}: cannot parse connection {raw!r}"
                ) from exc
            connections.append(Connection((ra, ia), (rb, ib)))
            max_rank = max(max_rank, ra, rb)
        if num_ranks is None:
            num_ranks = max_rank + 1
        return cls(num_ranks, connections, num_interfaces, name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Topology({self.name}, ranks={self.num_ranks}, "
            f"links={len(self.connections)})"
        )


# ----------------------------------------------------------------------
# Builders for the topologies used in the evaluation
# ----------------------------------------------------------------------
def bus(num_ranks: int, num_interfaces: int = 4) -> Topology:
    """A linear bus: rank i wired to rank i+1 (§5.3.1's 'linear bus').

    Uses interface 0 towards the lower neighbour and interface 1 towards the
    higher neighbour, mirroring how the paper degrades the torus by
    "disabling other connections as needed".
    """
    if num_interfaces < 2 and num_ranks > 2:
        raise TopologyError("a bus needs at least 2 interfaces per rank")
    conns = [
        Connection((i, 1), (i + 1, 0)) for i in range(num_ranks - 1)
    ]
    return Topology(num_ranks, conns, num_interfaces, name=f"bus{num_ranks}")


def ring(num_ranks: int, num_interfaces: int = 4) -> Topology:
    """A ring: a bus with the ends joined."""
    if num_ranks < 3:
        raise TopologyError("a ring needs at least 3 ranks")
    conns = [Connection((i, 1), ((i + 1) % num_ranks, 0)) for i in range(num_ranks)]
    return Topology(num_ranks, conns, num_interfaces, name=f"ring{num_ranks}")


def torus2d(rows: int, cols: int, num_interfaces: int = 4) -> Topology:
    """A 2-D torus of ``rows x cols`` FPGAs (§5.1's 8-FPGA deployment).

    Interface convention per rank: 0=north, 1=east, 2=south, 3=west. With
    fewer than 3 rows (or columns) the wrap-around link coincides with the
    direct link; both are materialised as parallel cables on the paired
    interfaces, matching a physically cabled small torus.
    """
    if rows < 1 or cols < 1:
        raise TopologyError("torus dimensions must be >= 1")
    if rows * cols < 2:
        raise TopologyError("torus needs at least 2 ranks")
    if num_interfaces < 4:
        raise TopologyError("a 2-D torus needs 4 interfaces per rank")
    NORTH, EAST, SOUTH, WEST = 0, 1, 2, 3

    def rank_of(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    conns: list[Connection] = []
    seen: set[tuple] = set()
    for r in range(rows):
        for c in range(cols):
            me = rank_of(r, c)
            # South link (wraps); skip degenerate single-row dimension.
            if rows > 1:
                other = rank_of(r + 1, c)
                key = ("v", min(me, other), max(me, other), r == rows - 1)
                if key not in seen:
                    seen.add(key)
                    conns.append(Connection((me, SOUTH), (other, NORTH)))
            # East link (wraps); skip degenerate single-column dimension.
            if cols > 1:
                other = rank_of(r, c + 1)
                key = ("h", min(me, other), max(me, other), c == cols - 1)
                if key not in seen:
                    seen.add(key)
                    conns.append(Connection((me, EAST), (other, WEST)))
    return Topology(rows * cols, conns, num_interfaces, name=f"torus{rows}x{cols}")


#: The evaluation platform's torus: 8 FPGAs in 2 x 4 (§5.1).
def noctua_torus() -> Topology:
    return torus2d(2, 4)


#: The evaluation's degraded linear-bus wiring over the same 8 FPGAs.
def noctua_bus() -> Topology:
    return bus(8)
