"""Inter-FPGA network substrate: packets, links, topologies, routing."""

from .fabric import Fabric
from .link import Link
from .packet import MAX_VALID_COUNT, OpType, Packet, make_data_packets
from .routing import (
    Routes,
    channel_dependency_graph,
    compute_routes,
    is_deadlock_free,
)
from .topology import (
    Connection,
    Topology,
    bus,
    noctua_bus,
    noctua_torus,
    ring,
    torus2d,
)

__all__ = [
    "Fabric",
    "Link",
    "MAX_VALID_COUNT",
    "OpType",
    "Packet",
    "make_data_packets",
    "Routes",
    "channel_dependency_graph",
    "compute_routes",
    "is_deadlock_free",
    "Connection",
    "Topology",
    "bus",
    "noctua_bus",
    "noctua_torus",
    "ring",
    "torus2d",
]
