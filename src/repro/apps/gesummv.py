"""GESUMMV: single-FPGA vs distributed implementations (§5.4.1, Figs. 12-13).

``y = alpha*A@x + beta*B@x`` with NxM matrices A and B.

* **Single FPGA** (Fig. 12 left): two GEMV kernels run concurrently on one
  board, *sharing* its memory bandwidth, streaming into a local AXPY.
* **Distributed MPMD** (Fig. 12 right): rank 0 computes alpha*A@x and
  streams the result elements over an SMI channel; rank 1 computes beta*B@x
  from its own memory and runs the AXPY, popping one input from the
  network. "The full application thus gains access to twice the memory
  bandwidth across the two FPGAs" — the expected ~2x speedup of Fig. 13.

Two fidelities:

* :func:`run_single_sim` / :func:`run_distributed_sim` — functional
  cycle-level simulations for small N, verified against NumPy.
* :class:`GesummvModel` — the bandwidth flow model used to regenerate
  Fig. 13 at paper scale (calibrated constant:
  ``MemoryConfig.gesummv_stream_bandwidth_Bps`` = 24 GB/s effective per
  board, which reproduces the paper's reported 0.7/2.8/10.8 ms almost
  exactly; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.metadata import OpDecl
from ..core.config import NOCTUA, NOCTUA_MEMORY, HardwareConfig, MemoryConfig
from ..core.datatypes import SMI_FLOAT
from ..core.program import SMIProgram
from ..network.topology import bus
from .blas import axpy_kernel, gemv_kernel, gesummv_reference

#: SMI port used by the distributed pipeline (rank0 GEMV -> rank1 AXPY).
GESUMMV_PORT = 0


# ----------------------------------------------------------------------
# Functional cycle-level implementations
# ----------------------------------------------------------------------
def run_single_sim(
    alpha: float,
    beta: float,
    A: np.ndarray,
    B: np.ndarray,
    x: np.ndarray,
    memory: MemoryConfig = NOCTUA_MEMORY,
    config: HardwareConfig = NOCTUA,
):
    """Single-FPGA GESUMMV on the cycle simulator.

    Returns (y, elapsed_us). Both GEMVs run on rank 0 and contend for the
    same DRAM banks (half the banks each, modelling the shared-bandwidth
    bottleneck of Fig. 12 left).
    """
    n = A.shape[0]
    prog = SMIProgram(bus(2), config=config, memory=memory)

    def kernel(smi):
        half = max(1, len(smi.memory.banks) // 2)
        ports_a = [smi.memory.port(i, f"gemvA{i}") for i in range(half)]
        ports_b = [smi.memory.port(i, f"gemvB{i}")
                   for i in range(half, len(smi.memory.banks))] or ports_a
        ya = smi.engine.fifo("ya", capacity=8)
        yb = smi.engine.fifo("yb", capacity=8)
        result: list = []
        smi.engine.spawn(gemv_kernel(ports_a, A, x, ya), "gemvA", daemon=True)
        smi.engine.spawn(gemv_kernel(ports_b, B, x, yb), "gemvB", daemon=True)
        yield from axpy_kernel(ya, yb, n, alpha, beta, result)
        smi.store("y", np.array(result))
        smi.store("cycles", smi.cycle)

    prog.add_kernel(kernel, rank=0, ops=[])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    return res.store(0, "y"), config.cycles_to_us(res.store(0, "cycles"))


def run_distributed_sim(
    alpha: float,
    beta: float,
    A: np.ndarray,
    B: np.ndarray,
    x: np.ndarray,
    memory: MemoryConfig = NOCTUA_MEMORY,
    config: HardwareConfig = NOCTUA,
):
    """Distributed MPMD GESUMMV (Fig. 12 right) on the cycle simulator.

    Rank 0 streams alpha*(A@x) over SMI port 0; rank 1 computes
    beta*(B@x) locally and combines. Returns (y, elapsed_us).
    """
    n = A.shape[0]
    prog = SMIProgram(bus(2), config=config, memory=memory)

    def rank0(smi):
        # The paper notes adapting GEMV took ~8 changed lines: push results
        # to an SMI channel instead of a local FIFO.
        ports = [smi.memory.port(i, f"gemvA{i}")
                 for i in range(len(smi.memory.banks))]
        ya = smi.engine.fifo("ya0", capacity=8)
        smi.engine.spawn(gemv_kernel(ports, A, x, ya, scale=alpha),
                         "gemvA", daemon=True)
        ch = smi.open_send_channel(n, SMI_FLOAT, 1, GESUMMV_PORT)
        for _ in range(n):
            while not ya.readable:
                yield ya.can_pop
            value = ya.take()
            yield from ch.push(value)

    def rank1(smi):
        ports = [smi.memory.port(i, f"gemvB{i}")
                 for i in range(len(smi.memory.banks))]
        yb = smi.engine.fifo("yb1", capacity=8)
        smi.engine.spawn(gemv_kernel(ports, B, x, yb, scale=beta),
                         "gemvB", daemon=True)
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, GESUMMV_PORT)
        result: list = []
        for _ in range(n):
            va = yield from smi.pop(ch)
            while not yb.readable:
                yield yb.can_pop
            vb = yb.take()
            result.append(float(va) + float(vb))
            yield None
        smi.store("y", np.array(result))
        smi.store("cycles", smi.cycle)

    prog.add_kernel(rank0, rank=0, ops=[OpDecl("send", GESUMMV_PORT, SMI_FLOAT)])
    prog.add_kernel(rank1, rank=1, ops=[OpDecl("recv", GESUMMV_PORT, SMI_FLOAT)])
    res = prog.run(max_cycles=200_000_000)
    assert res.completed, res.reason
    return res.store(1, "y"), config.cycles_to_us(res.store(1, "cycles"))


# ----------------------------------------------------------------------
# Flow model (Fig. 13 regeneration at paper scale)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GesummvModel:
    """Bandwidth model of GESUMMV (memory-bound, per §5.4.1)."""

    memory: MemoryConfig = NOCTUA_MEMORY
    config: HardwareConfig = NOCTUA
    element_bytes: int = 4

    def matrix_bytes(self, n: int, m: int) -> int:
        return n * m * self.element_bytes

    def distributed_time_s(self, n: int, m: int) -> float:
        """Each rank streams one NxM matrix at the full board bandwidth;
        the SMI stream and AXPY overlap completely with the reads."""
        stream = self.matrix_bytes(n, m) / self.memory.gesummv_stream_bandwidth_Bps
        # One network hop of pipeline fill; negligible but modelled.
        fill = (self.config.link_latency_cycles + 2 * self.config.endpoint_latency_cycles
                ) / self.config.clock_hz
        return stream + fill

    def single_time_s(self, n: int, m: int) -> float:
        """Both matrices share one board's bandwidth: twice the bytes."""
        return 2 * self.matrix_bytes(n, m) / self.memory.gesummv_stream_bandwidth_Bps

    def speedup(self, n: int, m: int) -> float:
        return self.single_time_s(n, m) / self.distributed_time_s(n, m)


def reference(alpha, beta, A, B, x) -> np.ndarray:
    """Re-export of the NumPy reference for convenience."""
    return gesummv_reference(alpha, beta, A, B, x)
