"""Streaming BLAS building blocks (GEMV, AXPY) — the FBLAS analog.

§5.4.1 builds GESUMMV out of "an open-source synthesizable library" of
streaming BLAS routines [18]. These are their simulator equivalents: each
routine is a hardware kernel that reads operands from the board's DRAM
banks at modelled bandwidth, computes in a pipelined fashion (compute fully
overlaps the streaming reads — the routines are memory-bound), and streams
results elementwise into a FIFO, exactly the composition style of Fig. 12.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..core.errors import ConfigurationError
from ..simulation.conditions import TICK
from ..simulation.fifo import Fifo
from ..simulation.memory import MemoryPort


def gemv_kernel(
    ports: list[MemoryPort],
    A: np.ndarray,
    x: np.ndarray,
    out: Fifo,
    scale: float = 1.0,
) -> Generator:
    """Streaming y = scale * A @ x, one result element per matrix row.

    ``A`` is row-major in off-chip memory, striped across ``ports`` (one
    per DRAM bank); ``x`` is assumed cached on-chip (read once, reused for
    every row — the standard FBLAS GEMV tiling). The dot product is fully
    pipelined behind the memory reads, so each row costs its read time.
    """
    n_rows, n_cols = A.shape
    if len(x) != n_cols:
        raise ConfigurationError(
            f"GEMV shape mismatch: A is {A.shape}, x has {len(x)}"
        )
    if not ports:
        raise ConfigurationError("GEMV needs at least one memory port")
    n_ports = len(ports)
    chunk = -(-n_cols // n_ports)  # columns handled per bank, ceil
    for i in range(n_rows):
        # All banks stream their column stripe *concurrently*: each cycle
        # the kernel pulls up to bank-width elements from every stripe, so
        # the row read time is ceil(stripe / bank_width) cycles — the
        # aggregate bandwidth of all attached banks.
        remaining = [
            max(0, min(n_cols, (p + 1) * chunk) - p * chunk)
            for p in range(n_ports)
        ]
        while any(remaining):
            for p, port in enumerate(ports):
                if remaining[p]:
                    granted = port.bank.grant(remaining[p])
                    remaining[p] -= granted
                    port.elements_read += granted
            yield TICK
        row = A[i]
        value = scale * float(row @ x)
        while not out.writable:
            yield out.can_push
        out.stage(value)
        yield TICK


def axpy_kernel(
    a_in: Fifo,
    b_in: Fifo,
    count: int,
    alpha: float,
    beta: float,
    result: list,
) -> Generator:
    """Streaming result = alpha * a + beta * b, one element per cycle.

    Inputs arrive on FIFOs (from local GEMVs or from an SMI channel pop
    loop); results accumulate into ``result`` (modelling the write stream
    back to DRAM, which is never the bottleneck here).
    """
    for _ in range(count):
        while not a_in.readable:
            yield a_in.can_pop
        va = a_in.take()
        while not b_in.readable:
            yield b_in.can_pop
        vb = b_in.take()
        result.append(alpha * float(va) + beta * float(vb))
        yield TICK


def gesummv_reference(
    alpha: float, beta: float, A: np.ndarray, B: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """NumPy reference: y = alpha*A@x + beta*B@x (Extended BLAS GESUMMV)."""
    return alpha * (A @ x) + beta * (B @ x)
