"""SPMD distributed-memory stencil with SMI halo exchange (§5.4.2).

A 4-point (5-point star, hx = hy = 1) Jacobi stencil over an Nx x Ny
domain, decomposed in two dimensions over an RX x RY rank grid (Fig. 14).
Each timestep, every rank exchanges its halo rows/columns with its
north/west/east/south neighbours over transient SMI channels — "channels
are opened to adjacent ranks using a distinct port for each neighbor"
(Listing 3) — then updates its block.

Port convention (matching Listing 3, where port p is shared by the send
and the matching receive of one direction):

    port 1: west halo   (received from the west neighbour's eastward send)
    port 2: east halo
    port 3: north halo
    port 4: south halo

Because all ranks run the same bitstream and compute neighbour ranks at
runtime, unused borders simply leave their channels unopened.

Two fidelities again: the functional cycle simulation below (verified
against a NumPy reference), and :class:`StencilModel`, the calibrated flow
model that regenerates Figs. 15-16 at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..codegen.metadata import OpDecl
from ..core.config import (
    NOCTUA,
    NOCTUA_KERNEL_CLOCKS,
    NOCTUA_MEMORY,
    HardwareConfig,
    KernelClockModel,
    MemoryConfig,
)
from ..core.datatypes import SMI_FLOAT
from ..core.errors import ConfigurationError
from ..core.program import SMIProgram
from ..network.topology import Topology, torus2d

PORT_WEST, PORT_EAST, PORT_NORTH, PORT_SOUTH = 1, 2, 3, 4

#: All stencil ports (send+recv endpoint on each, Listing-3 style).
STENCIL_OPS = [
    OpDecl("send", PORT_WEST, SMI_FLOAT),
    OpDecl("recv", PORT_WEST, SMI_FLOAT),
    OpDecl("send", PORT_EAST, SMI_FLOAT),
    OpDecl("recv", PORT_EAST, SMI_FLOAT),
    OpDecl("send", PORT_NORTH, SMI_FLOAT),
    OpDecl("recv", PORT_NORTH, SMI_FLOAT),
    OpDecl("send", PORT_SOUTH, SMI_FLOAT),
    OpDecl("recv", PORT_SOUTH, SMI_FLOAT),
]


def jacobi_reference(grid: np.ndarray, timesteps: int) -> np.ndarray:
    """NumPy reference: 4-point Jacobi with fixed (Dirichlet) borders."""
    g = grid.astype(np.float64, copy=True)
    for _ in range(timesteps):
        nxt = g.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:]
        )
        g = nxt
    return g


def _block_bounds(n: int, parts: int, index: int) -> tuple[int, int]:
    """Split ``n`` rows into ``parts`` contiguous blocks; bounds of one."""
    base = n // parts
    rem = n % parts
    lo = index * base + min(index, rem)
    hi = lo + base + (1 if index < rem else 0)
    return lo, hi


def run_distributed_sim(
    grid: np.ndarray,
    timesteps: int,
    rank_grid: tuple[int, int],
    topology: Topology | None = None,
    config: HardwareConfig = NOCTUA,
    max_cycles: int = 500_000_000,
):
    """Cycle-level SPMD stencil run; returns (final grid, elapsed_us).

    Halo exchange per timestep uses checkerboard ordering (ranks with even
    block parity send first, odd receive first), which is deadlock-free
    for any halo size and buffer depth — satisfying §3.3's rule that
    programs must not rely on channel buffering for correctness.
    """
    rx, ry = rank_grid
    num_ranks = rx * ry
    topology = topology or torus2d(max(rx, 2) if ry == 1 else rx, ry if ry > 1 else 2)
    if topology.num_ranks < num_ranks:
        raise ConfigurationError(
            f"topology has {topology.num_ranks} ranks; stencil needs {num_ranks}"
        )
    nx, ny = grid.shape
    if rx > nx or ry > ny:
        raise ConfigurationError("more ranks than grid rows/columns")
    prog = SMIProgram(topology, config=config)
    blocks_out: dict[int, np.ndarray] = {}
    end_cycles: dict[int, int] = {}

    def kernel(smi):
        rank = smi.rank
        if rank >= num_ranks:
            return
            yield  # pragma: no cover
        r_x, r_y = rank // ry, rank % ry
        x_lo, x_hi = _block_bounds(nx, rx, r_x)
        y_lo, y_hi = _block_bounds(ny, ry, r_y)
        block = grid[x_lo:x_hi, y_lo:y_hi].astype(np.float32, copy=True)
        bx, by = block.shape
        north = rank - ry if r_x > 0 else None
        south = rank + ry if r_x < rx - 1 else None
        west = rank - 1 if r_y > 0 else None
        east = rank + 1 if r_y < ry - 1 else None
        parity = (r_x + r_y) % 2

        for _t in range(timesteps):
            halo = {"n": None, "s": None, "w": None, "e": None}
            # Outgoing edges / incoming halo channels. Port p's send at
            # this rank matches port p's receive at the neighbour:
            # our eastward send is the east neighbour's *west* halo.
            sends = []
            if west is not None:
                sends.append(("w", west, PORT_EAST, block[:, 0]))
            if east is not None:
                sends.append(("e", east, PORT_WEST, block[:, -1]))
            if north is not None:
                sends.append(("n", north, PORT_SOUTH, block[0, :]))
            if south is not None:
                sends.append(("s", south, PORT_NORTH, block[-1, :]))
            recvs = []
            if west is not None:
                recvs.append(("w", west, PORT_WEST, bx))
            if east is not None:
                recvs.append(("e", east, PORT_EAST, bx))
            if north is not None:
                recvs.append(("n", north, PORT_NORTH, by))
            if south is not None:
                recvs.append(("s", south, PORT_SOUTH, by))

            def do_sends():
                for _dir, nbr, port, edge in sends:
                    ch = smi.open_send_channel(len(edge), SMI_FLOAT, nbr, port)
                    yield from ch.push_vec(np.ascontiguousarray(edge))

            def do_recvs():
                for d, nbr, port, count in recvs:
                    ch = smi.open_recv_channel(count, SMI_FLOAT, nbr, port)
                    halo[d] = (yield from ch.pop_vec(count))

            if parity == 0:
                yield from do_sends()
                yield from do_recvs()
            else:
                yield from do_recvs()
                yield from do_sends()

            # Compute the Jacobi update on the extended block; the paper's
            # kernel streams this from DRAM at `width` elements/cycle — the
            # numerical result is identical, so we compute with NumPy and
            # account the cycles via the flow model (see StencilModel).
            ext = np.full((bx + 2, by + 2), np.nan, dtype=np.float32)
            ext[1:-1, 1:-1] = block
            ext[0, 1:-1] = halo["n"] if halo["n"] is not None else block[0, :]
            ext[-1, 1:-1] = halo["s"] if halo["s"] is not None else block[-1, :]
            ext[1:-1, 0] = halo["w"] if halo["w"] is not None else block[:, 0]
            ext[1:-1, -1] = halo["e"] if halo["e"] is not None else block[:, -1]
            interior = 0.25 * (
                ext[:-2, 1:-1] + ext[2:, 1:-1] + ext[1:-1, :-2] + ext[1:-1, 2:]
            )
            nxt = block.copy()
            nxt[1:-1, 1:-1] = interior[1:-1, 1:-1]
            # Global-border rows/cols stay fixed (Dirichlet), but block
            # borders adjacent to other ranks are updated using halos.
            if north is not None:
                nxt[0, 1:-1] = interior[0, 1:-1]
            if south is not None:
                nxt[-1, 1:-1] = interior[-1, 1:-1]
            if west is not None:
                nxt[1:-1, 0] = interior[1:-1, 0]
            if east is not None:
                nxt[1:-1, -1] = interior[1:-1, -1]
            # Interior corners of interior blocks: the 4-point stencil
            # needs N/S/W/E values only, all available from edges/halos.
            if north is not None and west is not None:
                nxt[0, 0] = interior[0, 0]
            if north is not None and east is not None:
                nxt[0, -1] = interior[0, -1]
            if south is not None and west is not None:
                nxt[-1, 0] = interior[-1, 0]
            if south is not None and east is not None:
                nxt[-1, -1] = interior[-1, -1]
            block = nxt

        blocks_out[rank] = block
        end_cycles[rank] = smi.cycle

    prog.add_kernel(kernel, ranks="all", ops=STENCIL_OPS)
    res = prog.run(max_cycles=max_cycles)
    assert res.completed, res.reason

    out = np.empty_like(grid, dtype=np.float32)
    for rank in range(num_ranks):
        r_x, r_y = rank // ry, rank % ry
        x_lo, x_hi = _block_bounds(nx, rx, r_x)
        y_lo, y_hi = _block_bounds(ny, ry, r_y)
        out[x_lo:x_hi, y_lo:y_hi] = blocks_out[rank]
    return out, config.cycles_to_us(max(end_cycles.values()))


# ----------------------------------------------------------------------
# Flow model (Figs. 15-16 regeneration at paper scale)
# ----------------------------------------------------------------------
#: Kernel fmax once the SMI transport shares the fabric (or the datapath is
#: 64 elements wide): calibrated to Fig. 15's 72 ms points (§ see DESIGN).
SMI_ATTACHED_FMAX_HZ = 116.5e6


@dataclass(frozen=True)
class StencilConfigPoint:
    """One bar of Fig. 15: a (banks, FPGAs, rank-grid) configuration."""

    banks: int
    num_fpgas: int
    rank_grid: tuple[int, int]
    label: str


@dataclass(frozen=True)
class StencilModel:
    """Calibrated timing model of the stencil (Figs. 15-16).

    Per rank and timestep the pipelined kernel streams its
    ``points / width`` grid points (width = banks x 16 elements/cycle) and
    additionally pops/pushes its halo elements at one element per cycle
    (Listing 3's halo pops share the pipelined loop). Kernel fmax is
    132 MHz for the plain single-bank single-FPGA build and 116.5 MHz for
    wide or SMI-attached builds (both calibrated to Fig. 15; the wide
    datapath and the added transport logic lower achievable fmax).
    """

    memory: MemoryConfig = NOCTUA_MEMORY
    clocks: KernelClockModel = NOCTUA_KERNEL_CLOCKS

    def fmax_hz(self, banks: int, num_fpgas: int) -> float:
        width = banks * self.memory.bank_width_elements
        base = self.clocks.fmax(width)
        if num_fpgas > 1:
            return min(base, SMI_ATTACHED_FMAX_HZ)
        return base

    def halo_elements(self, local_nx: int, local_ny: int,
                      rank_grid: tuple[int, int]) -> int:
        """Halo elements sent+received per rank per timestep (hx=hy=1).

        Interior ranks exchange two rows and two columns in each
        direction pair; we model the worst (interior) rank, which is the
        one on the critical path.
        """
        rx, ry = rank_grid
        edges = 0
        if rx > 1:
            edges += 2 * local_ny  # north + south
        if ry > 1:
            edges += 2 * local_nx  # west + east
        return edges

    def time_s(self, nx: int, ny: int, timesteps: int, banks: int,
               num_fpgas: int, rank_grid: tuple[int, int]) -> float:
        rx, ry = rank_grid
        if rx * ry != num_fpgas:
            raise ConfigurationError(
                f"rank grid {rank_grid} does not match {num_fpgas} FPGAs"
            )
        width = banks * self.memory.bank_width_elements
        local_nx = ceil(nx / rx)
        local_ny = ceil(ny / ry)
        compute_cycles = local_nx * local_ny / width
        halo_cycles = self.halo_elements(local_nx, local_ny, rank_grid)
        per_step = compute_cycles + halo_cycles
        return timesteps * per_step / self.fmax_hz(banks, num_fpgas)

    def ns_per_point(self, nx: int, ny: int, timesteps: int, banks: int,
                     num_fpgas: int, rank_grid: tuple[int, int]) -> float:
        """Fig. 16 metric: execution time divided by grid points."""
        t = self.time_s(nx, ny, timesteps, banks, num_fpgas, rank_grid)
        return t / (nx * ny) * 1e9

    def communication_overlapped(self, nx: int, ny: int, banks: int,
                                 rank_grid: tuple[int, int],
                                 config: HardwareConfig = NOCTUA) -> bool:
        """The §5.4.2 overlap inequality.

        (Nx - 2hx)(Ny - 2hy)/Bmem >= 4 (Nx hy + Ny hx)/Bcomm with hx=hy=1,
        evaluated per rank block.
        """
        rx, ry = rank_grid
        bnx, bny = ceil(nx / rx), ceil(ny / ry)
        bmem = (banks * self.memory.bank_width_elements * 4) * self.fmax_hz(
            banks, rx * ry
        )  # bytes/s
        bcomm = config.link_payload_bandwidth_bps / 8  # bytes/s
        lhs = (bnx - 2) * (bny - 2) * 4 / bmem
        rhs = 4 * (bnx + bny) * 4 / bcomm
        return lhs >= rhs


#: The five Fig. 15 configurations.
FIG15_POINTS = [
    StencilConfigPoint(1, 1, (1, 1), "1 bank/1 FPGA"),
    StencilConfigPoint(4, 1, (1, 1), "4 banks/1 FPGA"),
    StencilConfigPoint(1, 4, (2, 2), "1 bank/4 FPGAs"),
    StencilConfigPoint(4, 4, (2, 2), "4 banks/4 FPGAs"),
    StencilConfigPoint(4, 8, (2, 4), "4 banks/8 FPGAs"),
]
