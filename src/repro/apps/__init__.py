"""Distributed applications of §5.4: GESUMMV and the SPMD stencil."""

from .blas import axpy_kernel, gemv_kernel, gesummv_reference
from .gesummv import GesummvModel, run_distributed_sim as run_gesummv_distributed
from .gesummv import run_single_sim as run_gesummv_single
from .stencil import (
    FIG15_POINTS,
    STENCIL_OPS,
    StencilConfigPoint,
    StencilModel,
    jacobi_reference,
)
from .stencil import run_distributed_sim as run_stencil_distributed
