"""SMI core: the public API of the streaming message interface."""

from .channel import RecvChannel, SendChannel
from .coll_channels import BcastChannel, GatherChannel, ReduceChannel, ScatterChannel
from .comm import SMIComm
from .config import (
    HW_PRESETS,
    NOCTUA,
    NOCTUA_DEEP,
    NOCTUA_KERNEL_CLOCKS,
    NOCTUA_MEMORY,
    NOCTUA_XDEEP,
    HardwareConfig,
    KernelClockModel,
    MemoryConfig,
    hardware_preset,
)
from .context import SMIContext
from .datatypes import (
    DATATYPES,
    SMI_CHAR,
    SMI_DOUBLE,
    SMI_FLOAT,
    SMI_INT,
    SMI_LONG,
    SMI_SHORT,
    SMIDatatype,
)
from .errors import (
    ChannelError,
    CodegenError,
    ConfigurationError,
    DeadlockError,
    MessageOverrunError,
    RoutingError,
    SimulationError,
    SMIError,
    TopologyError,
    TypeMismatchError,
)
from .ops import OPS, SMI_ADD, SMI_MAX, SMI_MIN, SMIOp
from .program import KernelSpec, ProgramResult, SMIProgram
