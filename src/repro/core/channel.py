"""Transient channels and the Push/Pop primitives (§3.1).

"Point-to-point communication in SMI codes is based on transient channels:
when established, a streaming interface is exposed at the specified port at
either end, allowing data to be streamed across the network using FIFO
semantics." Channels are plain descriptors — creating one is a zero-overhead
operation (§3.3); the data path is the per-element Push/Pop pair, which is
pipelineable to one element per clock cycle.

Vectorised variants (``push_vec``/``pop_vec``) model a widened application
datapath (an HLS kernel pushing a vector type): ``width`` elements move per
cycle. They are used where the paper's kernels are vectorised (the
bandwidth benchmark saturating the link, the multi-bank stencil).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..network.packet import OpType
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from ..transport.packing import PacketPacker
from .comm import SMIComm
from .datatypes import SMIDatatype
from .errors import ChannelError, MessageOverrunError, TypeMismatchError


class SendChannel:
    """Descriptor of an open send channel (``SMI_Open_send_channel``).

    ``burst_mode`` selects the vectorised fast path for ``push_vec``: whole
    runs of packets are packed and staged in one engine event with the
    exact cycles the per-element handshake would have used (see
    :mod:`repro.simulation.fifo`). Cycle counts are identical either way.

    The burst path is also the channel's side of the supply-schedule
    contract (:mod:`repro.transport.planner`): every early-staged run is a
    ``(cycle, count)`` commitment the CKS window planner consumes via
    ``present_schedule``, and while the sender then sleeps off the
    committed run, the engine's process floor bounds its endpoint's
    unknown future — which is what lets downstream plans extend across
    the send-side gaps.
    """

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        burst_mode: bool = True,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._burst = burst_mode
        self._packer = PacketPacker(src_global, dst_global, port, dtype)
        self._sent = 0

    @property
    def closed(self) -> bool:
        """Channels close implicitly after ``count`` elements (§3.1.1)."""
        return self._sent >= self.count

    @property
    def elements_sent(self) -> int:
        return self._sent

    def _check_open(self, n: int = 1) -> None:
        if self._sent + n > self.count:
            raise MessageOverrunError(
                f"push of {n} element(s) exceeds the channel's declared "
                f"count {self.count} (already sent {self._sent})"
            )

    def _stage_packet(self, pkt) -> Generator:
        while not self.endpoint.writable:
            yield self.endpoint.can_push
        self.endpoint.stage(pkt)

    def push(self, value) -> Generator:
        """``SMI_Push``: blocking, one element, pipelineable to II=1."""
        self._check_open()
        pkt = self._packer.add(value)
        self._sent += 1
        if pkt is None and self._sent == self.count:
            pkt = self._packer.flush()
        if pkt is not None:
            yield from self._stage_packet(pkt)
        yield TICK

    def push_vec(self, values, width: int | None = None) -> Generator:
        """Push many elements, ``width`` of them per cycle."""
        values = np.asarray(values, dtype=self.dtype.np_dtype)
        self._check_open(len(values))
        width = width if width is not None else len(values)
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        if self._burst:
            yield from self._push_vec_burst(values, width)
            return
        for start in range(0, len(values), width):
            chunk = values[start : start + width]
            for v in chunk:
                pkt = self._packer.add(v)
                self._sent += 1
                if pkt is None and self._sent == self.count:
                    pkt = self._packer.flush()
                if pkt is not None:
                    yield from self._stage_packet(pkt)
            yield TICK

    def _push_vec_burst(self, values, width: int) -> Generator:
        """Burst fast path for :meth:`push_vec`: per-flit-identical cycles.

        Plans runs of width-chunks against the endpoint's slot schedule —
        free slots now, plus slots whose future release cycle is already
        known (reserved by the CKS's own burst takes) — packs them with one
        vectorised packer call, stages them with the per-chunk cycles the
        element loop would have used (stalls on a full endpoint included),
        and sleeps the run's length in one event. Falls back to a literal
        (blocking) chunk when the next packet's stall cycle is unknown —
        exactly where the per-element path would block open-endedly.
        """
        ep = self.endpoint
        engine = ep.engine
        epp = self.dtype.elements_per_packet
        n = len(values)
        i = 0
        while i < n:
            free, rels = ep.slot_plan(engine.cycle)
            releases = iter(rels)
            start = engine.cycle
            cur = start
            stage_cycles: list[int] = []
            planned = 0  # elements planned
            pending = self._packer.pending
            chunks = 0
            flush_tail = False
            while i + planned < n:
                w_j = min(width, n - i - planned)
                comps = (pending + w_j) // epp
                rem = (pending + w_j) % epp
                extra = 0
                if rem and self._sent + planned + w_j == self.count:
                    extra = 1  # the message ends mid-packet: final flush
                # One slot per packet: a free slot stages at the chunk's own
                # cycle; a reserved slot stalls the chunk (and every later
                # one) until the cycle after it releases, exactly like the
                # per-element path blocking inside _stage_packet.
                chunk_stages = []
                for _ in range(comps + extra):
                    if free > 0:
                        free -= 1
                    else:
                        rel = next(releases, None)
                        if rel is None:
                            chunk_stages = None
                            break
                        cur = max(cur, rel + 1)
                    chunk_stages.append(cur)
                if chunk_stages is None:
                    break  # unknown stall: stop the plan before this chunk
                stage_cycles.extend(chunk_stages)
                planned += w_j
                pending = 0 if extra else rem
                if extra:
                    flush_tail = True
                chunks += 1
                cur += 1  # the chunk's closing TICK
            if chunks == 0:
                # The very next chunk's packets exceed free space: run it
                # element by element so the stall lands mid-chunk exactly
                # as in the per-flit path.
                w_j = min(width, n - i)
                for v in values[i : i + w_j]:
                    pkt = self._packer.add(v)
                    self._sent += 1
                    if pkt is None and self._sent == self.count:
                        pkt = self._packer.flush()
                    if pkt is not None:
                        yield from self._stage_packet(pkt)
                i += w_j
                yield TICK
                continue
            packets = self._packer.pack_run(
                values[i : i + planned], flush_tail=flush_tail
            )
            if len(packets) != len(stage_cycles):  # pragma: no cover
                raise ChannelError(
                    f"burst planner expected {len(stage_cycles)} packets, "
                    f"packer produced {len(packets)}"
                )
            if packets:
                ep.stage_burst(packets, stage_cycles)
            self._sent += planned
            i += planned
            yield WaitCycles(cur - start)


class RecvChannel:
    """Descriptor of an open receive channel (``SMI_Open_recv_channel``)."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        burst_mode: bool = True,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.source_global = src_global
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._burst = burst_mode
        self._received = 0
        self._current = None
        self._offset = 0

    @property
    def closed(self) -> bool:
        return self._received >= self.count

    @property
    def elements_received(self) -> int:
        return self._received

    def _check_packet(self, pkt) -> None:
        if pkt.op != OpType.DATA:
            raise ChannelError(
                f"recv channel on port {self.port}: unexpected control "
                f"packet {pkt!r}"
            )
        if pkt.dtype is not None and pkt.dtype != self.dtype:
            raise TypeMismatchError(
                f"port {self.port}: channel opened with {self.dtype.name} "
                f"but packet carries {pkt.dtype.name} (§3.1.1 requires "
                "matching types)"
            )
        if pkt.src != self.source_global:
            raise ChannelError(
                f"port {self.port}: expected data from global rank "
                f"{self.source_global}, got rank {pkt.src} — two senders "
                "on one port?"
            )

    def _next_packet(self) -> Generator:
        while not self.endpoint.readable:
            yield self.endpoint.can_pop
        pkt = self.endpoint.take()
        self._check_packet(pkt)
        self._current = pkt
        self._offset = 0

    def pop(self) -> Generator:
        """``SMI_Pop``: blocking, one element, pipelineable to II=1."""
        if self._received >= self.count:
            raise MessageOverrunError(
                f"pop beyond the channel's declared count {self.count}"
            )
        if self._current is None:
            yield from self._next_packet()
        pkt = self._current
        value = pkt.payload[self._offset]
        self._offset += 1
        self._received += 1
        if self._offset >= pkt.count:
            self._current = None
        yield TICK
        return value

    def pop_vec(self, n: int, width: int | None = None) -> Generator:
        """Pop ``n`` elements, ``width`` per cycle; returns an ndarray."""
        if self._received + n > self.count:
            raise MessageOverrunError(
                f"pop of {n} exceeds declared count {self.count} "
                f"(already received {self._received})"
            )
        width = width if width is not None else n
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        out = np.empty(n, dtype=self.dtype.np_dtype)
        if self._burst:
            yield from self._pop_vec_burst(n, width, out)
            return out
        got = 0
        in_cycle = 0
        while got < n:
            if self._current is None:
                yield from self._next_packet()
            pkt = self._current
            take = min(n - got, pkt.count - self._offset, width - in_cycle)
            out[got : got + take] = pkt.payload[self._offset : self._offset + take]
            self._offset += take
            got += take
            self._received += take
            in_cycle += take
            if self._offset >= pkt.count:
                self._current = None
            if in_cycle >= width:
                yield TICK
                in_cycle = 0
        if in_cycle:
            yield TICK
        return out

    def _pop_vec_burst(self, n: int, width: int, out: np.ndarray) -> Generator:
        """Burst fast path for :meth:`pop_vec`: per-flit-identical cycles.

        Every packet physically present in the endpoint FIFO — including
        ones still staged, whose future ready cycle is known — is consumed
        in one engine event: takes land at ``max(schedule, ready)`` exactly
        where the element loop would have taken them (stalls included), and
        the process sleeps to the end of the computed schedule.
        """
        ep = self.endpoint
        engine = ep.engine
        got = 0
        in_cycle = 0
        while got < n:
            if self._current is not None:
                # Leftover partial packet from a previous pop: consume it
                # with the literal per-cycle steps (at most a few).
                pkt = self._current
                take = min(n - got, pkt.count - self._offset, width - in_cycle)
                out[got : got + take] = (
                    pkt.payload[self._offset : self._offset + take]
                )
                self._offset += take
                got += take
                self._received += take
                in_cycle += take
                if self._offset >= pkt.count:
                    self._current = None
                if in_cycle >= width:
                    yield TICK
                    in_cycle = 0
                continue
            if ep.present_count == 0:
                yield ep.can_pop
                continue
            # ---- plan over every packet currently in the FIFO ----------
            cur = engine.cycle
            takes: list[int] = []
            plan: list[tuple] = []  # (packet, elements used)
            consumed = 0
            ic = in_cycle
            for pkt, ready in ep.iter_present():
                if got + consumed >= n:
                    break
                try:
                    self._check_packet(pkt)
                except ChannelError:
                    # Stop the plan before the offending packet: the
                    # per-flit fallback below reaches it at its own take
                    # cycle and raises with identical FIFO state.
                    break
                cur = max(cur, ready)  # stall until the packet is visible
                takes.append(cur)
                use = min(pkt.count, n - got - consumed)
                plan.append((pkt, use))
                consumed += use
                left = use
                while left > 0:  # advance one cycle per filled width-batch
                    step = min(left, width - ic)
                    ic += step
                    left -= step
                    if ic >= width:
                        cur += 1
                        ic = 0
            if not plan:
                # The head packet fails validation: consume it exactly like
                # the per-flit path (take at its visibility cycle, then
                # raise from the check with the packet already taken).
                yield from self._next_packet()
                continue
            ep.take_burst(takes, collect=False)
            idx = got
            for pkt, use in plan:
                out[idx : idx + use] = pkt.payload[:use]
                idx += use
            got += consumed
            self._received += consumed
            in_cycle = ic
            last_pkt, last_use = plan[-1]
            if last_use < last_pkt.count:
                self._current = last_pkt
                self._offset = last_use
            if cur > engine.cycle:
                yield WaitCycles(cur - engine.cycle)
        if in_cycle:
            yield TICK
