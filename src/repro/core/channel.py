"""Transient channels and the Push/Pop primitives (§3.1).

"Point-to-point communication in SMI codes is based on transient channels:
when established, a streaming interface is exposed at the specified port at
either end, allowing data to be streamed across the network using FIFO
semantics." Channels are plain descriptors — creating one is a zero-overhead
operation (§3.3); the data path is the per-element Push/Pop pair, which is
pipelineable to one element per clock cycle.

Vectorised variants (``push_vec``/``pop_vec``) model a widened application
datapath (an HLS kernel pushing a vector type): ``width`` elements move per
cycle. They are used where the paper's kernels are vectorised (the
bandwidth benchmark saturating the link, the multi-bank stencil).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..network.packet import OpType
from ..simulation.conditions import TICK
from ..simulation.fifo import Fifo
from ..transport.packing import PacketPacker
from .comm import SMIComm
from .datatypes import SMIDatatype
from .errors import ChannelError, MessageOverrunError, TypeMismatchError


class SendChannel:
    """Descriptor of an open send channel (``SMI_Open_send_channel``)."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._packer = PacketPacker(src_global, dst_global, port, dtype)
        self._sent = 0

    @property
    def closed(self) -> bool:
        """Channels close implicitly after ``count`` elements (§3.1.1)."""
        return self._sent >= self.count

    @property
    def elements_sent(self) -> int:
        return self._sent

    def _check_open(self, n: int = 1) -> None:
        if self._sent + n > self.count:
            raise MessageOverrunError(
                f"push of {n} element(s) exceeds the channel's declared "
                f"count {self.count} (already sent {self._sent})"
            )

    def _stage_packet(self, pkt) -> Generator:
        while not self.endpoint.writable:
            yield self.endpoint.can_push
        self.endpoint.stage(pkt)

    def push(self, value) -> Generator:
        """``SMI_Push``: blocking, one element, pipelineable to II=1."""
        self._check_open()
        pkt = self._packer.add(value)
        self._sent += 1
        if pkt is None and self._sent == self.count:
            pkt = self._packer.flush()
        if pkt is not None:
            yield from self._stage_packet(pkt)
        yield TICK

    def push_vec(self, values, width: int | None = None) -> Generator:
        """Push many elements, ``width`` of them per cycle."""
        values = np.asarray(values, dtype=self.dtype.np_dtype)
        self._check_open(len(values))
        width = width if width is not None else len(values)
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        for start in range(0, len(values), width):
            chunk = values[start : start + width]
            for v in chunk:
                pkt = self._packer.add(v)
                self._sent += 1
                if pkt is None and self._sent == self.count:
                    pkt = self._packer.flush()
                if pkt is not None:
                    yield from self._stage_packet(pkt)
            yield TICK


class RecvChannel:
    """Descriptor of an open receive channel (``SMI_Open_recv_channel``)."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.source_global = src_global
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._received = 0
        self._current = None
        self._offset = 0

    @property
    def closed(self) -> bool:
        return self._received >= self.count

    @property
    def elements_received(self) -> int:
        return self._received

    def _next_packet(self) -> Generator:
        while not self.endpoint.readable:
            yield self.endpoint.can_pop
        pkt = self.endpoint.take()
        if pkt.op != OpType.DATA:
            raise ChannelError(
                f"recv channel on port {self.port}: unexpected control "
                f"packet {pkt!r}"
            )
        if pkt.dtype is not None and pkt.dtype != self.dtype:
            raise TypeMismatchError(
                f"port {self.port}: channel opened with {self.dtype.name} "
                f"but packet carries {pkt.dtype.name} (§3.1.1 requires "
                "matching types)"
            )
        if pkt.src != self.source_global:
            raise ChannelError(
                f"port {self.port}: expected data from global rank "
                f"{self.source_global}, got rank {pkt.src} — two senders "
                "on one port?"
            )
        self._current = pkt
        self._offset = 0

    def pop(self) -> Generator:
        """``SMI_Pop``: blocking, one element, pipelineable to II=1."""
        if self._received >= self.count:
            raise MessageOverrunError(
                f"pop beyond the channel's declared count {self.count}"
            )
        if self._current is None:
            yield from self._next_packet()
        pkt = self._current
        value = pkt.payload[self._offset]
        self._offset += 1
        self._received += 1
        if self._offset >= pkt.count:
            self._current = None
        yield TICK
        return value

    def pop_vec(self, n: int, width: int | None = None) -> Generator:
        """Pop ``n`` elements, ``width`` per cycle; returns an ndarray."""
        if self._received + n > self.count:
            raise MessageOverrunError(
                f"pop of {n} exceeds declared count {self.count} "
                f"(already received {self._received})"
            )
        width = width if width is not None else n
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        out = np.empty(n, dtype=self.dtype.np_dtype)
        got = 0
        in_cycle = 0
        while got < n:
            if self._current is None:
                yield from self._next_packet()
            pkt = self._current
            take = min(n - got, pkt.count - self._offset, width - in_cycle)
            out[got : got + take] = pkt.payload[self._offset : self._offset + take]
            self._offset += take
            got += take
            self._received += take
            in_cycle += take
            if self._offset >= pkt.count:
                self._current = None
            if in_cycle >= width:
                yield TICK
                in_cycle = 0
        if in_cycle:
            yield TICK
        return out
