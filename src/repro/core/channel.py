"""Transient channels and the Push/Pop primitives (§3.1).

"Point-to-point communication in SMI codes is based on transient channels:
when established, a streaming interface is exposed at the specified port at
either end, allowing data to be streamed across the network using FIFO
semantics." Channels are plain descriptors — creating one is a zero-overhead
operation (§3.3); the data path is the per-element Push/Pop pair, which is
pipelineable to one element per clock cycle.

Vectorised variants (``push_vec``/``pop_vec``) model a widened application
datapath (an HLS kernel pushing a vector type): ``width`` elements move per
cycle. They are used where the paper's kernels are vectorised (the
bandwidth benchmark saturating the link, the multi-bank stencil).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..network.packet import OpType
from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from ..transport.packing import PacketPacker
from .comm import SMIComm
from .datatypes import SMIDatatype
from .errors import ChannelError, MessageOverrunError, TypeMismatchError


class _SendLane:
    """Macro-cruise plane of a sleeping :meth:`SendChannel.push_vec` burst.

    While the sender process sleeps off a committed run, its remaining
    plan is a pure function of the endpoint's slot schedule: the chunk
    pacing, the packer layout and the stall rule are all deterministic.
    The lane exposes exactly that function to the supply planner: a
    replication train starving on this endpoint queues the slot releases
    its own validated takes produced (:meth:`note_release`) and asks the
    lane to continue the channel's plan against them (:meth:`extend`) —
    same arithmetic, same cycles, no engine event. Planned packets stay
    on the lane until the train's bulk commit (:meth:`commit`), which
    also pairs the claimed releases so the sleeping generator's next
    ``slot_plan`` never sees a slot handed out twice.

    ``cur is None`` marks the plan frontier as unknown (the generator is
    mid element-wise fallback, or has not planned yet): the lane refuses
    to extend there, which is the macro plane's per-resource fallback
    rule — any unproven resource ends the fast-forward.
    """

    __slots__ = ("chan", "values", "width", "i", "cur", "rels", "rel_ptr",
                 "free", "rel_base", "claimed", "pend_pkts", "pend_cycles",
                 "active", "proc", "rels0")
    is_send = True

    def __init__(self, chan: "SendChannel", values, width: int) -> None:
        self.chan = chan
        self.values = values
        self.width = width
        # The kernel process running this burst (for the firm wake at
        # the train's extended frontier).
        self.proc = chan.endpoint.engine._current_proc
        self.i = 0          # elements planned so far (shared with generator)
        self.cur = None     # pacing frontier; None = not extendable
        self.rels: list[int] = []   # claimable release cycles, FIFO order
        self.rel_ptr = 0
        self.rels0 = 0
        self.free = 0
        self.rel_base = 0
        self.claimed = 0    # releases consumed by lane stages this train
        self.pend_pkts: list = []
        self.pend_cycles: list = []
        self.active = False  # True between begin() and commit()

    def extendable(self) -> bool:
        return self.cur is not None and self.i < len(self.values)

    def begin(self, now: int) -> None:
        """Open the train-scoped slot ledger (idempotent per train)."""
        if self.active:
            return
        ep = self.chan.endpoint
        # Slots freed since the generator's last plan: currently-free
        # slots plus the pending unpaired releases, in _reserved order —
        # train-published releases are appended behind them, exactly the
        # order the endpoint's reserved queue will hold at commit time.
        self.free, rels = ep.slot_plan(now)
        self.rels = list(rels)
        self.rel_ptr = 0
        # Committed (frozen-value) release prefix: entries below this
        # index came from the endpoint's own slot plan, not from the
        # train's Δ-shifting published takes. The analytic fast-forward
        # refuses to extrapolate while the plan still consumes them.
        self.rels0 = len(self.rels)
        self.rel_base = ep._reserved_paired
        self.claimed = 0
        self.active = True

    def note_release(self, cycle: int) -> None:
        self.rels.append(cycle)

    def extend(self):
        """Continue the channel's plan; returns new ``(pkt, stage)`` pairs.

        Identical to the generator's planning loop with the slot budget
        taken from the train ledger instead of ``slot_plan``: chunks of
        ``width`` elements advance the pacing cursor one cycle each, a
        claimed release stalls the chunk to ``release + 1``, and the plan
        stops before the first chunk whose slots are unknown.
        """
        chan = self.chan
        values = self.values
        n = len(values)
        i = self.i
        cur = self.cur
        planned, stage_cycles, cur, flush_tail, used = _plan_push_chunks(
            chan._packer.pending, chan._sent, chan.count, values, i,
            self.width, chan.dtype.elements_per_packet, cur,
            self.free, self.rels, self.rel_ptr)
        if planned == 0:
            return ()
        self.free = max(0, self.free - used[0])
        self.rel_ptr += used[1]
        self.claimed += used[1]
        packets = chan._packer.pack_run(values[i:i + planned],
                                        flush_tail=flush_tail)
        if len(packets) != len(stage_cycles):  # pragma: no cover
            raise ChannelError(
                f"macro lane expected {len(stage_cycles)} packets, "
                f"packer produced {len(packets)}")
        chan._sent += planned
        self.i = i + planned
        self.cur = cur
        self.pend_pkts.extend(packets)
        self.pend_cycles.extend(stage_cycles)
        return tuple(zip(packets, stage_cycles))

    def commit(self) -> None:
        """Bulk-commit the train's lane stages (stage phase of the train
        commit — before any session takes them).

        Occupancy verification is deferred exactly as for the planner's
        own cursor stages: the takes whose releases these stages claim
        commit later in the same train, so the trajectory check would
        see a transiently over-full schedule. The ledger arithmetic
        (free budget + claimed releases, slot-for-slot) is the proof.
        """
        if self.pend_pkts:
            self.chan.endpoint.stage_burst(self.pend_pkts, self.pend_cycles,
                                           verify_occupancy=False)
            self.pend_pkts = []
            self.pend_cycles = []

    def finish(self) -> None:
        """Close the train ledger: persist release pairings (take phase
        ran, so the claimed releases are on the reserved queue now)."""
        if self.claimed:
            self.chan.endpoint._reserved_paired = self.rel_base + self.claimed
        self.active = False

    @property
    def proc_end(self):
        return self.cur


def _plan_push_chunks(pending, sent, count, values, i, width, epp, cur,
                      free, rels, rel_ptr):
    """Plan stage cycles for whole width-chunks of ``values[i:]``.

    The one chunk-pacing/stall rule both the sender generator and its
    macro lane use: each chunk's packets each claim a slot (free slots
    stage at the pacing cursor; a release stalls the cursor — and every
    later chunk — to ``release + 1``), then the cursor advances one cycle
    for the chunk's closing TICK. Stops before the first chunk whose
    slots are not all known. Returns ``(planned_elements, stage_cycles,
    cur_end, flush_tail, (free_used, rels_used))``.
    """
    n = len(values)
    n_rels = len(rels)
    stage_cycles: list[int] = []
    planned = 0
    flush_tail = False
    free_used = 0
    rels_used = 0
    while i + planned < n:
        w_j = min(width, n - i - planned)
        comps = (pending + w_j) // epp
        rem = (pending + w_j) % epp
        extra = 0
        if rem and sent + planned + w_j == count:
            extra = 1  # the message ends mid-packet: final flush
        chunk_stages = []
        c_free = 0
        c_rels = 0
        for _ in range(comps + extra):
            if free > 0:
                free -= 1
                c_free += 1
            elif rel_ptr + c_rels < n_rels:
                cur = max(cur, rels[rel_ptr + c_rels] + 1)
                c_rels += 1
            else:
                chunk_stages = None
                break
            chunk_stages.append(cur)
        if chunk_stages is None:
            break  # unknown stall: stop the plan before this chunk
        stage_cycles.extend(chunk_stages)
        free_used += c_free
        rel_ptr += c_rels
        rels_used += c_rels
        planned += w_j
        pending = 0 if extra else rem
        if extra:
            flush_tail = True
        cur += 1  # the chunk's closing TICK
    return planned, stage_cycles, cur, flush_tail, (free_used, rels_used)


class _RecvLane:
    """Macro-cruise plane of a sleeping :meth:`RecvChannel.pop_vec` burst.

    The mirror of :class:`_SendLane`: a replication train blocked on the
    receive endpoint's backpressure publishes its validated stages into
    the lane (:meth:`note_item`) and asks it to continue the channel's
    take plan (:meth:`extend`) — consuming items at exactly the cycles
    the per-flit pop loop would (width pacing carried across waits, a
    take never before the item's visibility), copying payloads straight
    into the caller's output array, and returning the take cycles whose
    releases free the train's slots. Takes commit at train end, after
    the session stages that produced the items.
    """

    __slots__ = ("chan", "n", "width", "out", "got", "ic", "cur", "items",
                 "ip", "take_cycles", "pend_takes", "active", "armed",
                 "proc")
    is_send = False

    def __init__(self, chan: "RecvChannel", n: int, width: int, out) -> None:
        self.chan = chan
        self.n = n
        self.width = width
        self.out = out
        self.proc = chan.endpoint.engine._current_proc
        self.got = 0        # elements consumed (shared with generator)
        self.ic = 0         # width-pacing carry (shared with generator)
        self.cur = None     # pacing frontier; None until the first plan
        self.items: list = []   # (pkt, ready) claimable, FIFO order
        self.ip = 0
        self.take_cycles: list[int] = []
        self.pend_takes = 0
        self.active = False
        # armed marks the generator's quiescent yields (sleeping off a
        # committed plan or blocked on an empty endpoint) — the only
        # states whose pacing frontier a train may extend.
        self.armed = False

    def extendable(self) -> bool:
        return (self.armed and self.got < self.n
                and self.chan._current is None)

    def begin(self, now: int) -> None:
        """Open the train-scoped supply ledger (idempotent per train)."""
        if self.active:
            return
        # Committed items the generator has not consumed yet precede any
        # train-published stage in FIFO order.
        self.items = list(self.chan.endpoint.iter_present())
        self.ip = 0
        self.take_cycles = []
        self.pend_takes = 0
        self.active = True

    def note_item(self, pkt, ready: int) -> None:
        self.items.append((pkt, ready))

    def extend(self):
        """Continue the channel's take plan; returns new take cycles."""
        chan = self.chan
        n = self.n
        width = self.width
        out = self.out
        got = self.got
        ic = self.ic
        cur = self.cur if self.cur is not None else 0
        items = self.items
        ip = self.ip
        takes: list[int] = []
        while ip < len(items) and got < n:
            pkt, ready = items[ip]
            use = min(pkt.count, n - got)
            if use < pkt.count and got + use < n:  # pragma: no cover
                break  # mid-stream partial take: leave it to the generator
            try:
                chan._check_packet(pkt)
            except ChannelError:
                break  # fallback: the generator raises at the exact cycle
            cur = max(cur, ready)
            takes.append(cur)
            out[got:got + use] = pkt.payload[:use]
            got += use
            left = use
            while left > 0:
                step = min(left, width - ic)
                ic += step
                left -= step
                if ic >= width:
                    cur += 1
                    ic = 0
            if use < pkt.count:
                chan._current = pkt
                chan._offset = use
            ip += 1
        if not takes:
            return ()
        chan._received = chan._received + (got - self.got)
        self.got = got
        self.ic = ic
        self.cur = cur
        self.ip = ip
        self.take_cycles.extend(takes)
        self.pend_takes += len(takes)
        return tuple(takes)

    def commit(self) -> None:
        """Bulk-commit the train's lane takes (take phase of the train
        commit — the sessions' stages are physically present by now)."""
        if self.take_cycles:
            self.chan.endpoint.take_burst(self.take_cycles, collect=False)
            self.take_cycles = []
            self.pend_takes = 0

    def finish(self) -> None:
        self.active = False

    @property
    def proc_end(self):
        return self.cur


class SendChannel:
    """Descriptor of an open send channel (``SMI_Open_send_channel``).

    ``burst_mode`` selects the vectorised fast path for ``push_vec``: whole
    runs of packets are packed and staged in one engine event with the
    exact cycles the per-element handshake would have used (see
    :mod:`repro.simulation.fifo`). Cycle counts are identical either way.

    The burst path is also the channel's side of the supply-schedule
    contract (:mod:`repro.transport.planner`): every early-staged run is a
    ``(cycle, count)`` commitment the CKS window planner consumes via
    ``present_schedule``, and while the sender then sleeps off the
    committed run, the engine's process floor bounds its endpoint's
    unknown future — which is what lets downstream plans extend across
    the send-side gaps.
    """

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        burst_mode: bool = True,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._burst = burst_mode
        self._packer = PacketPacker(src_global, dst_global, port, dtype)
        self._sent = 0

    @property
    def closed(self) -> bool:
        """Channels close implicitly after ``count`` elements (§3.1.1)."""
        return self._sent >= self.count

    @property
    def elements_sent(self) -> int:
        return self._sent

    def _check_open(self, n: int = 1) -> None:
        if self._sent + n > self.count:
            raise MessageOverrunError(
                f"push of {n} element(s) exceeds the channel's declared "
                f"count {self.count} (already sent {self._sent})"
            )

    def _stage_packet(self, pkt) -> Generator:
        while not self.endpoint.writable:
            yield self.endpoint.can_push
        self.endpoint.stage(pkt)

    def push(self, value) -> Generator:
        """``SMI_Push``: blocking, one element, pipelineable to II=1."""
        self._check_open()
        pkt = self._packer.add(value)
        self._sent += 1
        if pkt is None and self._sent == self.count:
            pkt = self._packer.flush()
        if pkt is not None:
            yield from self._stage_packet(pkt)
        yield TICK

    def push_vec(self, values, width: int | None = None) -> Generator:
        """Push many elements, ``width`` of them per cycle."""
        values = np.asarray(values, dtype=self.dtype.np_dtype)
        self._check_open(len(values))
        width = width if width is not None else len(values)
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        if self._burst:
            yield from self._push_vec_burst(values, width)
            return
        for start in range(0, len(values), width):
            chunk = values[start : start + width]
            for v in chunk:
                pkt = self._packer.add(v)
                self._sent += 1
                if pkt is None and self._sent == self.count:
                    pkt = self._packer.flush()
                if pkt is not None:
                    yield from self._stage_packet(pkt)
            yield TICK

    def _push_vec_burst(self, values, width: int) -> Generator:
        """Burst fast path for :meth:`push_vec`: per-flit-identical cycles.

        Plans runs of width-chunks against the endpoint's slot schedule —
        free slots now, plus slots whose future release cycle is already
        known (reserved by the CKS's own burst takes) — packs them with one
        vectorised packer call, stages them with the per-chunk cycles the
        element loop would have used (stalls on a full endpoint included),
        and sleeps the run's length in one event. Falls back to a literal
        (blocking) chunk when the next packet's stall cycle is unknown —
        exactly where the per-element path would block open-endedly.
        """
        ep = self.endpoint
        engine = ep.engine
        epp = self.dtype.elements_per_packet
        n = len(values)
        host = getattr(ep, "macro_host", None)
        lane = None
        if host is not None:
            lane = _SendLane(self, values, width)
            host.register_lane(ep, lane)
        try:
            i = 0
            while True:
                if lane is not None:
                    # A macro train may have continued this plan while we
                    # slept: adopt its frontier and sleep the remainder.
                    i = lane.i
                    lc = lane.cur
                    if lc is not None and lc > engine.cycle:
                        yield WaitCycles(lc - engine.cycle)
                        continue
                if i >= n:
                    break
                free, rels = ep.slot_plan(engine.cycle)
                rels = list(rels)
                rel_base = ep._reserved_paired
                start = engine.cycle
                planned, stage_cycles, cur, flush_tail, used = (
                    _plan_push_chunks(self._packer.pending, self._sent,
                                      self.count, values, i, width, epp,
                                      start, free, rels, 0)
                )
                if planned == 0:
                    # The very next chunk's packets exceed free space: run it
                    # element by element so the stall lands mid-chunk exactly
                    # as in the per-flit path.
                    if lane is not None:
                        lane.cur = None  # mid-chunk: frontier unknown
                    w_j = min(width, n - i)
                    for v in values[i : i + w_j]:
                        pkt = self._packer.add(v)
                        self._sent += 1
                        if pkt is None and self._sent == self.count:
                            pkt = self._packer.flush()
                        if pkt is not None:
                            yield from self._stage_packet(pkt)
                    i += w_j
                    if lane is not None:
                        lane.i = i
                    yield TICK
                    continue
                packets = self._packer.pack_run(
                    values[i : i + planned], flush_tail=flush_tail
                )
                if len(packets) != len(stage_cycles):  # pragma: no cover
                    raise ChannelError(
                        f"burst planner expected {len(stage_cycles)} "
                        f"packets, packer produced {len(packets)}"
                    )
                if packets:
                    ep.stage_burst(packets, stage_cycles)
                self._sent += planned
                i += planned
                if lane is not None:
                    # Pair the releases this plan claimed so a mid-sleep
                    # macro train never hands the same slot out twice.
                    if used[1]:
                        ep._reserved_paired = rel_base + used[1]
                    lane.i = i
                    lane.cur = cur
                yield WaitCycles(cur - start)
        finally:
            if lane is not None:
                host.unregister_lane(ep, lane)


class RecvChannel:
    """Descriptor of an open receive channel (``SMI_Open_recv_channel``)."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        burst_mode: bool = True,
    ) -> None:
        if count < 0:
            raise ChannelError(f"message count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.source_global = src_global
        self.port = port
        self.comm = comm
        self.endpoint = endpoint
        self._burst = burst_mode
        self._received = 0
        self._current = None
        self._offset = 0

    @property
    def closed(self) -> bool:
        return self._received >= self.count

    @property
    def elements_received(self) -> int:
        return self._received

    def _check_packet(self, pkt) -> None:
        if pkt.op != OpType.DATA:
            raise ChannelError(
                f"recv channel on port {self.port}: unexpected control "
                f"packet {pkt!r}"
            )
        if pkt.dtype is not None and pkt.dtype != self.dtype:
            raise TypeMismatchError(
                f"port {self.port}: channel opened with {self.dtype.name} "
                f"but packet carries {pkt.dtype.name} (§3.1.1 requires "
                "matching types)"
            )
        if pkt.src != self.source_global:
            raise ChannelError(
                f"port {self.port}: expected data from global rank "
                f"{self.source_global}, got rank {pkt.src} — two senders "
                "on one port?"
            )

    def _next_packet(self) -> Generator:
        while not self.endpoint.readable:
            yield self.endpoint.can_pop
        pkt = self.endpoint.take()
        self._check_packet(pkt)
        self._current = pkt
        self._offset = 0

    def pop(self) -> Generator:
        """``SMI_Pop``: blocking, one element, pipelineable to II=1."""
        if self._received >= self.count:
            raise MessageOverrunError(
                f"pop beyond the channel's declared count {self.count}"
            )
        if self._current is None:
            yield from self._next_packet()
        pkt = self._current
        value = pkt.payload[self._offset]
        self._offset += 1
        self._received += 1
        if self._offset >= pkt.count:
            self._current = None
        yield TICK
        return value

    def pop_vec(self, n: int, width: int | None = None) -> Generator:
        """Pop ``n`` elements, ``width`` per cycle; returns an ndarray."""
        if self._received + n > self.count:
            raise MessageOverrunError(
                f"pop of {n} exceeds declared count {self.count} "
                f"(already received {self._received})"
            )
        width = width if width is not None else n
        if width < 1:
            raise ChannelError("vector width must be >= 1")
        out = np.empty(n, dtype=self.dtype.np_dtype)
        if self._burst:
            yield from self._pop_vec_burst(n, width, out)
            return out
        got = 0
        in_cycle = 0
        while got < n:
            if self._current is None:
                yield from self._next_packet()
            pkt = self._current
            take = min(n - got, pkt.count - self._offset, width - in_cycle)
            out[got : got + take] = pkt.payload[self._offset : self._offset + take]
            self._offset += take
            got += take
            self._received += take
            in_cycle += take
            if self._offset >= pkt.count:
                self._current = None
            if in_cycle >= width:
                yield TICK
                in_cycle = 0
        if in_cycle:
            yield TICK
        return out

    def _pop_vec_burst(self, n: int, width: int, out: np.ndarray) -> Generator:
        """Burst fast path for :meth:`pop_vec`: per-flit-identical cycles.

        Every packet physically present in the endpoint FIFO — including
        ones still staged, whose future ready cycle is known — is consumed
        in one engine event: takes land at ``max(schedule, ready)`` exactly
        where the element loop would have taken them (stalls included), and
        the process sleeps to the end of the computed schedule.
        """
        ep = self.endpoint
        engine = ep.engine
        host = getattr(ep, "macro_host", None)
        lane = None
        if host is not None:
            lane = _RecvLane(self, n, width, out)
            host.register_lane(ep, lane)
        try:
            yield from self._pop_vec_burst_loop(n, width, out, lane)
        finally:
            if lane is not None:
                host.unregister_lane(ep, lane)

    def _pop_vec_burst_loop(
        self, n: int, width: int, out: np.ndarray, lane
    ) -> Generator:
        ep = self.endpoint
        engine = ep.engine
        got = 0
        in_cycle = 0
        while got < n:
            if lane is not None:
                # A macro train may have consumed ahead while we slept or
                # waited: adopt its progress and pacing carry.
                got = lane.got
                in_cycle = lane.ic
                if got >= n:
                    break
            if lane is not None:
                lane.armed = False
            if self._current is not None:
                # Leftover partial packet from a previous pop: consume it
                # with the literal per-cycle steps (at most a few).
                pkt = self._current
                take = min(n - got, pkt.count - self._offset, width - in_cycle)
                out[got : got + take] = (
                    pkt.payload[self._offset : self._offset + take]
                )
                self._offset += take
                got += take
                self._received += take
                in_cycle += take
                if self._offset >= pkt.count:
                    self._current = None
                if lane is not None:
                    lane.got = got
                    lane.ic = in_cycle
                if in_cycle >= width:
                    if lane is not None:
                        lane.ic = 0
                    yield TICK
                    in_cycle = 0
                continue
            if ep.present_count == 0:
                if lane is not None:
                    lane.got = got
                    lane.ic = in_cycle
                    lane.armed = True
                yield ep.can_pop
                continue
            # ---- plan over every packet currently in the FIFO ----------
            cur = engine.cycle
            if lane is not None and lane.cur is not None and lane.cur > cur:
                # Resume the pacing frontier a macro train advanced for us.
                cur = lane.cur
            takes: list[int] = []
            plan: list[tuple] = []  # (packet, elements used)
            consumed = 0
            ic = in_cycle
            for pkt, ready in ep.iter_present():
                if got + consumed >= n:
                    break
                try:
                    self._check_packet(pkt)
                except ChannelError:
                    # Stop the plan before the offending packet: the
                    # per-flit fallback below reaches it at its own take
                    # cycle and raises with identical FIFO state.
                    break
                cur = max(cur, ready)  # stall until the packet is visible
                takes.append(cur)
                use = min(pkt.count, n - got - consumed)
                plan.append((pkt, use))
                consumed += use
                left = use
                while left > 0:  # advance one cycle per filled width-batch
                    step = min(left, width - ic)
                    ic += step
                    left -= step
                    if ic >= width:
                        cur += 1
                        ic = 0
            if not plan:
                # The head packet fails validation: consume it exactly like
                # the per-flit path (take at its visibility cycle, then
                # raise from the check with the packet already taken).
                yield from self._next_packet()
                continue
            ep.take_burst(takes, collect=False)
            idx = got
            for pkt, use in plan:
                out[idx : idx + use] = pkt.payload[:use]
                idx += use
            got += consumed
            self._received += consumed
            in_cycle = ic
            last_pkt, last_use = plan[-1]
            if last_use < last_pkt.count:
                self._current = last_pkt
                self._offset = last_use
            if lane is not None:
                lane.got = got
                lane.ic = in_cycle
                lane.cur = cur
                lane.armed = True
            if cur > engine.cycle:
                yield WaitCycles(cur - engine.cycle)
        if lane is not None and lane.cur is not None \
                and lane.cur > engine.cycle:
            # A macro train finished the message ahead of our wake: the
            # kernel is busy (in the per-flit sense) until the lane's end.
            yield WaitCycles(lane.cur - engine.cycle)
        if in_cycle:
            yield TICK
