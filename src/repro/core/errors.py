"""Exception hierarchy for the SMI reproduction.

All library errors derive from :class:`SMIError` so callers can catch a single
base type. Specific subclasses distinguish configuration mistakes (detected at
program-build time) from runtime protocol violations (detected while the
simulation runs).
"""

from __future__ import annotations


class SMIError(Exception):
    """Base class for all SMI reproduction errors."""


class ConfigurationError(SMIError):
    """Invalid hardware/program configuration (bad port, topology, sizes...)."""


class TopologyError(ConfigurationError):
    """Malformed interconnect topology description."""


class RoutingError(SMIError):
    """Route generation failed (unreachable rank, deadlock, bad table)."""


class ChannelError(SMIError):
    """Misuse of an SMI channel (type mismatch, over-push, closed channel)."""


class TypeMismatchError(ChannelError):
    """Push/Pop datatype does not match the type the channel was opened with."""


class MessageOverrunError(ChannelError):
    """More elements pushed/popped than the channel's declared count."""


class DeadlockError(SMIError):
    """The simulation reached a state where no process can ever make progress."""


class SimulationError(SMIError):
    """Internal simulation failure (invalid process state, corrupted FIFO...)."""


class CodegenError(SMIError):
    """Metadata extraction or transport generation failed."""
