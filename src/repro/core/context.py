"""Per-kernel SMI context: the API surface application kernels program to.

A kernel function receives one :class:`SMIContext` — the analog of the SMI
header the paper's OpenCL kernels include. It exposes the channel-open
primitives of §3.1–3.2 (names follow the paper, pythonised), plus simulator
conveniences (``store`` for results, ``wait`` for modelling compute cycles,
``memory`` for the board's DRAM banks).
"""

from __future__ import annotations

from typing import Generator

from ..simulation.conditions import WaitCycles
from ..simulation.memory import BoardMemory
from ..transport.builder import RankTransport
from .channel import RecvChannel, SendChannel
from .coll_channels import (
    BcastChannel,
    GatherChannel,
    ReduceChannel,
    ScatterChannel,
)
from .comm import SMIComm
from .config import HardwareConfig
from .datatypes import SMIDatatype
from .errors import ChannelError, ConfigurationError
from .ops import SMIOp


class SMIContext:
    """Everything one rank's kernel can reach."""

    def __init__(
        self,
        rank: int,
        transport: RankTransport,
        config: HardwareConfig,
        engine,
        comm_world: SMIComm,
        stores: dict,
        memory: BoardMemory | None = None,
    ) -> None:
        self.rank = rank
        self.config = config
        self.engine = engine
        self.comm_world = comm_world
        self.memory = memory
        self._transport = transport
        self._stores = stores

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """World size (number of ranks in SMI_COMM_WORLD)."""
        return self.comm_world.size

    @property
    def cycle(self) -> int:
        """Current simulation cycle."""
        return self.engine.cycle

    def comm_rank(self, comm: SMIComm | None = None) -> int:
        """``SMI_Comm_rank``: this rank's index within ``comm``."""
        comm = comm or self.comm_world
        return comm.comm_rank_of(self.rank)

    def comm_size(self, comm: SMIComm | None = None) -> int:
        """``SMI_Comm_size``."""
        return (comm or self.comm_world).size

    def _check_peer(self, kind: str, port: int, other_global: int) -> None:
        """Fail fast when a channel contradicts a declared static peer.

        ``OpDecl.peer`` narrows the builder's flow-liveness analysis to
        one route; traffic to any other rank would cross FIFOs proven
        idle. Catch the contradiction at open time with an actionable
        error instead of tripping the flow-dead guard mid-simulation.
        """
        decl = self._transport.ops_by_port.get((kind, port))
        if (decl is not None and decl.peer is not None
                and decl.peer != other_global):
            raise ChannelError(
                f"rank {self.rank}: {kind} channel on port {port} names "
                f"rank {other_global} but the operation declared "
                f"peer={decl.peer} — fix the OpDecl peer or drop it"
            )

    # ------------------------------------------------------------------
    # Point-to-point (§3.1)
    # ------------------------------------------------------------------
    def open_send_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        destination: int,
        port: int,
        comm: SMIComm | None = None,
    ) -> SendChannel:
        """``SMI_Open_send_channel`` — zero-overhead (§3.3)."""
        comm = comm or self.comm_world
        dst_global = comm.global_rank(destination)
        self._check_peer("send", port, dst_global)
        return SendChannel(
            count, dtype, self.rank, dst_global, port, comm,
            endpoint=self._transport.send_endpoint(port),
            burst_mode=self.config.burst_mode,
        )

    def open_recv_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        source: int,
        port: int,
        comm: SMIComm | None = None,
    ) -> RecvChannel:
        """``SMI_Open_recv_channel``."""
        comm = comm or self.comm_world
        src_global = comm.global_rank(source)
        self._check_peer("recv", port, src_global)
        return RecvChannel(
            count, dtype, src_global, self.rank, port, comm,
            endpoint=self._transport.recv_endpoint(port),
            burst_mode=self.config.burst_mode,
        )

    def open_credited_send_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        destination: int,
        port: int,
        comm: SMIComm | None = None,
        window_packets: int | None = None,
    ):
        """Open a send channel using §3.3's credit-based flow control.

        Requires both a send and a receive endpoint declared on ``port``
        at both ranks (the reverse path carries CREDIT packets).
        """
        from .credited import CreditedSendChannel

        comm = comm or self.comm_world
        dst_global = comm.global_rank(destination)
        self._check_peer("send", port, dst_global)
        self._check_peer("recv", port, dst_global)  # the credit return path
        return CreditedSendChannel(
            count, dtype, self.rank, dst_global, port, comm,
            endpoint=self._transport.send_endpoint(port),
            credit_endpoint=self._transport.recv_endpoint(port),
            window_packets=(window_packets if window_packets is not None
                            else self.config.endpoint_fifo_depth),
        )

    def open_credited_recv_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        source: int,
        port: int,
        comm: SMIComm | None = None,
        window_packets: int | None = None,
    ):
        """Open the receive side of a credited channel (see above)."""
        from .credited import CreditedRecvChannel

        comm = comm or self.comm_world
        src_global = comm.global_rank(source)
        self._check_peer("recv", port, src_global)
        self._check_peer("send", port, src_global)  # the credit return path
        return CreditedRecvChannel(
            count, dtype, src_global, self.rank, port, comm,
            endpoint=self._transport.recv_endpoint(port),
            credit_endpoint=self._transport.send_endpoint(port),
            window_packets=(window_packets if window_packets is not None
                            else self.config.endpoint_fifo_depth),
        )

    @staticmethod
    def push(channel: SendChannel, value) -> Generator:
        """``SMI_Push`` (alias for channel.push)."""
        return channel.push(value)

    @staticmethod
    def pop(channel: RecvChannel) -> Generator:
        """``SMI_Pop`` (alias for channel.pop)."""
        return channel.pop()

    # ------------------------------------------------------------------
    # Collectives (§3.2)
    # ------------------------------------------------------------------
    def _collective_resources(self, port: int, kind: str):
        t = self._transport
        if port not in t.support_kernels:
            raise ChannelError(
                f"rank {self.rank}: no collective declared on port {port}; "
                "collective ports must be known at build time (§2.2)"
            )
        kernel = t.support_kernels[port]
        if kernel.kind != kind:
            raise ChannelError(
                f"rank {self.rank}: port {port} hosts a {kernel.kind!r} "
                f"support kernel, not {kind!r}"
            )
        return t.coll_ctrl[port], t.coll_app_in[port], t.coll_app_out[port]

    def open_bcast_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        port: int,
        root: int,
        comm: SMIComm | None = None,
    ) -> BcastChannel:
        """``SMI_Open_bcast_channel``."""
        comm = comm or self.comm_world
        ctrl, app_in, app_out = self._collective_resources(port, "bcast")
        return BcastChannel(
            count, dtype, self.rank, comm.global_rank(root), port, comm,
            ctrl, app_in, app_out, burst_mode=self.config.burst_mode,
        )

    def open_reduce_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        op: SMIOp,
        port: int,
        root: int,
        comm: SMIComm | None = None,
    ) -> ReduceChannel:
        """``SMI_Open_reduce_channel``."""
        comm = comm or self.comm_world
        ctrl, app_in, app_out = self._collective_resources(port, "reduce")
        return ReduceChannel(
            count, dtype, self.rank, comm.global_rank(root), port, comm,
            ctrl, app_in, app_out, reduce_op=op,
            burst_mode=self.config.burst_mode,
        )

    def open_scatter_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        port: int,
        root: int,
        comm: SMIComm | None = None,
    ) -> ScatterChannel:
        """``SMI_Open_scatter_channel`` (interface per §3.2's scheme)."""
        comm = comm or self.comm_world
        ctrl, app_in, app_out = self._collective_resources(port, "scatter")
        return ScatterChannel(
            count, dtype, self.rank, comm.global_rank(root), port, comm,
            ctrl, app_in, app_out, burst_mode=self.config.burst_mode,
        )

    def open_gather_channel(
        self,
        count: int,
        dtype: SMIDatatype,
        port: int,
        root: int,
        comm: SMIComm | None = None,
    ) -> GatherChannel:
        """``SMI_Open_gather_channel`` (interface per §3.2's scheme)."""
        comm = comm or self.comm_world
        ctrl, app_in, app_out = self._collective_resources(port, "gather")
        return GatherChannel(
            count, dtype, self.rank, comm.global_rank(root), port, comm,
            ctrl, app_in, app_out, burst_mode=self.config.burst_mode,
        )

    # ------------------------------------------------------------------
    # Simulator conveniences
    # ------------------------------------------------------------------
    def store(self, key: str, value) -> None:
        """Record a named result retrievable from the program run."""
        self._stores[(self.rank, key)] = value

    @staticmethod
    def wait(cycles: int):
        """Model ``cycles`` of local computation (yield this)."""
        if cycles < 1:
            raise ConfigurationError("wait needs at least 1 cycle")
        return WaitCycles(cycles)

    def elapsed_us(self) -> float:
        """Simulated time elapsed so far, in microseconds."""
        return self.config.cycles_to_us(self.engine.cycle)
