"""Communicators (§3.1–3.2).

"Analogously to MPI, communicators can be established at runtime, and allow
communication to be further organized into logical groups." A communicator
is an ordered set of global ranks; all rank arguments of the SMI API
(destination, source, root) are communicator-relative, and the transport
works in global ranks — the channel layer translates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ConfigurationError


@dataclass(frozen=True)
class SMIComm:
    """An ordered group of global ranks."""

    ranks: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ConfigurationError("communicator cannot be empty")
        if len(set(self.ranks)) != len(self.ranks):
            raise ConfigurationError(
                f"communicator contains duplicate ranks: {self.ranks}"
            )
        if any(r < 0 for r in self.ranks):
            raise ConfigurationError("communicator ranks must be >= 0")

    @property
    def size(self) -> int:
        """Number of ranks in the communicator (``SMI_Comm_size``)."""
        return len(self.ranks)

    def comm_rank_of(self, global_rank: int) -> int:
        """Communicator-relative rank of a global rank (``SMI_Comm_rank``)."""
        try:
            return self.ranks.index(global_rank)
        except ValueError:
            raise ConfigurationError(
                f"global rank {global_rank} is not in communicator "
                f"{self.ranks}"
            ) from None

    def global_rank(self, comm_rank: int) -> int:
        """Global rank of a communicator-relative rank."""
        if not 0 <= comm_rank < len(self.ranks):
            raise ConfigurationError(
                f"comm rank {comm_rank} out of range [0, {len(self.ranks)})"
            )
        return self.ranks[comm_rank]

    def contains(self, global_rank: int) -> bool:
        return global_rank in self.ranks

    def sub(self, comm_ranks) -> "SMIComm":
        """A sub-communicator from communicator-relative rank indices."""
        return SMIComm(tuple(self.global_rank(i) for i in comm_ranks))

    @classmethod
    def world(cls, num_ranks: int) -> "SMIComm":
        """The world communicator over ``num_ranks`` global ranks."""
        return cls(tuple(range(num_ranks)))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SMIComm{self.ranks}"
