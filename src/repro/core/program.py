"""Program builder: declare kernels, build the transport, run the cluster.

This orchestrates the full development workflow of Fig. 8 inside one object:

1. kernels are registered per rank (MPMD) or for all ranks (SPMD);
2. the metadata extractor collects every SMI operation they use;
3. the route generator turns the topology into routing tables;
4. the transport builder instantiates CKS/CKR pairs, FIFOs and support
   kernels ("the generated code");
5. ``run()`` executes everything on the cycle engine and returns results.

Changing the topology or the number of ranks only changes steps 3–5 — the
program ("bitstream") is untouched, which is the flexibility argument of
§4.3/§5.4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..codegen.extractor import extract_ops
from ..codegen.metadata import OpDecl, ProgramPlan
from ..network.routing import Routes, compute_routes
from ..network.topology import Topology
from ..simulation.engine import Engine
from ..simulation.memory import BoardMemory
from ..transport.builder import Transport, build_transport
from .comm import SMIComm
from .config import NOCTUA, HardwareConfig, MemoryConfig
from .context import SMIContext
from .errors import ConfigurationError

KernelFn = Callable[[SMIContext], object]


@dataclass
class KernelSpec:
    """One registered kernel and the ranks it is instantiated on."""

    fn: KernelFn
    ranks: list[int]
    name: str
    explicit_ops: list[OpDecl] | None = None


@dataclass
class ProgramResult:
    """Outcome of a program run."""

    cycles: int
    elapsed_us: float
    reason: str
    stores: dict
    returns: dict
    engine: Engine
    transport: Transport
    routes: Routes

    @property
    def completed(self) -> bool:
        return self.reason == "completed"

    def store(self, rank: int, key: str):
        """Value saved by ``smi.store(key, ...)`` on ``rank``."""
        return self.stores[(rank, key)]


class SMIProgram:
    """A multi-FPGA SMI program over a given interconnect topology."""

    def __init__(
        self,
        topology: Topology,
        config: HardwareConfig = NOCTUA,
        routing_scheme: str = "auto",
        memory: MemoryConfig | None = None,
        validate_wire: bool = False,
        partition=None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.routing_scheme = routing_scheme
        self.memory_config = memory
        self.validate_wire = validate_wire
        # Sharded backends only: an explicit fabric cut — either a
        # repro.shard.Partition or a list of per-shard rank lists —
        # overriding the automatic min-cut partitioner. Ignored by the
        # sequential backend.
        self.partition = partition
        self._kernels: list[KernelSpec] = []
        self._manual_decls: list[tuple[int, OpDecl]] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _resolve_ranks(self, rank, ranks) -> list[int]:
        if rank is not None and ranks is not None:
            raise ConfigurationError("pass either rank= or ranks=, not both")
        if rank is not None:
            ranks = [rank]
        elif ranks is None or (isinstance(ranks, str) and ranks == "all"):
            ranks = range(self.topology.num_ranks)
        out = sorted(set(int(r) for r in ranks))
        for r in out:
            if not 0 <= r < self.topology.num_ranks:
                raise ConfigurationError(
                    f"kernel rank {r} out of range [0, {self.topology.num_ranks})"
                )
        return out

    def kernel(
        self,
        rank: int | None = None,
        ranks: Iterable[int] | str | None = None,
        name: str | None = None,
        ops: list[OpDecl] | None = None,
    ):
        """Decorator registering a kernel.

        ``rank=i`` instantiates it on one rank (MPMD); ``ranks='all'`` (the
        default) on every rank (SPMD). ``ops`` overrides AST metadata
        extraction for dynamically-generated code.
        """

        def decorate(fn: KernelFn) -> KernelFn:
            self.add_kernel(fn, rank=rank, ranks=ranks, name=name, ops=ops)
            return fn

        return decorate

    def add_kernel(
        self,
        fn: KernelFn,
        rank: int | None = None,
        ranks: Iterable[int] | str | None = None,
        name: str | None = None,
        ops: list[OpDecl] | None = None,
    ) -> KernelSpec:
        """Non-decorator kernel registration."""
        spec = KernelSpec(
            fn=fn,
            ranks=self._resolve_ranks(rank, ranks),
            name=name or fn.__name__,
            explicit_ops=ops,
        )
        self._kernels.append(spec)
        return spec

    def declare(self, rank: int, op: OpDecl) -> None:
        """Manually add an operation declaration (codegen metadata)."""
        self._manual_decls.append((rank, op))

    # ------------------------------------------------------------------
    # Build + run
    # ------------------------------------------------------------------
    def build_plan(self) -> ProgramPlan:
        """Collect the full operation metadata (extractor output)."""
        plan = ProgramPlan(self.topology.num_ranks)
        seen: dict[int, set] = {}
        def _add(rank: int, decl: OpDecl) -> None:
            key = (decl.kind, decl.port, decl.dtype.name,
                   decl.reduce_op.name if decl.reduce_op else None,
                   decl.buffer_depth, decl.scheme)
            bucket = seen.setdefault(rank, set())
            if key in bucket:
                return
            bucket.add(key)
            plan.add(rank, decl)

        for spec in self._kernels:
            decls = (
                spec.explicit_ops
                if spec.explicit_ops is not None
                else extract_ops(spec.fn)
            )
            for rank in spec.ranks:
                for decl in decls:
                    _add(rank, decl)
        for rank, decl in self._manual_decls:
            _add(rank, decl)
        plan.validate()
        return plan

    def generate_report(self):
        """The code generator's hardware inventory for this program
        (Fig. 8's generated-source analog; see :mod:`repro.codegen`)."""
        from ..codegen.generator import generate

        return generate(self.build_plan(), self.topology, self.config)

    def run(self, max_cycles: int | None = None) -> ProgramResult:
        """Build everything and simulate until all kernels finish.

        ``HardwareConfig.backend`` selects the execution engine: the
        sequential single-engine path below, or the sharded backends
        (:mod:`repro.shard`), which partition the fabric, simulate the
        shards on separate engines (optionally in forked worker
        processes) and synchronise them in conservative epochs —
        cycle-exact either way.
        """
        if not self._kernels:
            raise ConfigurationError("program has no kernels")
        if self.config.backend != "sequential":
            from ..shard.backend import run_sharded

            result = run_sharded(self, max_cycles)
            self._maybe_export_trace(result)
            return result
        engine = Engine()
        # Flight recorder (None unless config.trace): the zero-overhead
        # gate for every instrumented site in this engine's fabric.
        from ..trace import recorder_from_config

        engine.trace = recorder_from_config(self.config)
        routes = compute_routes(self.topology, self.routing_scheme)
        plan = self.build_plan()
        transport = build_transport(
            engine, plan, routes, self.config, validate_wire=self.validate_wire
        )
        comm_world = SMIComm.world(self.topology.num_ranks)
        stores: dict = {}
        memories: dict[int, BoardMemory] = {}
        if self.memory_config is not None:
            for rank in range(self.topology.num_ranks):
                memories[rank] = BoardMemory(
                    engine, rank,
                    num_banks=self.memory_config.num_banks,
                    width_elements=self.memory_config.bank_width_elements,
                )
        procs: list[tuple[str, int, object]] = []
        for spec in self._kernels:
            for rank in spec.ranks:
                ctx = SMIContext(
                    rank=rank,
                    transport=transport.rank(rank),
                    config=self.config,
                    engine=engine,
                    comm_world=comm_world,
                    stores=stores,
                    memory=memories.get(rank),
                )
                proc = engine.spawn(
                    spec.fn(ctx), name=f"{spec.name}@rank{rank}"
                )
                procs.append((spec.name, rank, proc))
        outcome = engine.run(max_cycles=max_cycles)
        returns = {
            (name, rank): proc.result for name, rank, proc in procs
        }
        result = ProgramResult(
            cycles=outcome.cycles,
            elapsed_us=self.config.cycles_to_us(outcome.cycles),
            reason=outcome.reason,
            stores=stores,
            returns=returns,
            engine=engine,
            transport=transport,
            routes=routes,
        )
        self._maybe_export_trace(result)
        return result

    def _maybe_export_trace(self, result: ProgramResult) -> None:
        """Write the run's trace to ``$REPRO_TRACE_OUT`` when set.

        The env var is the CLI's only channel into the result objects
        (``--trace out.json`` plumbs it, mirroring ``--macro-cruise``):
        ``.json`` gets Chrome/Perfetto trace-event JSON, ``.jsonl`` the
        compact line form. Programmatic users skip the file and read
        ``result.engine.trace`` (sequential) or
        ``result.transport.trace`` (sharded, pre-merged) directly.
        """
        import os

        out = os.environ.get("REPRO_TRACE_OUT", "")
        if not out:
            return
        from ..trace import merge_segments, write_trace

        merged = getattr(result.transport, "trace", None)
        if merged is None:
            recorder = getattr(result.engine, "trace", None)
            if recorder is None:
                return
            merged = merge_segments([recorder.segment()])
        write_trace(merged, out)
