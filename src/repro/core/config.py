"""Hardware configuration for the simulated SMI platform.

The paper's experimental platform (§5.1) is the Noctua cluster: Nallatech 520N
boards with a Stratix 10 GX2800, four 40 Gbit/s QSFP network ports exposed to
HLS as 256-bit I/O channels, and hosts connected by 100 Gbit/s Omni-Path.

All timing calibration constants for the cycle-level simulator live here, in
one :class:`HardwareConfig` dataclass, so every benchmark states exactly which
platform model it ran on. The defaults model Noctua:

* **Clocks.** The BSP's 256-bit I/O channel moves one 32-byte packet per
  *link slot*; at the QSFP line rate of 40 Gbit/s that is one packet every
  6.4 ns. HLS transport kernels close timing well above that: we model the
  kernel clock at 312.5 MHz with ``link_cycles_per_packet = 2``, so a link
  still carries exactly 40 Gbit/s raw (35 Gbit/s payload — "35Gbit/s when
  taking the 4 B header of each network packet into account", §5.3.1),
  while a CKS has ~2 cycles of headroom per packet. This headroom is what
  lets R-burst polling (R=8 spends 8 of every 12 cycles on one input)
  still saturate a single stream at >90% of link payload rate, consistent
  with Fig. 9 *and* Table 4 simultaneously.
* **Per-hop link latency**: calibrated against Table 3. SMI latency grows
  by ~0.72 us per hop ((5.103-0.801)/6 us between 1 and 7 hops), i.e. ~224
  kernel cycles; ``link_latency_cycles`` covers the wire/SerDes part and
  the CK traversal adds the rest. The remaining 1-hop cycles come from the
  endpoint stack (``endpoint_latency_cycles`` of HLS interface pipelining
  at each end, packing, endpoint FIFOs), which the simulator models
  explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

#: Transport kernel clock frequency (Hz).
DEFAULT_CLOCK_HZ = 312.5e6


@dataclass(frozen=True)
class HardwareConfig:
    """Parameters of the simulated multi-FPGA platform.

    Attributes
    ----------
    clock_hz:
        Transport/application kernel clock frequency.
    link_cycles_per_packet:
        Kernel cycles per 32-byte link slot; clock_hz * 32 B /
        link_cycles_per_packet is the raw QSFP rate (40 Gbit/s default).
    link_latency_cycles:
        Cycles a packet spends in flight on an inter-FPGA link
        (serialization + SerDes + board traces). Calibrated to Table 3.
    endpoint_latency_cycles:
        Pipeline latency of the HLS interface between an application
        endpoint and its CKS/CKR (part of the Table 3 calibration).
    num_interfaces:
        Number of QSFP network ports per FPGA (the 520N exposes 4), i.e.
        the number of CKS/CKR pairs instantiated by the transport.
    read_burst (R):
        The polling parameter of §4.3: a CKS/CKR keeps reading from the same
        input connection up to R packets while data is available, before
        polling the next connection.
    endpoint_fifo_depth:
        Depth, in packets, of the FIFO between an application endpoint and
        its CKS/CKR. This realises the channel "asynchronicity degree"
        k = depth * elements_per_packet of §3.3. Programs must not rely on
        it for correctness (deadlock freedom), only for performance.
    inter_ck_fifo_depth:
        Depth, in packets, of FIFOs between communication kernels
        (CKS<->CKS, CKR<->CKR, CKR<->CKS pairs).
    reduce_credits:
        C of §4.4: the number of *elements* of accumulation buffer at the
        Reduce root. The root releases new credits to all ranks each time a
        full tile of C elements has been combined and drained.
    max_ranks:
        The 1-byte packet header limits ranks (and ports) to 256 (§4.2).
    max_ports:
        Maximum distinct communication endpoints per rank (1-byte header).
    burst_mode:
        Enable the simulator's burst fast path: contiguous runs of packets
        move through FIFOs, polling arbiters, CKS/CKR and links in a single
        engine event with analytically computed per-item cycles, instead of
        one generator step per packet per layer. Cycle counts and per-FIFO
        push/pop statistics are identical with the flag on or off (enforced
        by ``tests/test_burst_equivalence.py``); only wall-clock simulation
        speed changes. Default on; turn off to A/B against the literal
        per-flit interpretation.
    pattern_replication:
        Enable steady-state pattern replication inside the burst planner
        (:mod:`repro.transport.planner`): when consecutive committed
        windows of one CK are Δ-shifted copies of each other, further
        rounds are validated against live supply/slot state and committed
        in bulk instead of re-running the full polling simulation per
        round. Like ``burst_mode`` it never changes cycle counts (the
        equivalence suite covers it); it only changes simulator
        wall-clock. Only meaningful with ``burst_mode`` on. Turn off to
        A/B the replication plane in isolation.
    cruise_induction:
        Enable cruise-mode induction inside replication trains: once a
        train round validates, further rounds whose every resource is
        train-internal or arithmetically bounded (committed supply,
        free slots and release schedules, supply horizons) commit in
        bulk with no per-round validation walk. Cycle-exact like the
        planes beneath it (the equivalence and fuzz suites pin the
        3-way per-flit / replicated / cruise equality); pays mainly in
        deep-buffer configurations where trains span many rounds. Only
        meaningful with ``pattern_replication`` on. Turn off to A/B the
        induction in isolation.
    macro_cruise:
        Enable whole-program analytical fast-forward (macro-cruise) on
        top of cruise induction: the supply planner registers every
        plane of the program (CK processes, support kernels, the app
        channels' burst endpoints) and, whenever a replication train
        stalls on an application endpoint whose channel is asleep
        inside a proven deterministic burst plan, extends that plan
        arithmetically in the same engine event — staging/taking with
        the exact per-flit cycles — instead of waiting for the
        channel's next wake. Trains then run to the next true
        externality (supply horizon, routing-key drift, pattern
        Δ-exhaustion, train caps) and the engine clock crosses the
        whole span in one event per plane. Cycle-exact like every
        plane beneath it (the 6-way fuzz suite pins flit / burst /
        replicated / cruise / sharded / macro equality); every
        fast-forward window also asserts its closed-form span against
        the pattern arithmetic and is reported for the perfmodel
        residual check. Only meaningful with ``cruise_induction`` on.
        Default off; the deep-buffer benchmarks switch it on.
    record_accepts:
        Opt-in arbiter instrumentation: when True every CKS/CKR polling
        arbiter keeps a bounded histogram of inter-accept gaps (see
        :class:`repro.simulation.stats.GapHistogram`), used by the polling
        ablation benchmark. Off by default because it costs a dict update
        per accepted packet.
    backend:
        Simulation execution backend (see :mod:`repro.shard`):
        ``"sequential"`` (default) runs the whole fabric on one engine;
        ``"sharded"`` partitions the fabric into ``shards`` pieces, each
        on its own engine, advanced in conservative epochs synchronised
        on SupplySchedule horizons (in-process — the cycle-exactness
        reference for the parallel plane); ``"process"`` runs the same
        epoch protocol with one forked worker process per shard,
        exchanging pickled boundary batches — actual multi-core
        parallelism. All backends are cycle-exact: on completed runs,
        identical ``RunResult.cycles``, per-rank stores, per-FIFO
        push/pop counts and occupancy peaks (``tests/test_shard.py``
        and the fuzz suite enforce it); only simulator wall-clock
        differs. Two scoping notes shared with the burst plane itself:
        a ``max_cycles``-truncated run pins ``cycles`` and ``reason``
        but not per-FIFO counters (counters tally *committed* events,
        and the planes commit different distances past an arbitrary
        cap — sequential burst vs per-flit differ there too), and the
        ``bursts``/``burst_items`` diagnostics describe each plane's
        own batching, never an invariant.
    shards:
        Number of fabric partitions for the sharded backends. Must be 1
        for the sequential backend and ``1 <= shards <= num_ranks``
        otherwise (the partitioner validates against the topology).
    shard_transport:
        Boundary-exchange transport of the ``process`` backend.
        ``"shm"`` ships packed batch records through per-boundary
        shared-memory rings (:mod:`repro.shard.wire`) and lets workers
        self-pace mid-epoch — floors publish as soon as they are proven,
        not at the epoch barrier; ``"pipe"`` sends the same packed
        records over the control pipe in coordinator-driven epochs (the
        PR-5 protocol with the pickle cost removed — useful for A/B
        isolation of codec vs transport wins); ``"auto"`` (default)
        picks ``shm`` when ``multiprocessing.shared_memory`` works on
        the platform and falls back to ``pipe``. Ignored by the
        ``sequential`` and in-process ``sharded`` backends, which move
        no bytes. All transports are cycle-exact (the shard equivalence
        and fuzz suites sweep them).
    shard_ring_bytes:
        Capacity, in bytes, of each shared-memory ring (two rings —
        ship and ack — per directed boundary link). A full ring never
        drops a record: the writer backlogs and retries, and oversized
        batches are split at item granularity, so this is purely a
        performance knob. The 1 MiB default holds thousands of epochs
        of typical boundary traffic.
    shard_inner_rounds:
        Maximum self-paced exchange iterations a shared-memory worker
        runs per coordinator round. Within one iteration a worker
        drains its rings, recomputes its own conservative bound from
        the freshest floors, runs to it, and publishes — so deeper
        values amortise coordinator round-trips further; the cap keeps
        global termination/deadlock checks (which need a barrier)
        regularly scheduled.
    trace:
        Cycle-domain tracing (see :mod:`repro.trace`): when True every
        engine carries a flight recorder — a bounded ring buffer of
        structured events (dispatches, FIFO stage/take, park/wake,
        arbiter grants, link transfers, planner spans and macro-ff
        guard aborts, shard epochs) plus stride-sampled metrics — and
        runs export it as Perfetto/JSONL timelines (sharded backends
        ship per-worker segments to the coordinator for a single
        merged timeline). Off by default; the off path is one ``is
        not None`` check per instrumented site, so cycles stay
        bit-identical and wall clock stays within noise (the fuzz
        suite and the smoke ``trace_overhead_off`` headline pin both).
    trace_buffer_events:
        Flight-recorder ring capacity in events (per engine). When
        full the oldest events are overwritten (and counted), so long
        runs keep the *last* window of history — what a post-mortem
        (``DeadlockError`` dumps, guard aborts) actually wants.
    trace_sample_stride:
        Metrics sampling stride in cycles: time-series gauges (FIFO
        occupancy, link utilization) keep at most one point per stride
        bucket, snapped to the bucket boundary. Sampling is
        emit-driven (the engine has no global tick), so a macro-cruise
        bulk jump contributes at most one point however far it jumps.
    """

    clock_hz: float = DEFAULT_CLOCK_HZ
    link_cycles_per_packet: int = 2
    link_latency_cycles: int = 219
    endpoint_latency_cycles: int = 14
    num_interfaces: int = 4
    read_burst: int = 8
    endpoint_fifo_depth: int = 8
    inter_ck_fifo_depth: int = 8
    reduce_credits: int = 256
    max_ranks: int = 256
    max_ports: int = 256
    burst_mode: bool = True
    pattern_replication: bool = True
    cruise_induction: bool = True
    macro_cruise: bool = False
    record_accepts: bool = False
    backend: str = "sequential"
    shards: int = 1
    shard_transport: str = "auto"
    shard_ring_bytes: int = 1 << 20
    shard_inner_rounds: int = 64
    trace: bool = False
    trace_buffer_events: int = 65536
    trace_sample_stride: int = 4096

    #: Valid values of :attr:`backend`.
    BACKENDS = ("sequential", "sharded", "process")

    #: Valid values of :attr:`shard_transport`.
    SHARD_TRANSPORTS = ("auto", "shm", "pipe")

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError(f"clock_hz must be positive: {self.clock_hz}")
        if self.link_cycles_per_packet < 1:
            raise ConfigurationError(
                f"link_cycles_per_packet must be >= 1: {self.link_cycles_per_packet}"
            )
        if self.link_latency_cycles < 0:
            raise ConfigurationError(
                f"link_latency_cycles must be >= 0: {self.link_latency_cycles}"
            )
        if self.endpoint_latency_cycles < 1:
            raise ConfigurationError(
                f"endpoint_latency_cycles must be >= 1: {self.endpoint_latency_cycles}"
            )
        if not 1 <= self.num_interfaces <= 8:
            raise ConfigurationError(
                f"num_interfaces must be in [1, 8]: {self.num_interfaces}"
            )
        if self.read_burst < 1:
            raise ConfigurationError(f"read_burst (R) must be >= 1: {self.read_burst}")
        for name in ("endpoint_fifo_depth", "inter_ck_fifo_depth", "reduce_credits"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.max_ranks > 256 or self.max_ports > 256:
            raise ConfigurationError(
                "packet header encodes rank/port in 1 byte each; max is 256"
            )
        if self.backend not in self.BACKENDS:
            known = ", ".join(self.BACKENDS)
            raise ConfigurationError(
                f"unknown backend {self.backend!r} (known: {known})"
            )
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1: {self.shards}")
        if self.backend == "sequential" and self.shards != 1:
            raise ConfigurationError(
                "shards > 1 requires backend='sharded' or 'process' "
                f"(got backend='sequential', shards={self.shards})"
            )
        if self.shard_transport not in self.SHARD_TRANSPORTS:
            known = ", ".join(self.SHARD_TRANSPORTS)
            raise ConfigurationError(
                f"unknown shard_transport {self.shard_transport!r} "
                f"(known: {known})"
            )
        if self.shard_ring_bytes < 4096:
            raise ConfigurationError(
                "shard_ring_bytes must be >= 4096 (a ring must hold at "
                f"least one record comfortably): {self.shard_ring_bytes}"
            )
        if self.shard_inner_rounds < 1:
            raise ConfigurationError(
                f"shard_inner_rounds must be >= 1: {self.shard_inner_rounds}"
            )
        if self.trace_buffer_events < 1:
            raise ConfigurationError(
                f"trace_buffer_events must be >= 1: {self.trace_buffer_events}"
            )
        if self.trace_sample_stride < 1:
            raise ConfigurationError(
                f"trace_sample_stride must be >= 1: {self.trace_sample_stride}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def cycle_time_s(self) -> float:
        """Duration of one clock cycle in seconds."""
        return 1.0 / self.clock_hz

    @property
    def link_raw_bandwidth_bps(self) -> float:
        """Raw link bandwidth in bits/s (32 B per link slot)."""
        return 32 * 8 * self.clock_hz / self.link_cycles_per_packet

    @property
    def link_payload_bandwidth_bps(self) -> float:
        """Peak payload bandwidth in bits/s (28 of 32 B are payload)."""
        return 28 * 8 * self.clock_hz / self.link_cycles_per_packet

    def cycles_to_seconds(self, cycles: int | float) -> float:
        """Convert a cycle count to wall-clock seconds at this clock."""
        return cycles / self.clock_hz

    def cycles_to_us(self, cycles: int | float) -> float:
        """Convert a cycle count to microseconds at this clock."""
        return cycles / self.clock_hz * 1e6

    def seconds_to_cycles(self, seconds: float) -> int:
        """Convert wall-clock seconds to (rounded) cycles at this clock."""
        return round(seconds * self.clock_hz)

    def with_(self, **kwargs) -> "HardwareConfig":
        """Return a copy with some fields replaced (convenience)."""
        return replace(self, **kwargs)


#: The default platform model: Noctua's Nallatech 520N boards (§5.1).
NOCTUA = HardwareConfig()

#: Deep-buffer variant of the Noctua model: 32-deep inter-CK FIFOs and a
#: proportionally larger endpoint buffer (the §3.3 asynchronicity degree
#: grows with it). On a Stratix 10 this is still comfortably on-chip
#: (M20K blocks hold 64 x 256-bit words, so a 32-deep 256-bit FIFO is a
#: fraction of one block); the paper fixes the shallow depths for the
#: resource tables, but nothing in the transport requires them. Deeper
#: buffers grow the per-event information quantum, which is the regime
#: where replication trains exceed one round and cruise-mode induction
#: pays — see ``docs/ARCHITECTURE.md`` ("Cruise mode & induction").
NOCTUA_DEEP = HardwareConfig(endpoint_fifo_depth=32, inter_ck_fifo_depth=32)

#: Extra-deep variant (64-deep everywhere): one full M20K per FIFO.
NOCTUA_XDEEP = HardwareConfig(endpoint_fifo_depth=64, inter_ck_fifo_depth=64)

#: Named hardware presets, for harness/benchmark CLI wiring.
HW_PRESETS: dict[str, HardwareConfig] = {
    "noctua": NOCTUA,
    "noctua-deep": NOCTUA_DEEP,
    "noctua-xdeep": NOCTUA_XDEEP,
}


def hardware_preset(name: str) -> HardwareConfig:
    """Look up a named :class:`HardwareConfig` preset (see HW_PRESETS)."""
    try:
        return HW_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(HW_PRESETS))
        raise ConfigurationError(
            f"unknown hardware preset {name!r} (known: {known})"
        ) from None


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip DRAM model of one FPGA board (used by the applications).

    The 520N carries 4 banks of DDR4. The applications in §5.4 are
    memory-bound; their performance is set by how many banks a kernel reads
    from and at what effective rate.

    Attributes
    ----------
    num_banks:
        DDR banks per FPGA.
    bank_width_elements:
        Elements of 4 B deliverable per bank per kernel cycle (the stencil
        kernels read "16 elements per cycle from a single DDR bank", §5.4.2).
    gesummv_stream_bandwidth_Bps:
        Effective sequential-read bandwidth available to one GEMV kernel
        using the whole board (calibrated to Fig. 13: N=4096 distributed
        GESUMMV takes 2.8 ms for a 64 MiB matrix => ~24 GB/s).
    """

    num_banks: int = 4
    bank_width_elements: int = 16
    gesummv_stream_bandwidth_Bps: float = 24.0e9

    def __post_init__(self) -> None:
        if self.num_banks < 1:
            raise ConfigurationError("num_banks must be >= 1")
        if self.bank_width_elements < 1:
            raise ConfigurationError("bank_width_elements must be >= 1")
        if self.gesummv_stream_bandwidth_Bps <= 0:
            raise ConfigurationError("gesummv_stream_bandwidth_Bps must be > 0")


#: Default board memory model (Nallatech 520N, 4x DDR4 banks).
NOCTUA_MEMORY = MemoryConfig()


@dataclass(frozen=True)
class KernelClockModel:
    """Application-kernel fmax as a function of datapath width.

    Wider HLS datapaths close timing at lower frequencies. The paper's
    stencil kernels read 16 elements/cycle (1 bank) or 64 elements/cycle
    (4 banks); calibrating against Fig. 15 (254 ms and 72 ms for a 4096^2
    grid, 32 iterations) yields ~132 MHz and ~116.5 MHz respectively.
    """

    fmax_by_width_hz: dict[int, float] = field(
        default_factory=lambda: {16: 132.0e6, 64: 116.5e6}
    )
    default_fmax_hz: float = 156.25e6

    def fmax(self, width_elements: int) -> float:
        """Clock frequency for a kernel with the given datapath width."""
        if width_elements in self.fmax_by_width_hz:
            return self.fmax_by_width_hz[width_elements]
        # Interpolate in log-width space between known points; clamp outside.
        known = sorted(self.fmax_by_width_hz.items())
        if not known:
            return self.default_fmax_hz
        if width_elements <= known[0][0]:
            return known[0][1]
        if width_elements >= known[-1][0]:
            return known[-1][1]
        for (w0, f0), (w1, f1) in zip(known, known[1:]):
            if w0 <= width_elements <= w1:
                frac = (width_elements - w0) / (w1 - w0)
                return f0 + frac * (f1 - f0)
        return self.default_fmax_hz  # pragma: no cover - unreachable


#: Default application kernel clock model, calibrated to Fig. 15.
NOCTUA_KERNEL_CLOCKS = KernelClockModel()
