"""Credit-based point-to-point flow control (§3.3's rendezvous protocol).

"If the buffer size is smaller than the message size, a transmission
protocol with credit-based flow control must be used between the two
application endpoints, to guarantee that the communication occurring on a
transient channel will not block the transmission of other streaming
messages."

The eager protocol pushes packets as long as *any* downstream buffer has
space; when the receiver stalls, the message backs up through the shared
CKR/CKS FIFOs and head-of-line-blocks every other stream crossing the same
interface. The credited protocol bounds the sender to a window of packets
acknowledged by the receiver, so a stalled receiver quietly idles its
sender instead of clogging the network (demonstrated in
``tests/test_credited_p2p.py``).

Wire protocol: the receiver returns one CREDIT packet per ``batch``
consumed data packets, carrying the batch size implicitly (both ends
derive window and batch from the channel parameters). The reverse path
uses the same port — a credited channel therefore requires both a send and
a receive endpoint on its port at *both* ranks.
"""

from __future__ import annotations

from typing import Generator

from ..network.packet import OpType, Packet
from ..simulation.conditions import TICK
from ..simulation.fifo import Fifo
from .channel import RecvChannel, SendChannel
from .comm import SMIComm
from .datatypes import SMIDatatype
from .errors import ChannelError


class CreditedSendChannel(SendChannel):
    """A send channel that respects a receiver-granted packet window."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        credit_endpoint: Fifo,
        window_packets: int,
    ) -> None:
        # Channel-level bursting is off: the credit window is debited per
        # packet inside _stage_packet, which the vectorised path bypasses.
        # (The transport underneath still bursts.)
        super().__init__(count, dtype, src_global, dst_global, port, comm,
                         endpoint, burst_mode=False)
        if window_packets < 1:
            raise ChannelError("credit window must be >= 1 packet")
        self.credit_endpoint = credit_endpoint
        self.window_packets = window_packets
        self.batch = max(1, window_packets // 2)
        self._credits = window_packets

    def _drain_credits(self) -> None:
        while self.credit_endpoint.readable:
            pkt = self.credit_endpoint.take()
            if pkt.op != OpType.CREDIT:
                raise ChannelError(
                    f"credited send on port {self.port}: unexpected "
                    f"{pkt!r} on the credit path"
                )
            self._credits += self.batch

    def _stage_packet(self, pkt) -> Generator:
        # Spend one credit per packet; block (without occupying any
        # network resource) until the receiver acknowledges progress.
        self._drain_credits()
        while self._credits == 0:
            yield self.credit_endpoint.can_pop
            self._drain_credits()
        self._credits -= 1
        while not self.endpoint.writable:
            yield self.endpoint.can_push
        self.endpoint.stage(pkt)


class CreditedRecvChannel(RecvChannel):
    """A receive channel that returns credits as it consumes packets."""

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        src_global: int,
        dst_global: int,
        port: int,
        comm: SMIComm,
        endpoint: Fifo,
        credit_endpoint: Fifo,
        window_packets: int,
    ) -> None:
        # Channel-level bursting is off: credits are returned per consumed
        # packet inside _next_packet, which the vectorised path bypasses.
        super().__init__(count, dtype, src_global, dst_global, port, comm,
                         endpoint, burst_mode=False)
        if window_packets < 1:
            raise ChannelError("credit window must be >= 1 packet")
        self.credit_endpoint = credit_endpoint
        self.my_global = dst_global
        self.window_packets = window_packets
        self.batch = max(1, window_packets // 2)
        self._consumed_since_credit = 0

    def _next_packet(self) -> Generator:
        yield from super()._next_packet()
        self._consumed_since_credit += 1
        if self._consumed_since_credit >= self.batch:
            self._consumed_since_credit = 0
            credit = Packet(src=self.my_global, dst=self.source_global,
                            port=self.port, op=OpType.CREDIT)
            while not self.credit_endpoint.writable:
                yield self.credit_endpoint.can_push
            self.credit_endpoint.stage(credit)
            yield TICK
