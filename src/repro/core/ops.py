"""Reduction operations for ``SMI_Reduce`` (§3.2).

The paper names ``SMI_ADD``, ``SMI_MAX`` and ``SMI_MIN``; all are associative
and commutative, which the Reduce protocol exploits: the root may combine
per-rank contributions in any arrival order (§3.3). Each op carries its
identity element so the root can initialise its credit-buffer tiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .errors import ConfigurationError


@dataclass(frozen=True)
class SMIOp:
    """An associative, commutative elementwise reduction operator.

    ``fn`` must accept two NumPy arrays (or scalars) and return their
    elementwise combination; ``identity`` is the neutral element under ``fn``.
    """

    name: str
    fn: Callable = field(repr=False)
    identity: float

    def combine(self, a, b):
        """Elementwise combination of two contributions."""
        return self.fn(a, b)

    def identity_array(self, count: int, np_dtype) -> np.ndarray:
        """An array of ``count`` identity elements of the given dtype."""
        dtype = np.dtype(np_dtype)
        if np.isinf(self.identity) and not np.issubdtype(dtype, np.floating):
            # Integer dtypes cannot hold +/-inf; use the dtype's extreme value.
            info = np.iinfo(dtype)
            value = info.min if self.identity < 0 else info.max
            return np.full(count, value, dtype=dtype)
        return np.full(count, self.identity, dtype=dtype)

    def reduce_many(self, contributions: list[np.ndarray]) -> np.ndarray:
        """Fold a list of equally-shaped contributions with this op."""
        if not contributions:
            raise ConfigurationError("reduce_many needs at least one array")
        out = np.asarray(contributions[0]).copy()
        for contrib in contributions[1:]:
            out = self.fn(out, contrib)
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SMIOp({self.name})"


SMI_ADD = SMIOp("SMI_ADD", np.add, 0.0)
SMI_MAX = SMIOp("SMI_MAX", np.maximum, -np.inf)
SMI_MIN = SMIOp("SMI_MIN", np.minimum, np.inf)

#: All built-in reduction ops, keyed by name.
OPS: dict[str, SMIOp] = {op.name: op for op in (SMI_ADD, SMI_MAX, SMI_MIN)}


def op_by_name(name: str) -> SMIOp:
    """Look up a built-in reduction op by its ``SMI_*`` name."""
    try:
        return OPS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SMI op {name!r}; known: {sorted(OPS)}"
        ) from None
