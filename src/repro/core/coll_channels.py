"""Application-side collective channels (§3.2).

"Each collective operation defined by SMI implies a distinct channel type,
open channel operation, and communication primitive." The channel descriptor
talks to the port's support kernel through the element FIFOs created by the
transport builder; opening a channel writes the operation descriptor that
parameterises the generic support kernel (count, root, communicator, op).

API shape notes (the paper specifies Bcast and Reduce; Scatter and Gather
"follow the same scheme", §3.2, but their per-element call signatures are
not spelled out). We expose the streaming-natural forms:

* ``BcastChannel.bcast(value)`` — root passes its next element (returned
  unchanged); non-roots pass None and receive the next element.
* ``ReduceChannel.reduce(value)`` — every rank contributes its next element;
  the root receives the reduced element, others get None.
* ``ScatterChannel``: the root ``push``es ``count * P`` elements in
  communicator-rank order, every rank (root included) ``pop``s its
  ``count``-element segment.
* ``GatherChannel``: every rank ``push``es ``count`` elements, the root
  ``pop``s ``count * P`` elements, sorted by communicator rank (§3.3).
"""

from __future__ import annotations

from typing import Generator

from ..simulation.conditions import TICK, WaitCycles
from ..simulation.fifo import Fifo
from ..transport.collectives import CollectiveDescriptor
from .comm import SMIComm
from .datatypes import SMIDatatype
from .errors import ChannelError, MessageOverrunError
from .ops import SMIOp


class CollectiveChannel:
    """Shared state of an open collective channel."""

    kind: str = "?"

    def __init__(
        self,
        count: int,
        dtype: SMIDatatype,
        my_global: int,
        root_global: int,
        port: int,
        comm: SMIComm,
        ctrl: Fifo,
        app_in: Fifo,
        app_out: Fifo,
        reduce_op: SMIOp | None = None,
        burst_mode: bool = True,
    ) -> None:
        if count < 0:
            raise ChannelError(f"collective count must be >= 0: {count}")
        self.count = count
        self.dtype = dtype
        self.my_global = my_global
        self.root_global = root_global
        self.port = port
        self.comm = comm
        self.app_in = app_in
        self.app_out = app_out
        self.reduce_op = reduce_op
        self._burst = burst_mode
        self._pushed = 0
        self._popped = 0
        descriptor = CollectiveDescriptor(
            kind=self.kind, count=count, root=root_global,
            comm_ranks=comm.ranks, reduce_op=reduce_op,
        )
        if not ctrl.writable:
            raise ChannelError(
                f"port {port}: too many collective operations opened "
                "back-to-back; the support kernel's descriptor queue is full"
            )
        ctrl.stage(descriptor)  # zero-overhead open (§3.3)

    @property
    def is_root(self) -> bool:
        return self.my_global == self.root_global

    # -- element plumbing ------------------------------------------------
    def _push_element(self, value) -> Generator:
        while not self.app_in.writable:
            yield self.app_in.can_push
        self.app_in.stage(value)
        yield TICK

    def _pop_element(self) -> Generator:
        while not self.app_out.readable:
            yield self.app_out.can_pop
        value = self.app_out.take()
        yield TICK
        return value

    def _stream_interleave_burst(self, values, want: int) -> Generator:
        """Burst-mode root interleave: per-flit-identical cycles.

        The app-side supply contract for a collective root: runs of
        elements are *committed early* into ``app_in`` (publishing their
        exact cycles for the support kernel and, transitively, the burst
        planner), and every element already committed to ``app_out`` is
        drained against its known visibility schedule. Batching is only
        sound where the per-flit interleave's next decision is provable:

        * while ``app_in`` has free slots, the push-priority loop pushes
          one element per cycle regardless of what the support kernel
          does (its takes only *add* space), so a whole free-space run
          commits in one event;
        * at the full boundary, whether the next cycle pushes or pops
          depends on the support kernel's unknowable take timing, so the
          loop falls back to literal single steps;
        * once everything is pushed, pops follow the known visibility
          schedule of ``app_out`` (FIFO order: nothing can overtake it),
          so every present element drains in one event.
        """
        app_in = self.app_in
        app_out = self.app_out
        engine = app_in.engine
        total = len(values)
        pushed = 0
        out: list = []
        while pushed < total or len(out) < want:
            if pushed < total:
                free = min(app_in.free_space, total - pushed)
                if free > 0:
                    now = engine.cycle
                    app_in.stage_burst(values[pushed:pushed + free],
                                       range(now, now + free))
                    pushed += free
                    self._pushed += free
                    yield WaitCycles(free)
                    continue
                # Full: the per-flit loop would pop if it can, else block.
                if want > len(out) and app_out.readable:
                    out.append(app_out.take())
                    self._popped += 1
                    yield TICK
                    continue
                conds = [app_in.can_push]
                if want > len(out):
                    conds.append(app_out.can_pop)
                yield tuple(conds)
                continue
            # Pure drain phase: every element already committed drains
            # against its known visibility schedule (Fifo.pop_burst is
            # exactly the per-flit pop loop, batched).
            rest = yield from app_out.pop_burst(want - len(out))
            out.extend(rest)
            self._popped += len(rest)
        return out


class BcastChannel(CollectiveChannel):
    """``SMI_Open_bcast_channel`` / ``SMI_Bcast``."""

    kind = "bcast"

    def bcast(self, value=None) -> Generator:
        """One element of the broadcast; call exactly ``count`` times.

        At the root, ``value`` is sent and returned unchanged (the root
        keeps using its local data, Listing 2); elsewhere the received
        element is returned.
        """
        if self._pushed + self._popped >= self.count:
            raise MessageOverrunError(
                f"bcast called more than count={self.count} times"
            )
        if self.is_root:
            if value is None:
                raise ChannelError("root must provide a value to bcast")
            self._pushed += 1
            yield from self._push_element(value)
            return value
        self._popped += 1
        result = yield from self._pop_element()
        return result


class ReduceChannel(CollectiveChannel):
    """``SMI_Open_reduce_channel`` / ``SMI_Reduce``."""

    kind = "reduce"

    def reduce(self, value) -> Generator:
        """Contribute one element; the root returns the reduced element."""
        if self._pushed >= self.count:
            raise MessageOverrunError(
                f"reduce called more than count={self.count} times"
            )
        self._pushed += 1
        yield from self._push_element(value)
        if self.is_root:
            result = yield from self._pop_element()
            return result
        return None

    def reduce_stream(self, values) -> Generator:
        """Contribute all ``count`` elements as one stream.

        The root interleaves its contribution with draining the reduced
        elements (the same concurrent feed/drain requirement as
        :meth:`ScatterChannel.stream_root` — a sequential root must not
        rely on the support kernel's finite buffers, §3.3) and returns
        the reduced elements in order; non-roots stream their
        contribution and return ``None``. In burst mode whole runs of
        elements are committed against the collective FIFOs' supply and
        slot schedules in single engine events, so the application side
        stops rate-limiting the support kernels' batched combine loop.
        Cycle counts are identical in both modes.
        """
        values = list(values)
        if len(values) != self.count:
            raise ChannelError(
                f"reduce_stream needs exactly count = {self.count} "
                f"elements, got {len(values)}"
            )
        if self._pushed:
            raise MessageOverrunError(
                "reduce_stream on a channel that already contributed "
                f"{self._pushed} element(s)"
            )
        want = self.count if self.is_root else 0
        if self._burst:
            out = yield from self._stream_interleave_burst(values, want)
            return out if self.is_root else None
        out: list = []
        pushed = 0
        total = self.count
        while pushed < total or len(out) < want:
            want_push = pushed < total
            want_pop = len(out) < want
            if want_push and self.app_in.writable:
                self.app_in.stage(values[pushed])
                pushed += 1
                self._pushed += 1
                yield TICK
            elif want_pop and self.app_out.readable:
                out.append(self.app_out.take())
                self._popped += 1
                yield TICK
            else:
                conds = []
                if want_push:
                    conds.append(self.app_in.can_push)
                if want_pop:
                    conds.append(self.app_out.can_pop)
                yield tuple(conds)
        return out if self.is_root else None


class ScatterChannel(CollectiveChannel):
    """``SMI_Open_scatter_channel`` with streaming push/pop."""

    kind = "scatter"

    def stream_root(self, values) -> Generator:
        """Root helper: push all ``count * P`` elements while concurrently
        collecting the root's own segment; returns that segment.

        On hardware the root's feed and drain would be two concurrent
        kernels; in a single sequential kernel they must interleave, or the
        finite support-kernel buffers deadlock once ``count`` exceeds them
        (§3.3's no-reliance-on-buffering rule).
        """
        if not self.is_root:
            raise ChannelError("stream_root is for the scatter root")
        total = self.count * self.comm.size
        if len(values) != total:
            raise ChannelError(
                f"scatter root must provide count*P = {total} elements, "
                f"got {len(values)}"
            )
        if self._burst:
            mine = yield from self._stream_interleave_burst(
                values, self.count)
            return mine
        mine: list = []
        pushed = 0
        while pushed < total or len(mine) < self.count:
            want_push = pushed < total
            want_pop = len(mine) < self.count
            if want_push and self.app_in.writable:
                self.app_in.stage(values[pushed])
                pushed += 1
                self._pushed += 1
                yield TICK
            elif want_pop and self.app_out.readable:
                mine.append(self.app_out.take())
                self._popped += 1
                yield TICK
            else:
                conds = []
                if want_push:
                    conds.append(self.app_in.can_push)
                if want_pop:
                    conds.append(self.app_out.can_pop)
                yield tuple(conds)
        return mine

    def push(self, value) -> Generator:
        """Root only: supply the next of ``count * P`` elements."""
        if not self.is_root:
            raise ChannelError("only the scatter root pushes elements")
        total = self.count * self.comm.size
        if self._pushed >= total:
            raise MessageOverrunError(
                f"scatter root already pushed all {total} elements"
            )
        self._pushed += 1
        yield from self._push_element(value)

    def pop(self) -> Generator:
        """Every rank: receive the next of its ``count`` elements."""
        if self._popped >= self.count:
            raise MessageOverrunError(
                f"scatter rank already popped its {self.count} elements"
            )
        self._popped += 1
        result = yield from self._pop_element()
        return result


class GatherChannel(CollectiveChannel):
    """``SMI_Open_gather_channel`` with streaming push/pop."""

    kind = "gather"

    def collect_root(self, my_values) -> Generator:
        """Root helper: contribute ``my_values`` while concurrently
        collecting the full gathered sequence; returns all count*P
        elements sorted by communicator rank.

        See :meth:`ScatterChannel.stream_root` for why the root must
        interleave its two streams.
        """
        if not self.is_root:
            raise ChannelError("collect_root is for the gather root")
        if len(my_values) != self.count:
            raise ChannelError(
                f"gather root must contribute count = {self.count} "
                f"elements, got {len(my_values)}"
            )
        total = self.count * self.comm.size
        if self._burst:
            out = yield from self._stream_interleave_burst(my_values, total)
            return out
        out: list = []
        pushed = 0
        while pushed < self.count or len(out) < total:
            want_push = pushed < self.count
            want_pop = len(out) < total
            if want_push and self.app_in.writable:
                self.app_in.stage(my_values[pushed])
                pushed += 1
                self._pushed += 1
                yield TICK
            elif want_pop and self.app_out.readable:
                out.append(self.app_out.take())
                self._popped += 1
                yield TICK
            else:
                conds = []
                if want_push:
                    conds.append(self.app_in.can_push)
                if want_pop:
                    conds.append(self.app_out.can_pop)
                yield tuple(conds)
        return out

    def push(self, value) -> Generator:
        """Every rank: contribute the next of its ``count`` elements."""
        if self._pushed >= self.count:
            raise MessageOverrunError(
                f"gather rank already pushed its {self.count} elements"
            )
        self._pushed += 1
        yield from self._push_element(value)

    def pop(self) -> Generator:
        """Root only: receive the next of ``count * P`` sorted elements."""
        if not self.is_root:
            raise ChannelError("only the gather root pops elements")
        total = self.count * self.comm.size
        if self._popped >= total:
            raise MessageOverrunError(
                f"gather root already popped all {total} elements"
            )
        self._popped += 1
        result = yield from self._pop_element()
        return result
