"""SMI datatypes (§3.1 of the paper).

SMI messages are typed: a channel is opened with an ``SMI_Datatype`` and every
``SMI_Push``/``SMI_Pop`` must use the same type. The datatype determines how
many elements fit into the 28-byte payload of a network packet (§4.1-4.2):
``elements_per_packet = 28 // size``.

The reference implementation supports the usual C scalar types; we mirror the
set used in the paper's listings and benchmarks (int and float prominently)
plus the remaining fixed-width scalars needed by the applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

#: Payload bytes per network packet (32 B packet minus 4 B header), §4.2.
PAYLOAD_BYTES = 28

#: Total network packet size in bytes — the width of the BSP I/O channel.
PACKET_BYTES = 32

#: Header bytes per network packet.
HEADER_BYTES = PACKET_BYTES - PAYLOAD_BYTES


@dataclass(frozen=True)
class SMIDatatype:
    """A fixed-width element type carried by SMI channels.

    Attributes
    ----------
    name:
        Human-readable name matching the paper's ``SMI_*`` constants.
    size:
        Element size in bytes.
    np_dtype:
        The NumPy dtype used to (de)serialize payload elements.
    """

    name: str
    size: int
    np_dtype: np.dtype

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size > PAYLOAD_BYTES:
            raise ConfigurationError(
                f"datatype {self.name!r} has size {self.size}B; must be in "
                f"[1, {PAYLOAD_BYTES}]"
            )
        if np.dtype(self.np_dtype).itemsize != self.size:
            raise ConfigurationError(
                f"datatype {self.name!r}: numpy dtype "
                f"{np.dtype(self.np_dtype)} has itemsize "
                f"{np.dtype(self.np_dtype).itemsize}, expected {self.size}"
            )

    @property
    def elements_per_packet(self) -> int:
        """How many elements fit in one 28-byte packet payload."""
        return PAYLOAD_BYTES // self.size

    def packets_for(self, count: int) -> int:
        """Number of network packets required to carry ``count`` elements."""
        if count < 0:
            raise ConfigurationError(f"negative element count: {count}")
        epp = self.elements_per_packet
        return -(-count // epp)  # ceil division

    def payload_bytes_for(self, count: int) -> int:
        """Payload bytes occupied by ``count`` elements (excludes headers)."""
        return count * self.size

    def wire_bytes_for(self, count: int) -> int:
        """Total bytes on the wire for ``count`` elements (includes headers)."""
        return self.packets_for(count) * PACKET_BYTES

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SMIDatatype({self.name})"


SMI_CHAR = SMIDatatype("SMI_CHAR", 1, np.dtype(np.int8))
SMI_SHORT = SMIDatatype("SMI_SHORT", 2, np.dtype(np.int16))
SMI_INT = SMIDatatype("SMI_INT", 4, np.dtype(np.int32))
SMI_FLOAT = SMIDatatype("SMI_FLOAT", 4, np.dtype(np.float32))
SMI_DOUBLE = SMIDatatype("SMI_DOUBLE", 8, np.dtype(np.float64))
SMI_LONG = SMIDatatype("SMI_LONG", 8, np.dtype(np.int64))

#: All built-in datatypes, keyed by name.
DATATYPES: dict[str, SMIDatatype] = {
    dt.name: dt
    for dt in (SMI_CHAR, SMI_SHORT, SMI_INT, SMI_FLOAT, SMI_DOUBLE, SMI_LONG)
}


def datatype_by_name(name: str) -> SMIDatatype:
    """Look up a built-in datatype by its ``SMI_*`` name."""
    try:
        return DATATYPES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SMI datatype {name!r}; known: {sorted(DATATYPES)}"
        ) from None
