"""Flight recorder: a bounded ring buffer of cycle-domain trace events.

The recorder is the zero-overhead-off half of the observability
contract: every instrumented site in the engine, FIFOs, links, arbiter,
planner and shard runtime guards its emit behind a single
``if <recorder> is not None`` check against an attribute that defaults
to ``None`` (``Engine.trace``). With tracing disabled no event tuple is
ever built, no method is called, and the simulated cycle counts are
bit-identical to an uninstrumented build — the equivalence/fuzz planes
and the smoke wall-clock gate both pin this.

With tracing enabled, events are plain tuples

    ``(cycle, seq, kind, track, name, dur, args)``

* ``cycle`` — simulated engine cycle the event is keyed on (span start
  for duration events).
* ``seq`` — recorder-local monotonic sequence number; the cross-shard
  merge sorts on ``(cycle, shard, seq)`` so same-cycle events keep
  their emission order per shard.
* ``kind`` — taxonomy tag (see :data:`EVENT_KINDS`).
* ``track`` — the timeline lane the event renders on (one per CK /
  link / engine / planner).
* ``name`` — short human label.
* ``dur`` — span length in cycles (0 for instant events).
* ``args`` — optional dict of structured detail (guard name, hop,
  counts, reasons) or ``None``.

The buffer is a preallocated ring of ``capacity`` slots: when full, the
oldest event is overwritten and ``dropped`` counts it. That makes the
recorder safe to leave on across arbitrarily long runs — it holds the
*last* ``capacity`` events, which is exactly what a post-mortem
(:class:`~repro.core.errors.DeadlockError` dumps, macro-ff guard
aborts) wants.
"""

from __future__ import annotations

import time

from .metrics import MetricsRegistry

#: The event taxonomy. Instrumented sites only ever emit these kinds;
#: the exporter groups and colours by them, and docs/ARCHITECTURE.md
#: documents each one.
EVENT_KINDS = (
    "dispatch",    # engine dispatched a process generator for one event
    "park",        # a process blocked on a wait condition
    "wake",        # a parked process was made runnable (incl. preempt)
    "stage",       # FIFO stage (per item, or one event per burst)
    "take",        # FIFO take (per item, or one event per burst)
    "grant",       # arbiter accepted a packet from an input
    "xfer",        # link transfer (per packet, or one event per burst)
    "span",        # planner phase span: plan/cascade/replicate/cruise
    "ff",          # macro-cruise fast-forward jump (span over the jump)
    "abort",       # macro-ff guard veto (instant; args: guard, hop)
    "disarm",      # macro-ff permanent refusal (instant; args: reason)
    "epoch",       # shard epoch begin / bound update
    "drain",       # shard drain-to-end phase
)


class TraceRecorder:
    """Bounded ring buffer of trace events plus the metrics registry.

    One recorder is attached per :class:`~repro.simulation.engine.Engine`
    (``engine.trace``) — the in-process sharded backend runs several
    engines in one interpreter, so recorder state can never be a module
    global. The module-level convenience API in :mod:`repro.trace`
    merely points at a recorder (or at ``None``, the no-op state).
    """

    __slots__ = ("capacity", "shard", "dropped", "metrics", "wall",
                 "_buf", "_n", "_head", "_seq", "_wall_base")

    def __init__(self, capacity: int = 65536, stride: int = 4096,
                 shard: int = 0) -> None:
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self.shard = shard
        self.dropped = 0
        self.metrics = MetricsRegistry(stride)
        #: Wall-clock phase intervals ``(phase, t0_s, t1_s)`` in
        #: ``time.perf_counter`` seconds — the process shard backend
        #: appends one per compute/serialize/ipc_wait stretch so the
        #: exporter can render wall lanes next to the cycle lanes.
        self.wall: list[tuple[str, float, float]] = []
        self._buf: list = [None] * capacity
        self._n = 0
        self._head = 0
        self._seq = 0
        self._wall_base = time.perf_counter()

    # ------------------------------------------------------------------
    # Emission (hot path — called only when tracing is enabled)

    def emit(self, cycle: int, kind: str, track: str, name: str,
             dur: int = 0, args: dict | None = None) -> None:
        """Append one event, overwriting the oldest when full."""
        seq = self._seq
        self._seq = seq + 1
        head = self._head
        self._buf[head] = (cycle, seq, kind, track, name, dur, args)
        head += 1
        self._head = 0 if head == self.capacity else head
        if self._n < self.capacity:
            self._n += 1
        else:
            self.dropped += 1

    def sample(self, name: str, cycle: int, value: float) -> None:
        """Record a metrics sample (stride-bucketed; see MetricsRegistry)."""
        self.metrics.sample(name, cycle, value)

    def wall_span(self, phase: str, t0: float, t1: float) -> None:
        """Record one wall-clock phase interval (perf_counter seconds)."""
        self.wall.append((phase, t0, t1))

    # ------------------------------------------------------------------
    # Draining

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including overwritten ones)."""
        return self._seq

    def __len__(self) -> int:
        return self._n

    def events(self) -> list:
        """The retained events, oldest first."""
        if self._n < self.capacity:
            return [ev for ev in self._buf[:self._n]]
        return self._buf[self._head:] + self._buf[:self._head]

    def tail(self, n: int = 32) -> list:
        """The most recent ``n`` retained events, oldest first."""
        evs = self.events()
        return evs[-n:] if n < len(evs) else evs

    def tail_lines(self, n: int = 32) -> list[str]:
        """The last ``n`` events formatted for post-mortem dumps."""
        lines = []
        for cycle, seq, kind, track, name, dur, args in self.tail(n):
            span = f" +{dur}" if dur else ""
            extra = f" {args}" if args else ""
            lines.append(
                f"  cycle {cycle}{span} [{kind:>8}] {track}: {name}{extra}")
        if self.dropped:
            lines.insert(0, f"  ... ({self.dropped} older events "
                            f"overwritten; buffer holds {self.capacity})")
        return lines

    def segment(self) -> dict:
        """A picklable snapshot for cross-shard shipping & export.

        This is the unit the process shard backend attaches to its
        ``FinalReport`` and the coordinator merges: everything in it is
        plain builtins so it rides the existing control-pipe pickle path.
        """
        return {
            "shard": self.shard,
            "events": self.events(),
            "counters": self.metrics.snapshot(),
            "wall": list(self.wall),
            "wall_base": self._wall_base,
            "dropped": self.dropped,
            "emitted": self._seq,
        }
