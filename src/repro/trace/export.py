"""Exporters: Chrome/Perfetto trace-event JSON, compact JSONL, and the
cross-shard timeline merge.

Cycle-domain lanes use the simulated cycle as the trace timestamp (one
Perfetto "process" per shard, one "thread" per track: engine, planner,
each CK/FIFO/link), so a cycle reads as a microsecond in the UI and
relative timing is exact. Wall-clock lanes render as a separate
"process" per shard (``shard N (wall)``) with one thread per phase —
compute / serialize / ipc_wait — timestamped in real microseconds since
the earliest worker's recorder was created, so epoch-protocol stalls
line up across workers.

The merge is deterministic: events sort on ``(cycle, shard, seq)`` —
``seq`` is per-recorder emission order, so same-cycle events within a
shard keep their causal order and cross-shard ties break on the shard
index, never on arrival order over the control pipe.
"""

from __future__ import annotations

import json

from .metrics import merge_snapshots

#: The one timing-dict schema shared by the shard backends' per-worker
#: phase breakdown (``FinalReport.timing`` entries), the wall-lane
#: exporter, and ``reporting.shard_timing_summary``. Wall-second phases
#: first, exchange-round counters last.
TIMING_FIELDS = ("compute_s", "serialize_s", "ipc_wait_s",
                 "inner_rounds", "outer_rounds")

#: The wall phases that become exporter lanes (the ``*_s`` fields).
WALL_PHASES = ("compute", "serialize", "ipc_wait")


def new_phase() -> dict:
    """A zeroed per-worker timing dict (the canonical schema)."""
    return {"compute_s": 0.0, "serialize_s": 0.0, "ipc_wait_s": 0.0,
            "inner_rounds": 0, "outer_rounds": 0}


def validate_timing(entry, where: str = "timing entry") -> dict | None:
    """Check one per-shard timing dict against :data:`TIMING_FIELDS`.

    ``None`` and ``{}`` are legitimate placeholders (in-process backends
    have no workers to time) and pass through as ``None``. A *non-empty*
    entry must carry exactly the canonical fields, each numeric or
    ``None`` (an aborted worker reports phases it never measured as
    ``None``; renderers count those as zero) — anything else raises
    ``ValueError`` loudly instead of being papered over with zeros.
    """
    if not entry:
        return None
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: expected a dict, got {type(entry).__name__}")
    got = set(entry)
    want = set(TIMING_FIELDS)
    if got != want:
        missing = sorted(want - got)
        extra = sorted(got - want)
        raise ValueError(
            f"{where}: timing dict schema mismatch"
            + (f", missing {missing}" if missing else "")
            + (f", unexpected {extra}" if extra else ""))
    for key in TIMING_FIELDS:
        value = entry[key]
        if value is not None and (
                not isinstance(value, (int, float))
                or isinstance(value, bool)):
            raise ValueError(
                f"{where}: field {key!r} must be numeric or None, "
                f"got {type(value).__name__}")
    return entry


# ----------------------------------------------------------------------
# Cross-shard merge

def merge_segments(segments: list[dict]) -> dict:
    """Merge per-shard recorder segments onto one timeline.

    Events are tagged with their shard and sorted ``(cycle, shard,
    seq)``; counter series get a ``s<shard>/`` prefix so same-named
    per-shard series stay distinguishable; wall spans keep their shard
    tag and the per-segment recorder creation time so the exporter can
    rebase them onto a common origin.
    """
    events = []
    counters: dict = {}
    wall = []
    dropped = 0
    emitted = 0
    shards = []
    for seg in segments:
        shard = seg["shard"]
        shards.append(shard)
        for ev in seg["events"]:
            # (cycle, shard, seq, kind, track, name, dur, args)
            events.append((ev[0], shard) + tuple(ev[1:]))
        prefix = f"s{shard}/"
        counters = merge_snapshots(
            counters, {prefix + name: pts
                       for name, pts in seg["counters"].items()})
        base = seg.get("wall_base", 0.0)
        for phase, t0, t1 in seg.get("wall", ()):
            wall.append((shard, phase, t0, t1, base))
        dropped += seg.get("dropped", 0)
        emitted += seg.get("emitted", len(seg["events"]))
    events.sort(key=lambda ev: (ev[0], ev[1], ev[2]))
    return {
        "shards": sorted(shards),
        "events": events,
        "counters": counters,
        "wall": wall,
        "dropped": dropped,
        "emitted": emitted,
    }


# ----------------------------------------------------------------------
# Perfetto / Chrome trace-event JSON

def _wall_origin(merged: dict) -> float:
    times = [t0 for _shard, _phase, t0, _t1, _base in merged["wall"]]
    return min(times) if times else 0.0


def to_perfetto(merged: dict) -> dict:
    """Build a Chrome trace-event JSON object from a merged timeline.

    Loadable in ``ui.perfetto.dev`` (or ``chrome://tracing``): one
    process per shard for the cycle domain, one per shard for the wall
    domain, counter tracks from the metrics registry, planner spans as
    slices nested on the planner thread.
    """
    trace_events = []
    # Stable thread ids per (shard, track).
    tids: dict = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = len([k for k in tids if k[0] == pid]) + 1
            tids[key] = tid
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    for shard in merged["shards"]:
        pid = shard + 1
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid,
            "args": {"name": f"shard {shard} (cycles)"},
        })
    for cycle, shard, seq, kind, track, name, dur, args in merged["events"]:
        pid = shard + 1
        ev = {
            "name": name, "cat": kind, "ph": "X" if dur else "i",
            "ts": cycle, "pid": pid, "tid": tid_for(pid, track),
        }
        if dur:
            ev["dur"] = dur
        else:
            ev["s"] = "t"   # instant scope: thread
        a = {"seq": seq}
        if args:
            a.update(args)
        ev["args"] = a
        trace_events.append(ev)

    # Counter tracks (cycle domain, per shard via the s<N>/ prefix).
    for name, pts in sorted(merged["counters"].items()):
        shard = int(name[1:name.index("/")]) if name.startswith("s") \
            and "/" in name and name[1:name.index("/")].isdigit() else 0
        pid = shard + 1
        for cycle, value in pts:
            trace_events.append({
                "ph": "C", "name": name, "pid": pid, "ts": cycle,
                "args": {"value": value},
            })

    # Wall-clock lanes: perf_counter seconds → microseconds since the
    # earliest recorded span, one process per shard, one thread per phase.
    origin = _wall_origin(merged)
    wall_pids = set()
    for shard, phase, t0, t1, _base in merged["wall"]:
        pid = 1001 + shard
        if pid not in wall_pids:
            wall_pids.add(pid)
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid,
                "args": {"name": f"shard {shard} (wall)"},
            })
        trace_events.append({
            "name": phase, "cat": "wall", "ph": "X",
            "ts": (t0 - origin) * 1e6, "dur": max((t1 - t0) * 1e6, 0.01),
            "pid": pid, "tid": tid_for(pid, phase),
        })

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "domain": "simulated cycles (1 cycle rendered as 1 us); "
                      "wall lanes in real us",
            "dropped_events": merged["dropped"],
            "emitted_events": merged["emitted"],
        },
    }


def to_jsonl(merged: dict) -> str:
    """The compact line-delimited form: one JSON object per line.

    A ``header`` line, then one ``event`` line per trace event, then
    one ``counter`` line per series, then one ``wall`` line per span.
    """
    lines = [json.dumps({
        "type": "header", "shards": merged["shards"],
        "dropped": merged["dropped"], "emitted": merged["emitted"],
    })]
    for cycle, shard, seq, kind, track, name, dur, args in merged["events"]:
        rec = {"type": "event", "cycle": cycle, "shard": shard,
               "seq": seq, "kind": kind, "track": track, "name": name}
        if dur:
            rec["dur"] = dur
        if args:
            rec["args"] = args
        lines.append(json.dumps(rec))
    for name, pts in sorted(merged["counters"].items()):
        lines.append(json.dumps(
            {"type": "counter", "name": name, "points": pts}))
    origin = _wall_origin(merged)
    for shard, phase, t0, t1, _base in merged["wall"]:
        lines.append(json.dumps(
            {"type": "wall", "shard": shard, "phase": phase,
             "t0_us": (t0 - origin) * 1e6, "t1_us": (t1 - origin) * 1e6}))
    return "\n".join(lines) + "\n"


def write_trace(merged: dict, path: str) -> None:
    """Write a merged timeline to ``path``.

    ``*.jsonl`` gets the compact line form; anything else gets the
    Perfetto-loadable trace-event JSON.
    """
    if path.endswith(".jsonl"):
        data = to_jsonl(merged)
    else:
        data = json.dumps(to_perfetto(merged))
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(data)
