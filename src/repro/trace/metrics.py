"""Stride-sampled time-series metrics keyed on the simulated cycle.

The simulator has no global tick to hang periodic sampling on — the
engine is event-skipping, and macro-cruise fast-forwards jump the clock
by millions of cycles in one event. So sampling is **emit-driven**: an
instrumented site reports ``(name, cycle, value)`` whenever the value
changes, and the registry keeps at most one point per ``stride``-cycle
bucket, snapped to the bucket's start boundary, with last-write-wins
inside a bucket. That bounds the series two ways at once:

* per bucket: one stored point, however many emits land in it;
* per bulk clock jump: a jump from cycle ``a`` to ``a + 10**7`` creates
  at most one new point (at the destination's bucket boundary), never
  ``10**7 / stride`` interpolated ones.

Snapshots are plain ``{name: [(cycle, value), ...]}`` dicts, and
:func:`merge_snapshots` folds them the way ``PlannerStats.merge`` folds
counters — so per-shard registries survive pickling, bulk jumps, and
coordinator-side aggregation without special cases.
"""

from __future__ import annotations


class MetricsRegistry:
    """Named time-series gauges/counters bucketed on a cycle stride."""

    __slots__ = ("stride", "series")

    def __init__(self, stride: int = 4096) -> None:
        if stride < 1:
            raise ValueError("trace sample stride must be >= 1")
        self.stride = stride
        self.series: dict[str, list] = {}

    def sample(self, name: str, cycle: int, value: float) -> None:
        """Record ``value`` at ``cycle``, keeping one point per bucket."""
        boundary = cycle - cycle % self.stride
        ser = self.series.get(name)
        if ser is None:
            self.series[name] = [(boundary, value)]
        elif ser[-1][0] < boundary:
            ser.append((boundary, value))
        else:
            # Same (or an earlier, after a merge) bucket: the bucket's
            # value is the last one observed in it.
            ser[-1] = (ser[-1][0], value)

    def snapshot(self) -> dict:
        """A picklable copy: ``{name: [(bucket_cycle, value), ...]}``."""
        return {name: list(pts) for name, pts in self.series.items()}


def merge_snapshots(a: dict, b: dict) -> dict:
    """Fold two snapshots: union of names, per-name bucket union.

    Buckets present in both take ``b``'s value (the later fold wins,
    matching ``PlannerStats.merge``'s accumulate-into semantics).
    """
    out = {name: list(pts) for name, pts in a.items()}
    for name, pts in b.items():
        if name not in out:
            out[name] = list(pts)
            continue
        by_bucket = dict(out[name])
        by_bucket.update(dict(pts))
        out[name] = sorted(by_bucket.items())
    return out
