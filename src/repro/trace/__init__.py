"""Cycle-domain tracing & metrics: flight recorder, Perfetto export,
cross-shard timeline merge.

Three pieces (see ``docs/ARCHITECTURE.md#observability--tracing``):

* :mod:`repro.trace.recorder` — the flight recorder: a bounded ring
  buffer of structured trace events (engine dispatch, FIFO stage/take,
  park/wake, arbiter grants, link transfers, planner phase spans with
  guard-abort reasons, shard epoch begin/drain/bound updates).
* :mod:`repro.trace.metrics` — stride-sampled time-series
  counters/gauges (FIFO occupancy, link utilization, planner hit
  rates, ff coverage) with snapshot/merge semantics that survive bulk
  macro-cruise clock jumps.
* :mod:`repro.trace.export` — Chrome/Perfetto trace-event JSON keyed
  on simulated cycle plus a compact JSONL form, and the cross-shard
  merge that puts per-worker segments (shipped over the existing
  control-pipe path) onto one timeline with wall-clock
  compute/serialize/ipc_wait lanes.

**Zero-overhead-off contract.** Tracing is off unless
``HardwareConfig.trace`` is set: every instrumented site guards its
emit behind one ``is not None`` check of a recorder attribute that
defaults to ``None``, so with tracing off no event is built, cycles
stay bit-identical, and wall clock stays within noise (the smoke
benchmark records ``trace_overhead_off`` to keep that honest).

The per-engine recorder (``engine.trace``) is authoritative — the
in-process sharded backend runs several engines per interpreter, so
recorder state cannot be global. The module-level API below
(:func:`install` / :func:`emit`) is a convenience handle over the
*current* recorder for code without an engine reference; it is a no-op
while nothing is installed.
"""

from __future__ import annotations

from .export import (TIMING_FIELDS, WALL_PHASES, merge_segments, new_phase,
                     to_jsonl, to_perfetto, validate_timing, write_trace)
from .metrics import MetricsRegistry, merge_snapshots
from .recorder import EVENT_KINDS, TraceRecorder

__all__ = [
    "EVENT_KINDS", "MetricsRegistry", "TIMING_FIELDS", "TraceRecorder",
    "WALL_PHASES", "emit", "install", "installed", "merge_segments",
    "merge_snapshots", "new_phase", "recorder_from_config", "to_jsonl",
    "to_perfetto", "validate_timing", "write_trace",
]

#: The currently-installed module-level recorder (or ``None`` = no-op).
_RECORDER: TraceRecorder | None = None


def install(recorder: TraceRecorder | None) -> TraceRecorder | None:
    """Install (or clear, with ``None``) the module-level recorder.

    Returns the previous recorder so callers can restore it.
    """
    global _RECORDER
    prev = _RECORDER
    _RECORDER = recorder
    return prev


def installed() -> TraceRecorder | None:
    """The module-level recorder, or ``None`` when tracing is off."""
    return _RECORDER


def emit(cycle: int, kind: str, track: str, name: str,
         dur: int = 0, args: dict | None = None) -> None:
    """Emit through the module-level recorder; no-op when none installed."""
    if _RECORDER is not None:
        _RECORDER.emit(cycle, kind, track, name, dur, args)


def recorder_from_config(config, shard: int = 0) -> TraceRecorder | None:
    """Build a recorder from ``HardwareConfig`` — ``None`` when off."""
    if not getattr(config, "trace", False):
        return None
    return TraceRecorder(capacity=config.trace_buffer_events,
                         stride=config.trace_sample_stride, shard=shard)
