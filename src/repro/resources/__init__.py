"""FPGA resource models (Tables 1-2) and the chip database."""

from .chips import CHIPS, STRATIX10_GX2800, Chip
from .model import (
    BCAST_KERNEL,
    COLLECTIVE_KERNELS,
    REDUCE_KERNEL_FP32_SUM,
    ResourceVector,
    SMIResourceEstimate,
    estimate,
    table1,
    table2,
)
