"""Analytical FPGA resource model for the SMI transport (Tables 1 and 2).

The paper reports post-synthesis resource consumption at two design points
(1 QSFP and 4 QSFPs, one application endpoint per CKS/CKR pair) and for the
two collective support kernels. This model reproduces those synthesis
results exactly at the reported configurations and interpolates between
them with the scaling law the paper states: "the number of used resources
grows slightly faster than linear ... due to the fact that the number of
input/output channels that the communication kernels must handle increases
with the number of used QSFPs" (§5.2).

We capture that with a quadratic-through-origin form per resource class:

    r(q) = a * q + b * q^2

where the linear term is per-kernel logic and the quadratic term is the
all-to-all inter-CK wiring (each of the q CKS has q-1 sibling inputs). The
(a, b) pairs are fitted exactly through the paper's q=1 and q=4 synthesis
points. Per-endpoint increments use the CK figures divided by the one
endpoint per pair the paper instantiated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from .chips import STRATIX10_GX2800, Chip


@dataclass(frozen=True)
class ResourceVector:
    """LUT / FF / M20K / DSP consumption of a component."""

    luts: int = 0
    ffs: int = 0
    m20ks: int = 0
    dsps: int = 0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.m20ks + other.m20ks,
            self.dsps + other.dsps,
        )

    def scaled(self, k: float) -> "ResourceVector":
        return ResourceVector(
            round(self.luts * k), round(self.ffs * k),
            round(self.m20ks * k), round(self.dsps * k),
        )

    def fractions(self, chip: Chip) -> dict[str, float]:
        return {
            "luts": chip.fraction("luts", self.luts),
            "ffs": chip.fraction("ffs", self.ffs),
            "m20ks": chip.fraction("m20ks", self.m20ks),
            "dsps": chip.fraction("dsps", self.dsps),
        }


def _fit_quadratic(v1: float, v4: float) -> tuple[float, float]:
    """Fit r(q) = a q + b q^2 through (1, v1) and (4, v4) exactly."""
    # a + b = v1 ; 4 a + 16 b = v4  =>  b = (v4 - 4 v1) / 12.
    b = (v4 - 4 * v1) / 12.0
    a = v1 - b
    return a, b


# Paper synthesis points (Table 1): value at 1 QSFP, value at 4 QSFPs.
_INTERCONNECT_POINTS = {"luts": (144, 1152), "ffs": (4872, 39264), "m20ks": (0, 0)}
_CK_POINTS = {"luts": (6186, 30960), "ffs": (7189, 31072), "m20ks": (10, 40)}

_INTERCONNECT_FIT = {k: _fit_quadratic(*v) for k, v in _INTERCONNECT_POINTS.items()}
_CK_FIT = {k: _fit_quadratic(*v) for k, v in _CK_POINTS.items()}

# Collective support kernels (Table 2; FP32 data, SUM for Reduce).
BCAST_KERNEL = ResourceVector(luts=2560, ffs=3593, m20ks=0, dsps=0)
REDUCE_KERNEL_FP32_SUM = ResourceVector(luts=10268, ffs=14648, m20ks=0, dsps=6)
# Scatter/Gather follow the Bcast structure (rendezvous + streaming,
# no arithmetic); the paper does not report them separately.
SCATTER_KERNEL = BCAST_KERNEL
GATHER_KERNEL = BCAST_KERNEL

COLLECTIVE_KERNELS = {
    "bcast": BCAST_KERNEL,
    "reduce": REDUCE_KERNEL_FP32_SUM,
    "scatter": SCATTER_KERNEL,
    "gather": GATHER_KERNEL,
}


def _eval_fit(fit: dict, q: int) -> dict[str, int]:
    return {k: round(a * q + b * q * q) for k, (a, b) in fit.items()}


@dataclass
class SMIResourceEstimate:
    """Resource breakdown of one rank's SMI instantiation."""

    qsfps: int
    endpoints: int
    interconnect: ResourceVector
    comm_kernels: ResourceVector
    collectives: ResourceVector
    chip: Chip = STRATIX10_GX2800

    @property
    def total(self) -> ResourceVector:
        return self.interconnect + self.comm_kernels + self.collectives

    @property
    def transport_total(self) -> ResourceVector:
        """Interconnect + communication kernels (the Table 1 rows)."""
        return self.interconnect + self.comm_kernels

    def fractions(self) -> dict[str, float]:
        return self.total.fractions(self.chip)


def estimate(
    qsfps: int,
    endpoints_per_pair: int = 1,
    collectives: dict[str, int] | None = None,
    chip: Chip = STRATIX10_GX2800,
) -> SMIResourceEstimate:
    """Estimate SMI resource consumption for one FPGA.

    Parameters
    ----------
    qsfps:
        Number of network ports in use (CKS/CKR pairs instantiated).
    endpoints_per_pair:
        Application endpoints attached to each CKS/CKR pair. Table 1's
        design points use 1; additional endpoints add the per-endpoint
        share of the CK logic (input FIFO + mux leg).
    collectives:
        Optional {kind: count} of collective support kernels to include
        (Table 2 figures, Scatter/Gather approximated by the Bcast cost).
    """
    if not 1 <= qsfps <= 4:
        raise ConfigurationError(f"qsfps must be in [1, 4]: {qsfps}")
    if endpoints_per_pair < 1:
        raise ConfigurationError("endpoints_per_pair must be >= 1")
    inter = _eval_fit(_INTERCONNECT_FIT, qsfps)
    ck = _eval_fit(_CK_FIT, qsfps)
    interconnect = ResourceVector(inter["luts"], inter["ffs"], inter["m20ks"], 0)
    comm = ResourceVector(ck["luts"], ck["ffs"], ck["m20ks"], 0)
    if endpoints_per_pair > 1:
        # Each extra endpoint adds roughly one endpoint's share of a CK's
        # input handling: FIFO + arbitration leg (~1/4 of a single-QSFP CK).
        per_endpoint = ResourceVector(
            *(round(v / 4) for v in (_CK_POINTS["luts"][0],
                                     _CK_POINTS["ffs"][0],
                                     _CK_POINTS["m20ks"][0])), 0
        )
        comm = comm + per_endpoint.scaled(qsfps * (endpoints_per_pair - 1))
    coll = ResourceVector()
    for kind, count in (collectives or {}).items():
        if kind not in COLLECTIVE_KERNELS:
            raise ConfigurationError(f"unknown collective kind {kind!r}")
        coll = coll + COLLECTIVE_KERNELS[kind].scaled(count)
    return SMIResourceEstimate(
        qsfps=qsfps,
        endpoints=qsfps * endpoints_per_pair,
        interconnect=interconnect,
        comm_kernels=comm,
        collectives=coll,
        chip=chip,
    )


def table1() -> dict[str, dict[str, object]]:
    """Reproduce Table 1: transport resources at 1 and 4 QSFPs."""
    out: dict[str, dict[str, object]] = {}
    for q in (1, 4):
        est = estimate(q)
        total = est.transport_total
        out[f"{q} QSFP" + ("s" if q > 1 else "")] = {
            "interconnect": est.interconnect,
            "comm_kernels": est.comm_kernels,
            "pct_luts": 100 * est.chip.fraction("luts", total.luts),
            "pct_ffs": 100 * est.chip.fraction("ffs", total.ffs),
            "pct_m20ks": 100 * est.chip.fraction("m20ks", total.m20ks),
        }
    return out


def table2() -> dict[str, dict[str, object]]:
    """Reproduce Table 2: collective support kernel resources."""
    chip = STRATIX10_GX2800
    out = {}
    for name, vec in (("Broadcast", BCAST_KERNEL),
                      ("Reduce (FP32 SUM)", REDUCE_KERNEL_FP32_SUM)):
        out[name] = {
            "luts": vec.luts,
            "ffs": vec.ffs,
            "m20ks": vec.m20ks,
            "dsps": vec.dsps,
            "pct_luts": 100 * chip.fraction("luts", vec.luts),
            "pct_ffs": 100 * chip.fraction("ffs", vec.ffs),
            "pct_dsps": 100 * chip.fraction("dsps", vec.dsps),
        }
    return out
