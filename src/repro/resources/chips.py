"""FPGA device database (resource capacities).

Capacities of the Stratix 10 GX2800 (the chip on the Nallatech 520N, §5.1),
used to express resource consumption as "% of max" exactly as Table 1 does.
The GX2800 has 933,120 ALMs; each ALM provides two ALUT lookup-table
outputs and four registers, giving the LUT/FF capacities below; 11,721 M20K
memory blocks; 5,760 DSP blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ConfigurationError


@dataclass(frozen=True)
class Chip:
    """Resource capacities of one FPGA device."""

    name: str
    alms: int
    luts: int
    ffs: int
    m20ks: int
    dsps: int

    def fraction(self, resource: str, amount: int) -> float:
        """``amount`` as a fraction of this chip's capacity of ``resource``."""
        capacity = {
            "luts": self.luts,
            "ffs": self.ffs,
            "m20ks": self.m20ks,
            "dsps": self.dsps,
        }.get(resource)
        if capacity is None:
            raise ConfigurationError(f"unknown resource {resource!r}")
        return amount / capacity


STRATIX10_GX2800 = Chip(
    name="Stratix 10 GX2800",
    alms=933_120,
    luts=1_866_240,   # 2 ALUTs per ALM
    ffs=3_732_480,    # 4 registers per ALM
    m20ks=11_721,
    dsps=5_760,
)

CHIPS = {STRATIX10_GX2800.name: STRATIX10_GX2800}
