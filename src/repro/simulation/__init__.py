"""Cycle-level hardware simulation substrate.

This package is the "FPGA" of the reproduction: a deterministic,
event-skipping, cycle-accurate simulator in which SMI's transport layer, the
applications, and the network links run as communicating processes.
"""

from .conditions import TICK, CanPop, CanPush, SimEvent, WaitCycles
from .engine import Engine, Process, RunResult
from .fifo import Fifo
from .memory import BoardMemory, MemoryBank, MemoryPort
from .stats import (
    BurstStats,
    CycleHistogram,
    GapHistogram,
    Stopwatch,
    collect_burst_stats,
    link_utilization,
    payload_bandwidth_gbit_s,
)

__all__ = [
    "BurstStats",
    "GapHistogram",
    "collect_burst_stats",
    "TICK",
    "CanPop",
    "CanPush",
    "SimEvent",
    "WaitCycles",
    "Engine",
    "Process",
    "RunResult",
    "Fifo",
    "BoardMemory",
    "MemoryBank",
    "MemoryPort",
    "CycleHistogram",
    "Stopwatch",
    "link_utilization",
    "payload_bandwidth_gbit_s",
]
