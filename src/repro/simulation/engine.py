"""Cycle-accurate, event-skipping simulation engine.

The engine advances a global clock (``engine.cycle``). Hardware modules are
*processes*: Python generators that yield wait conditions (see
:mod:`repro.simulation.conditions`). The engine maintains a calendar of
scheduled process resumptions and pending FIFO commits; when nothing is
runnable in the current cycle it jumps directly to the next scheduled cycle,
so idle periods (e.g. a packet in flight on a 100-cycle link) cost O(1)
instead of O(cycles).

Determinism: processes scheduled for the same cycle run in the order they
were scheduled (a monotonically increasing sequence number breaks ties), so a
simulation is exactly reproducible run-to-run.

Burst timing: the burst fast path (gated by ``HardwareConfig.burst_mode``)
moves whole runs of items in a single process step and then yields one
``WaitCycles(window)`` instead of per-item TICKs. Two layers cooperate:
the FIFO primitives (:mod:`repro.simulation.fifo`) stage/take runs with
analytically computed per-item cycles, and the supply-schedule planner
(:mod:`repro.transport.planner`) simulates the polling loop forward over
the *known* future — staged schedules, statically flow-dead inputs,
downstream slot schedules, producer-sleep horizons — committing
multi-round windows per event and cascading plans across CK boundaries.
The engine contributes two queries: :meth:`Engine.process_floor` (the
earliest cycle a process could run again, the basis of producer-sleep
horizons) and :meth:`Engine.preempt` (a firm wake for a parked CK whose
window a peer's cascade planned on its behalf). Staged items commit at
their individual ready cycles through the ordinary commit calendar, and
slots freed ahead of schedule are held *reserved* and released (waking
blocked producers) by the same mechanism — so burst and per-flit runs
produce identical cycle counts and identical per-FIFO push/pop
statistics and occupancy peaks, differing only in the number of engine
events executed (``tests/test_burst_equivalence.py`` enforces this).

Termination: ``run()`` returns once every non-daemon process has finished.
Transport kernels (CKS/CKR, collective support kernels) are spawned as
*daemons* — they serve forever and do not keep the simulation alive. If live
non-daemon processes remain but nothing is scheduled, the system is
deadlocked and the engine raises :class:`~repro.core.errors.DeadlockError`
with a dump of every blocked process and the condition it waits on — this is
how the simulator surfaces the cyclic-dependency deadlocks the paper warns
about in §3.3.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from ..core.errors import DeadlockError, SimulationError
from .conditions import TICK, CanPop, CanPush, SimEvent, WaitCycles

#: Safety bound on process steps within a single cycle (combinational loop).
MAX_STEPS_PER_CYCLE = 10_000

#: "Provably never" horizon for supply-schedule queries (finished
#: producers, flow-dead FIFOs).
FOREVER = 1 << 62


def _cond_desc(conds) -> str:
    """Compact wait-condition label for trace events (tracing-on only)."""
    parts = []
    for cond in conds:
        kind = type(cond)
        if kind is CanPop:
            parts.append(f"pop:{cond.fifo.name}")
        elif kind is CanPush:
            parts.append(f"push:{cond.fifo.name}")
        elif kind is SimEvent:
            parts.append(f"event:{cond.name}")
        else:  # pragma: no cover - unreachable for valid conditions
            parts.append(repr(cond))
    return "|".join(parts)


class Process:
    """A running simulated module (wraps a generator)."""

    __slots__ = (
        "name",
        "gen",
        "daemon",
        "finished",
        "result",
        "done",
        "_token",
        "_last_step_cycle",
        "_steps_this_cycle",
        "_waiting_on",
        "_scheduled_for",
    )

    def __init__(self, name: str, gen: Generator, daemon: bool) -> None:
        self.name = name
        self.gen = gen
        self.daemon = daemon
        self.finished = False
        self.result: Any = None
        self.done = SimEvent(f"{name}.done")
        self._token = 0
        self._last_step_cycle = -1
        self._steps_this_cycle = 0
        self._waiting_on: Any = None
        self._scheduled_for = 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "finished" if self.finished else f"waiting on {self._waiting_on!r}"
        return f"Process({self.name}, {state})"


@dataclass
class RunResult:
    """Outcome of :meth:`Engine.run`."""

    cycles: int
    reason: str  # "completed" or "max_cycles"
    processes_finished: int
    processes_live: int

    @property
    def completed(self) -> bool:
        return self.reason == "completed"


class Engine:
    """The cycle-level discrete event engine."""

    def __init__(self) -> None:
        self.cycle = 0
        self._seq = 0
        self._proc_heap: list = []  # (cycle, seq, process, token)
        self._commit_heap: list = []  # (cycle, seq, fifo)
        self._commit_pending: set = set()  # (cycle, id(fifo)) dedupe
        self._processes: list[Process] = []
        self._fifos: list = []
        self._live_workers = 0
        self._current_proc: Process | None = None
        # Cycle of the most recent non-daemon finish: the cycle a
        # sequential ``run()`` would report if that worker were the last.
        # The sharded backend's global end cycle is the max of this over
        # all shard engines.
        self.last_worker_finish = 0
        # Sharded backends only: a proven lower bound on the *global* end
        # cycle, delivered by the epoch coordinator. FIFO occupancy-log
        # folds never fold entries past it, so end-of-run statistics can
        # be time-filtered exactly at the global end even on a shard
        # whose clock ran ahead of it (see Fifo.counts_at). None (the
        # sequential default) leaves folding unrestricted.
        self.stats_fold_limit: int | None = None
        # Macro-cruise accounting: cycle spans the planner committed in
        # closed form (bulk take/stage logs, no per-event dispatch) and
        # how many fast-forward windows did so. Reporting only — the
        # clock itself still moves heap-top to heap-top.
        self.ff_windows = 0
        self.ff_cycles = 0
        # Flight recorder (repro.trace.TraceRecorder) or None. None is
        # the zero-overhead-off contract: every instrumented site in
        # the engine, FIFOs, links, arbiter and planner guards its emit
        # behind one `is not None` check of this attribute, so with
        # tracing off no event is ever built and cycles/wall-clock are
        # indistinguishable from an uninstrumented build.
        self.trace = None

    def note_fast_forward(self, span: int) -> None:
        """Record one analytically fast-forwarded window of ``span`` cycles."""
        if span > 0:
            self.ff_windows += 1
            self.ff_cycles += span
            if self.trace is not None:
                self.trace.emit(self.cycle, "ff", "engine", "fast-forward",
                                dur=span)
                self.trace.sample(
                    "planner/ff_coverage", self.cycle,
                    round(self.ff_cycles / max(self.cycle, 1), 4))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def spawn(
        self,
        gen_or_fn: Generator | Callable[[], Generator],
        name: str | None = None,
        daemon: bool = False,
        start_cycle: int = 0,
    ) -> Process:
        """Register a process; it first runs at ``start_cycle`` (>= now)."""
        gen = gen_or_fn() if callable(gen_or_fn) else gen_or_fn
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"spawn() needs a generator (got {type(gen_or_fn).__name__}); "
                "did you forget a 'yield' in the process body?"
            )
        proc = Process(name or f"proc{len(self._processes)}", gen, daemon)
        self._processes.append(proc)
        if not daemon:
            self._live_workers += 1
        self._schedule(proc, max(start_cycle, self.cycle))
        return proc

    def fifo(self, name: str, capacity: int, latency: int = 1):
        """Create a :class:`~repro.simulation.fifo.Fifo` owned by this engine."""
        from .fifo import Fifo

        return Fifo(self, name, capacity, latency)

    def event(self, name: str = "event") -> SimEvent:
        """Create a :class:`SimEvent` (convenience)."""
        return SimEvent(name)

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _schedule(self, proc: Process, cycle: int) -> None:
        proc._token += 1
        proc._scheduled_for = cycle
        self._seq += 1
        heapq.heappush(self._proc_heap, (cycle, self._seq, proc, proc._token))

    def _schedule_commit(self, cycle: int, fifo) -> None:
        key = (cycle, id(fifo))
        if key in self._commit_pending:
            return
        self._commit_pending.add(key)
        self._seq += 1
        heapq.heappush(self._commit_heap, (cycle, self._seq, fifo))

    def _wake_all(self, condition, delay: int) -> None:
        """Wake every valid waiter of ``condition`` after ``delay`` cycles."""
        waiters = condition.waiters
        if not waiters:
            return
        target = self.cycle + delay
        trace = self.trace
        for proc, token in waiters:
            if not proc.finished and token == proc._token:
                proc._waiting_on = None
                self._schedule(proc, target)
                if trace is not None:
                    trace.emit(self.cycle, "wake", proc.name, "wake",
                               args={"at": target} if delay else None)
        waiters.clear()

    def set_event(self, event: SimEvent) -> None:
        """Trigger ``event``, waking all waiters in the current cycle."""
        if event._set:
            return
        event._set = True
        event.set_at_cycle = self.cycle
        self._wake_all(event, delay=0)

    def _register_fifo(self, fifo) -> None:
        self._fifos.append(fifo)

    # ------------------------------------------------------------------
    # Supply-schedule queries (burst planner support)
    # ------------------------------------------------------------------
    #: Recursion budget for parked-producer chains in :meth:`process_floor`.
    #: Deeper chains add little: the first link latency on a path already
    #: dominates the horizon, and every truncation is merely conservative.
    FLOOR_DEPTH_LIMIT = 3

    def process_floor(self, proc: Process, memo: dict | None = None,
                      depth: int = 0) -> int:
        """Earliest cycle ``proc`` could possibly execute again.

        The *producer-sleep horizon* primitive of the supply-schedule
        contract: a process sleeping on ``WaitCycles`` until cycle T
        cannot be woken by anything (wakes only reach condition waiters),
        so it provably stages nothing before T. A process parked on
        ``CanPop`` conditions cannot run before one of those FIFOs turns
        readable, which recurses into each FIFO's own supply schedule
        (:meth:`repro.simulation.fifo.Fifo.earliest_readable`); cyclic
        producer/consumer chains and over-deep recursions fall back to the
        conservative "now". The result is a lower bound that only moves
        later as the event executes, so memoised values stay sound for a
        whole planning cascade.
        """
        if proc.finished:
            return FOREVER
        key = id(proc)
        if memo is not None:
            # Checked before the running/sleeping shortcut on purpose: a
            # planner seeds its *own* process here ("provably silent up to
            # the plan cursor") to break the self-referential loop through
            # its paired kernel, even though the process is mid-step.
            cached = memo.get(key)
            if cached is not None:
                return cached
        waiting = proc._waiting_on
        if waiting is None:
            # Running this very cycle, or sleeping with a firm deadline.
            floor = proc._scheduled_for
            return floor if floor > self.cycle else self.cycle
        if depth >= self.FLOOR_DEPTH_LIMIT:
            return self.cycle
        if memo is None:
            memo = {}
        # Break producer/consumer cycles at the conservative bound; the
        # final value below can only be later.
        memo[key] = self.cycle
        if type(waiting) not in (tuple, list):
            waiting = (waiting,)
        floor = FOREVER
        for cond in waiting:
            if type(cond) is CanPop:
                ready = cond.fifo.earliest_readable(memo, depth + 1)
            else:
                # CanPush / events: a slot may free (or the event fire)
                # any time another process runs.
                ready = self.cycle
            if ready < floor:
                floor = ready
                if floor <= self.cycle:
                    break
        memo[key] = floor
        return floor

    def preempt(self, proc: Process, cycle: int) -> None:
        """Reschedule a blocked process to run at ``cycle`` (>= now).

        Used by the cascade planner after it has planned a parked CK's
        window on its behalf: the conditions the process waited on may
        never fire now that the planned takes emptied its inputs, so the
        planner hands it a firm wake instead. Bumping the token
        invalidates the stale waiter entries left in condition lists.
        """
        proc._waiting_on = None
        self._schedule(proc, max(cycle, self.cycle))
        if self.trace is not None:
            self.trace.emit(self.cycle, "wake", proc.name, "preempt",
                            args={"at": max(cycle, self.cycle)})

    # ------------------------------------------------------------------
    # Condition dispatch
    # ------------------------------------------------------------------
    @staticmethod
    def _satisfied(cond) -> bool:
        kind = type(cond)
        if kind is CanPop:
            return cond.fifo.readable
        if kind is CanPush:
            return cond.fifo.writable
        if kind is SimEvent:
            return cond._set
        raise SimulationError(f"process yielded unsupported condition: {cond!r}")

    def _block(self, proc: Process, conds) -> None:
        entry = (proc, proc._token)
        for cond in conds:
            cond.waiters.append(entry)
            # FIFO visibility/space is computed lazily from the clock, so a
            # blocking process must arm the commit event that will wake it
            # (items already staged / slots already reserved have known
            # deadlines; later stages and takes arm their own wakes).
            kind = type(cond)
            if kind is CanPop or kind is CanPush:
                cond.fifo._arm_waiter_wake(cond)
        proc._waiting_on = conds if len(conds) > 1 else conds[0]
        if self.trace is not None:
            self.trace.emit(self.cycle, "park", proc.name, "park",
                            args={"on": _cond_desc(conds)})

    def _dispatch(self, proc: Process, cond) -> None:
        """Handle the condition a process yielded."""
        kind = type(cond)
        if kind is WaitCycles:
            self._schedule(proc, self.cycle + cond.cycles)
            return
        if cond is TICK or cond is None:
            self._schedule(proc, self.cycle + 1)
            return
        if kind is tuple or kind is list:
            if any(self._satisfied(c) for c in cond):
                self._schedule(proc, self.cycle)
            else:
                self._block(proc, cond)
            return
        if self._satisfied(cond):
            self._schedule(proc, self.cycle)
        else:
            self._block(proc, (cond,))

    def _step(self, proc: Process) -> None:
        if proc._last_step_cycle == self.cycle:
            proc._steps_this_cycle += 1
            if proc._steps_this_cycle > MAX_STEPS_PER_CYCLE:
                raise SimulationError(
                    f"process {proc.name!r} stepped >{MAX_STEPS_PER_CYCLE} "
                    f"times in cycle {self.cycle}: combinational loop? "
                    "(a process must yield TICK to make progress)"
                )
        else:
            proc._last_step_cycle = self.cycle
            proc._steps_this_cycle = 1
        if self.trace is not None:
            self.trace.emit(self.cycle, "dispatch", proc.name, "step")
        self._current_proc = proc
        try:
            cond = proc.gen.send(None)
        except StopIteration as stop:
            proc.finished = True
            proc.result = stop.value
            if not proc.daemon:
                self._live_workers -= 1
                self.last_worker_finish = self.cycle
            self.set_event(proc.done)
            return
        except Exception as exc:
            exc.add_note(
                f"(raised by simulated process {proc.name!r} at cycle "
                f"{self.cycle})"
            )
            raise
        finally:
            self._current_proc = None
        self._dispatch(proc, cond)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, max_cycles: int | None = None) -> RunResult:
        """Run until all non-daemon processes finish (or ``max_cycles``).

        Raises
        ------
        DeadlockError
            If live non-daemon processes remain but nothing can ever run.
        """
        proc_heap = self._proc_heap
        commit_heap = self._commit_heap
        while True:
            if self._live_workers == 0:
                return self._result("completed")
            # --- find the next cycle with activity -----------------------
            next_cycle = None
            # Skip stale process entries at the heap top.
            while proc_heap:
                cyc, _seq, proc, token = proc_heap[0]
                if proc.finished or token != proc._token:
                    heapq.heappop(proc_heap)
                    continue
                next_cycle = cyc
                break
            if commit_heap and (next_cycle is None or commit_heap[0][0] < next_cycle):
                next_cycle = commit_heap[0][0]
            if next_cycle is None:
                raise self._deadlock()
            if max_cycles is not None and next_cycle > max_cycles:
                self.cycle = max_cycles
                return self._result("max_cycles")
            self.cycle = next_cycle
            # --- phase 1: FIFO commits due this cycle ---------------------
            while commit_heap and commit_heap[0][0] <= next_cycle:
                cyc, _seq, fifo = heapq.heappop(commit_heap)
                self._commit_pending.discard((cyc, id(fifo)))
                fifo._commit(next_cycle)
            # --- phase 2: step every process scheduled for this cycle ----
            while proc_heap and proc_heap[0][0] == next_cycle:
                _cyc, _seq, proc, token = heapq.heappop(proc_heap)
                if proc.finished or token != proc._token:
                    continue
                self._step(proc)

    def next_pending_cycle(self) -> int | None:
        """Cycle of the earliest valid pending event, or None when idle.

        Skips stale heap entries (finished processes, invalidated tokens)
        destructively, so repeated calls stay cheap.
        """
        proc_heap = self._proc_heap
        next_cycle = None
        while proc_heap:
            cyc, _seq, proc, token = proc_heap[0]
            if proc.finished or token != proc._token:
                heapq.heappop(proc_heap)
                continue
            next_cycle = cyc
            break
        commit_heap = self._commit_heap
        if commit_heap and (next_cycle is None
                            or commit_heap[0][0] < next_cycle):
            next_cycle = commit_heap[0][0]
        return next_cycle

    def run_until(self, bound: int) -> tuple[str, int]:
        """Run every event scheduled strictly before ``bound``.

        The incremental-resume entry point of the sharded backend
        (:mod:`repro.shard`): one *epoch* of a conservative parallel
        simulation. Unlike :meth:`run` it

        * keeps serving daemon processes even when no non-daemon worker
          is live (a shard whose ranks are pure transit must keep
          forwarding other shards' traffic), and
        * treats an empty calendar as ``"idle"`` rather than a deadlock —
          locally nothing can run, but a boundary injection from another
          shard may schedule new work before the next epoch.

        Returns ``(reason, events)`` where ``reason`` is ``"bound"``
        (an event at or past ``bound`` remains pending) or ``"idle"``
        (nothing is scheduled at all), and ``events`` counts the process
        steps and FIFO commits executed. The clock is left at the last
        executed event's cycle; it never reaches ``bound``.
        """
        proc_heap = self._proc_heap
        commit_heap = self._commit_heap
        executed = 0
        while True:
            next_cycle = self.next_pending_cycle()
            if next_cycle is None:
                return "idle", executed
            if next_cycle >= bound:
                return "bound", executed
            self.cycle = next_cycle
            while commit_heap and commit_heap[0][0] <= next_cycle:
                cyc, _seq, fifo = heapq.heappop(commit_heap)
                self._commit_pending.discard((cyc, id(fifo)))
                fifo._commit(next_cycle)
                executed += 1
            while proc_heap and proc_heap[0][0] == next_cycle:
                _cyc, _seq, proc, token = heapq.heappop(proc_heap)
                if proc.finished or token != proc._token:
                    continue
                self._step(proc)
                executed += 1

    @property
    def live_workers(self) -> int:
        """Non-daemon processes still running (sharded-backend query)."""
        return self._live_workers

    def live_worker_floor(self, memo: dict | None = None) -> int:
        """Max over live workers of their :meth:`process_floor`.

        Every worker's finish cycle is at least its floor, so the global
        end cycle is at least this value — the sharded coordinator
        ratchets its stats watermark (``stats_fold_limit``) on it.
        """
        if memo is None:
            memo = {}
        floor = 0
        for proc in self._processes:
            if not proc.daemon and not proc.finished:
                f = self.process_floor(proc, memo)
                if f > floor:
                    floor = f
        return floor

    def blocked_process_dump(self) -> list[str]:
        """One diagnostic line per blocked process (deadlock reports)."""
        return [
            f"  - {p.name}: waiting on {p._waiting_on!r}"
            for p in self._processes
            if not p.finished and p._waiting_on is not None
        ]

    def _result(self, reason: str) -> RunResult:
        done = sum(1 for p in self._processes if p.finished)
        return RunResult(
            cycles=self.cycle,
            reason=reason,
            processes_finished=done,
            processes_live=self._live_workers,
        )

    def _deadlock(self) -> DeadlockError:
        blocked = self.blocked_process_dump()
        detail = "\n".join(blocked) if blocked else "  (no blocked processes?)"
        history = ""
        if self.trace is not None and len(self.trace):
            tail = "\n".join(self.trace.tail_lines())
            history = f"\nLast trace events before the deadlock:\n{tail}"
        return DeadlockError(
            f"simulation deadlocked at cycle {self.cycle}: "
            f"{self._live_workers} worker process(es) can never run again.\n"
            f"Blocked processes:\n{detail}{history}\n"
            "Hint: SMI sends are non-local (§3.3) — check for cyclic "
            "send/receive dependencies or undersized channel buffers."
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def processes(self) -> list[Process]:
        return list(self._processes)

    @property
    def fifos(self) -> list:
        return list(self._fifos)

    def fifo_stats(self) -> dict[str, dict[str, Any]]:
        """Per-FIFO statistics snapshot (for reports and tests)."""
        return {
            f.name: {
                "pushes": f.pushes,
                "pops": f.pops,
                "max_occupancy": f.max_occupancy,
                "capacity": f.capacity,
                "latency": f.latency,
                "bursts": f.burst_stats.bursts,
                "burst_items": f.burst_stats.items,
            }
            for f in self._fifos
        }


def drain_cycles(n: int) -> Iterable:
    """Helper generator fragment: busy-wait ``n`` cycles (yield from it)."""
    if n > 0:
        yield WaitCycles(n)
