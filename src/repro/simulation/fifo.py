"""Registered FIFO channels between simulated hardware modules.

These model the on-chip FIFO buffers that SMI uses everywhere (§4.2): between
application endpoints and communication kernels, between communication
kernels, and — with a larger latency — the inter-FPGA serial links themselves.

Semantics (matching a hardware FIFO with registered full/empty flags):

* An item *staged* (pushed) in cycle ``t`` becomes *visible* to the consumer
  at cycle ``t + latency`` (default latency 1 — the classic one-cycle
  handoff). A link is simply a FIFO whose latency is the wire delay.
* ``capacity`` bounds the total number of items in flight (visible + staged).
  A full FIFO exerts backpressure: ``push`` blocks, which is how stalls
  propagate through a pipelined design.
* One push and one pop per port per cycle: the ``push``/``pop`` helper
  generators each consume one simulated cycle per item, exactly like an HLS
  pipeline with initiation interval 1.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from ..core.errors import SimulationError
from .conditions import TICK, CanPop, CanPush


class Fifo:
    """A bounded FIFO with registered (cycle-delayed) visibility.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.simulation.engine.Engine`.
    name:
        Diagnostic name (shows up in deadlock reports and stats).
    capacity:
        Maximum items in flight. Must be >= 1.
    latency:
        Cycles between staging an item and it becoming visible. Must be >= 1
        (hardware handoff takes at least one cycle); links use larger values.
    """

    __slots__ = (
        "engine",
        "name",
        "capacity",
        "latency",
        "_visible",
        "_staged",
        "can_pop",
        "can_push",
        "pushes",
        "pops",
        "max_occupancy",
        "first_push_cycle",
        "last_pop_cycle",
    )

    def __init__(self, engine, name: str, capacity: int, latency: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"fifo {name!r}: capacity must be >= 1")
        if latency < 1:
            raise SimulationError(f"fifo {name!r}: latency must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self._visible: deque = deque()
        self._staged: deque = deque()  # entries: (ready_cycle, item)
        self.can_pop = CanPop(self)
        self.can_push = CanPush(self)
        # --- statistics ---
        self.pushes = 0
        self.pops = 0
        self.max_occupancy = 0
        self.first_push_cycle: int | None = None
        self.last_pop_cycle: int | None = None
        engine._register_fifo(self)

    # ------------------------------------------------------------------
    # Combinational status (as seen by processes in the current cycle)
    # ------------------------------------------------------------------
    @property
    def readable(self) -> bool:
        """True if at least one item is visible this cycle."""
        return bool(self._visible)

    @property
    def writable(self) -> bool:
        """True if there is room for one more item (visible + staged)."""
        return len(self._visible) + len(self._staged) < self.capacity

    @property
    def occupancy(self) -> int:
        """Total items in flight (visible + staged)."""
        return len(self._visible) + len(self._staged)

    def wait_writable(self):
        """Condition to yield while not writable (see also Link pacing)."""
        return self.can_push

    def wait_readable(self):
        """Condition to yield while not readable."""
        return self.can_pop

    def __len__(self) -> int:
        return len(self._visible)

    # ------------------------------------------------------------------
    # Raw single-cycle operations (used by the handshake helpers below and
    # by modules that interleave several FIFO operations in one cycle).
    # ------------------------------------------------------------------
    def stage(self, item: Any) -> None:
        """Stage one item this cycle; it becomes visible ``latency`` later.

        The caller must have checked :attr:`writable`; staging into a full
        FIFO is a simulation bug and raises.
        """
        if not self.writable:
            raise SimulationError(f"fifo {self.name!r}: stage() while full")
        ready = self.engine.cycle + self.latency
        self._staged.append((ready, item))
        self.engine._schedule_commit(ready, self)
        self.pushes += 1
        if self.first_push_cycle is None:
            self.first_push_cycle = self.engine.cycle
        occ = self.occupancy
        if occ > self.max_occupancy:
            self.max_occupancy = occ

    def take(self) -> Any:
        """Remove and return the oldest visible item (must be readable)."""
        if not self._visible:
            raise SimulationError(f"fifo {self.name!r}: take() while empty")
        item = self._visible.popleft()
        self.pops += 1
        self.last_pop_cycle = self.engine.cycle
        # Space freed: wake any blocked producers (registered flag -> next
        # cycle, handled by the engine's wake scheduling).
        if self.can_push.waiters:
            self.engine._wake_all(self.can_push, delay=1)
        return item

    def peek(self) -> Any:
        """Return (without removing) the oldest visible item."""
        if not self._visible:
            raise SimulationError(f"fifo {self.name!r}: peek() while empty")
        return self._visible[0]

    # ------------------------------------------------------------------
    # Handshake helpers: one item per cycle, blocking on full/empty.
    # ------------------------------------------------------------------
    def push(self, item: Any) -> Generator:
        """Generator: block until writable, stage ``item``, spend one cycle."""
        while not self.writable:
            yield self.can_push
        self.stage(item)
        yield TICK

    def pop(self) -> Generator:
        """Generator: block until readable, take one item, spend one cycle."""
        while not self.readable:
            yield self.can_pop
        item = self.take()
        yield TICK
        return item

    def push_many(self, items) -> Generator:
        """Push a sequence of items, one per cycle."""
        for item in items:
            while not self.writable:
                yield self.can_push
            self.stage(item)
            yield TICK

    def pop_many(self, count: int) -> Generator:
        """Pop ``count`` items (one per cycle) and return them as a list."""
        out = []
        for _ in range(count):
            while not self.readable:
                yield self.can_pop
            out.append(self.take())
            yield TICK
        return out

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        """Move staged items whose ready time has arrived into view."""
        staged = self._staged
        visible = self._visible
        moved = False
        while staged and staged[0][0] <= cycle:
            visible.append(staged.popleft()[1])
            moved = True
        if moved and self.can_pop.waiters:
            self.engine._wake_all(self.can_pop, delay=0)

    def _next_commit_cycle(self) -> int | None:
        """Cycle of the earliest pending staged item, if any."""
        return self._staged[0][0] if self._staged else None

    def drain(self) -> list:
        """Remove and return all items (visible and staged); test helper."""
        items = list(self._visible) + [item for _, item in self._staged]
        self._visible.clear()
        self._staged.clear()
        return items

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Fifo({self.name}, {len(self._visible)}+{len(self._staged)}"
            f"/{self.capacity})"
        )
