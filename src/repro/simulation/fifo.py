"""Registered FIFO channels between simulated hardware modules.

These model the on-chip FIFO buffers that SMI uses everywhere (§4.2): between
application endpoints and communication kernels, between communication
kernels, and — with a larger latency — the inter-FPGA serial links themselves.

Semantics (matching a hardware FIFO with registered full/empty flags):

* An item *staged* (pushed) in cycle ``t`` becomes *visible* to the consumer
  at cycle ``t + latency`` (default latency 1 — the classic one-cycle
  handoff). A link is simply a FIFO whose latency is the wire delay.
* ``capacity`` bounds the total number of items in flight (visible + staged).
  A full FIFO exerts backpressure: ``push`` blocks, which is how stalls
  propagate through a pipelined design.
* One push and one pop per port per cycle: the ``push``/``pop`` helper
  generators each consume one simulated cycle per item, exactly like an HLS
  pipeline with initiation interval 1.

Burst fast path
---------------

``stage_burst``/``take_burst`` (and the ``push_burst``/``pop_burst``
generator helpers built on them) move a whole run of items in a single
engine event while reproducing the per-flit cycle trajectory exactly:

* a burst *stage* records each item with the ready cycle the one-per-cycle
  handshake would have given it, so consumers observe identical ``readable``
  transitions;
* a burst *take* may consume items ahead of their per-flit take cycle (even
  items still staged, whose future ready cycle is known), but the freed slot
  is held in a *reserved* list until that cycle, so producers observe the
  identical ``writable`` trajectory and wake at the identical cycles.

``pushes``/``pops`` count every item individually in both modes and are
burst-invariant. ``max_occupancy`` is exact in both modes: every stage and
take logs a ``(cycle, +/-1)`` delta at its exact simulated cycle and the
peak is the maximum end-of-cycle prefix sum, so the statistic depends only
on the per-item cycle trajectory (which burst mode reproduces exactly),
not on the wall-time order commits happen to execute in.

Supply schedules
----------------

A FIFO is also the ledger of the *supply-schedule contract* consumed by
the burst planner (:mod:`repro.transport.planner`): any flit source — an
app channel's vectorised push, a CK's planned forward, a collective
support kernel, a link — publishes its commitments simply by staging
early with exact future cycles, and :meth:`present_schedule` exposes them.
Beyond the staged items, :meth:`supply_horizon` bounds the *unknown*
future: with a registered (closed) producer set, no arrival can become
visible before the earliest producer wake plus the FIFO latency
(producer-sleep horizons); without one, the bound degrades to
``now + latency``; flow-dead FIFOs are empty forever.

Reserved slots and the pairing count
------------------------------------

Two private fields carry the slot economy between burst takes and the
planners' future stages; their invariants are load-bearing for everything
in :mod:`repro.transport.planner`:

``_reserved``
    The release cycles (non-decreasing) of slots a burst consumer took
    *ahead of the wall clock*: the item left the FIFO at commit time, but
    the slot stays occupied until its per-flit take cycle so producers
    observe the exact per-flit ``writable`` trajectory. Entries are
    appended by ``take_burst`` (whose cycle runs are monotone per the
    single-consumer ordering tripwire) and trimmed from the front as the
    clock passes them (:meth:`_trim_reserved`), waking blocked producers
    through the commit calendar.

``_reserved_paired``
    How many *leading* ``_reserved`` entries a producer's committed plan
    has already paired a future stage against. A planner may commit a
    stage at ``release + 1`` long before the wall clock reaches the
    release; without this count the *next* plan's :meth:`slot_plan` would
    hand the same slot out twice. Invariants: paired entries are always
    the oldest (pairing consumes releases strictly in order);
    ``0 <= _reserved_paired <= len(_reserved)``; the count survives
    across engine events and drains together with the releases it covers
    (:meth:`_trim_reserved` decrements both in step); and
    :meth:`slot_plan` both excludes paired releases from the offered
    schedule *and* adds their double-counted slot back into the free
    budget (the reservation and the future-dated staged item paired to it
    otherwise both occupy). Only
    :meth:`repro.transport.planner._TargetCursor.commit_pairings`
    advances it, and only at commit time — speculative plans that roll
    back never touch it.

Both sides assume the single-producer / single-consumer wiring the SMI
transport uses everywhere: per-item cycles are computed under the invariant
that free space only grows and visibility only advances during a planned
burst window.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from itertools import chain, islice
from operator import gt, itemgetter
from typing import Any, Generator, Iterable, Iterator, Sequence

import numpy as np

from ..core.errors import SimulationError
from .conditions import TICK, CanPop, CanPush, WaitCycles
from .engine import FOREVER
from .stats import BurstStats

#: Fold the occupancy delta log into (base, peak) once it grows past this
#: many events, so long-running kernels carry O(1) state.
_OCC_FOLD_LIMIT = 8192


class Fifo:
    """A bounded FIFO with registered (cycle-delayed) visibility.

    Parameters
    ----------
    engine:
        The owning :class:`~repro.simulation.engine.Engine`.
    name:
        Diagnostic name (shows up in deadlock reports and stats).
    capacity:
        Maximum items in flight. Must be >= 1.
    latency:
        Cycles between staging an item and it becoming visible. Must be >= 1
        (hardware handoff takes at least one cycle); links use larger values.
    """

    __slots__ = (
        "engine",
        "name",
        "capacity",
        "latency",
        "_visible",
        "_staged",
        "_reserved",
        "_reserved_paired",
        "can_pop",
        "can_push",
        "pushes",
        "pops",
        "_occ_stages",
        "_occ_takes",
        "_occ_base",
        "_occ_peak",
        "_occ_folded_stages",
        "_occ_folded_takes",
        "_occ_folded_through",
        "macro_host",
        "first_push_cycle",
        "last_pop_cycle",
        "burst_stats",
        "_flow_dead",
        "producers",
        "_stage_guard",
        "horizon_pin",
        "_stage_log",
        "_take_log",
    )

    def __init__(self, engine, name: str, capacity: int, latency: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"fifo {name!r}: capacity must be >= 1")
        if latency < 1:
            raise SimulationError(f"fifo {name!r}: latency must be >= 1")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self.latency = latency
        self._visible: deque = deque()
        self._staged: deque = deque()  # entries: (ready_cycle, item)
        # Slots taken ahead of schedule by a burst consumer, held occupied
        # until their per-flit take cycle (non-decreasing release cycles).
        self._reserved: deque = deque()
        # How many leading reserved entries a producer's committed plan has
        # already paired a future stage against. A cascade can commit a
        # stage at ``release + 1`` long before the wall clock reaches the
        # release, and the *next* plan must not hand the same slot out
        # twice; the pairing count survives across engine events and drains
        # together with the releases it covers.
        self._reserved_paired = 0
        self.can_pop = CanPop(self)
        self.can_push = CanPush(self)
        # --- statistics ---
        self.pushes = 0
        self.pops = 0
        # Exact occupancy tracking: a time-indexed delta log, kept as two
        # *sorted* cycle lists (stages and takes are each monotone per
        # FIFO — single producer, single consumer) and folded lazily into
        # (base, peak) with a linear merge, no sorting.
        self._occ_stages: list[int] = []
        self._occ_takes: list[int] = []
        self._occ_base = 0
        self._occ_peak = 0
        # Events already folded out of the logs (exact per-item counts;
        # every folded entry's cycle is below the fold threshold, which
        # the engine's ``stats_fold_limit`` watermark may clamp).
        self._occ_folded_stages = 0
        self._occ_folded_takes = 0
        # Exclusive cycle bound of the folded log prefix: time-filtered
        # queries below it would silently include folded (unsplittable)
        # events, so counts_at/max_occupancy_at refuse them loudly. Bulk
        # clock jumps (macro-cruise trains, sharded run_until) can move
        # folds far ahead of any previously observed clock in one event.
        self._occ_folded_through = 0
        # Macro-cruise host: the SupplyPlanner app-side channel lanes on
        # this endpoint register with (set by the transport builder on
        # app send/recv endpoints when ``HardwareConfig.macro_cruise``).
        self.macro_host = None
        self.first_push_cycle: int | None = None
        self.last_pop_cycle: int | None = None
        self.burst_stats = BurstStats()
        # Static flow liveness (set by the transport builder): True means no
        # declared communication flow can ever route a packet through this
        # FIFO, so a burst planner may treat it as empty at any future cycle.
        # Guarded by a stage-time tripwire rather than trusted silently.
        self._flow_dead = False
        # Closed producer set (supply-schedule contract): None means the
        # writers of this FIFO are unknown (app endpoints); a tuple of
        # Process handles means *only* those processes ever stage here, so
        # the burst planner may derive producer-sleep horizons from their
        # wake floors. Guarded by a stage-time tripwire like flow_dead.
        self.producers: tuple | None = None
        # One combined flag so the per-stage hot path pays a single branch
        # for both tripwires (kept in sync by the property/registration).
        self._stage_guard = False
        # Sharded-backend proxy contract (see repro.shard.proxy): a pinned
        # horizon stands in for a *remote* producer's sleep floor on the
        # consumer side of a boundary link, and the boundary logs capture
        # the exact per-item stage/take cycles that must be shipped to the
        # peer shard. All three stay None outside sharded builds, so the
        # hot paths pay one is-None branch each.
        self.horizon_pin: int | None = None
        self._stage_log: list | None = None
        self._take_log: list | None = None
        engine._register_fifo(self)

    @property
    def flow_dead(self) -> bool:
        return self._flow_dead

    @flow_dead.setter
    def flow_dead(self, value: bool) -> None:
        self._flow_dead = value
        self._stage_guard = value or self.producers is not None

    # ------------------------------------------------------------------
    # Combinational status (as seen by processes in the current cycle)
    # ------------------------------------------------------------------
    @property
    def readable(self) -> bool:
        """True if at least one item is visible this cycle.

        Visibility is computed lazily: an item staged at ``t`` counts as
        visible from ``t + latency`` on without requiring a commit event —
        the engine's commit calendar is only used to *wake* blocked
        processes (see :meth:`_commit`), which keeps the event count
        per burst O(1) instead of O(items).
        """
        if self._visible:
            return True
        staged = self._staged
        return bool(staged) and staged[0][0] <= self.engine.cycle

    def _trim_reserved(self, now: int) -> None:
        """Drop reserved entries whose release cycle has passed, keeping
        the paired-prefix count aligned (paired entries are the oldest).

        The boundary is strict: a slot whose pre-committed release cycle
        *is* ``now`` stays reserved until the next cycle. The per-flit
        contract everywhere — the engine's delay-1 producer wake, the
        planner's ``release + 1`` stage pacing — is that a slot freed by
        a take at cycle ``c`` becomes usable at ``c + 1``; an observer
        whose event happens to land exactly on ``c`` (a window ending
        there, an epoch boundary) must not see the slot a cycle early.
        (A take executed *in* the current cycle frees its slot
        immediately via ``take_burst``'s same-cycle path instead — that
        models the consumer itself running this cycle, not a
        pre-committed future release.)"""
        reserved = self._reserved
        if reserved and reserved[0] < now:
            if reserved[-1] < now:
                # Whole-log trim (the common case after a bulk clock
                # jump: every pre-committed release is in the past).
                reserved.clear()
                self._reserved_paired = 0
                return
            paired = self._reserved_paired
            if len(reserved) > 2048:
                # Bulk trim: the log is sorted (releases are pre-committed
                # in take order), so the cut point is a bisect away.
                log = list(reserved)
                cut = bisect_right(log, now - 1)
                reserved.clear()
                reserved.extend(log[cut:])
                self._reserved_paired = max(0, paired - cut)
                return
            while reserved and reserved[0] < now:
                reserved.popleft()
                if paired:
                    paired -= 1
            self._reserved_paired = paired

    @property
    def writable(self) -> bool:
        """True if there is room for one more item."""
        if self._reserved:
            self._trim_reserved(self.engine.cycle)
        return (len(self._visible) + len(self._staged) + len(self._reserved)
                < self.capacity)

    @property
    def occupancy(self) -> int:
        """Slots in use: items in flight plus reserved (burst-held) slots.

        Exact whenever the observer can act on it: future-dated committed
        stages (a cascade's early commits) are counted as occupying even
        before their stage cycle, but such stages only exist while their
        single producer sleeps the committed window — by the time that
        producer (the only process gated by this number) observes again,
        every one of its stages is past-dated.
        """
        if self._reserved:
            self._trim_reserved(self.engine.cycle)
        return len(self._visible) + len(self._staged) + len(self._reserved)

    def _promote(self) -> None:
        """Move staged items whose ready cycle has arrived into view."""
        staged = self._staged
        if staged:
            now = self.engine.cycle
            visible = self._visible
            while staged and staged[0][0] <= now:
                visible.append(staged.popleft()[1])

    @property
    def free_space(self) -> int:
        """Free slots right now (burst planning helper)."""
        return self.capacity - self.occupancy

    def slot_plan(self, now: int) -> tuple[int, list]:
        """``(free_slots, pending_release_cycles)`` in one pass.

        The burst planner's slot snapshot: currently free slots plus the
        sorted future release cycles of slots still reserved by a
        consumer's burst takes. A producer plans stages beyond the free
        slots against these: slot ``free + j`` becomes stageable at
        ``releases[j] + 1`` — the cycle a producer blocked on ``can_push``
        would wake and stage in the per-flit path.

        Releases a committed plan already paired a future stage against
        are excluded (and their double-counted slot — the reservation plus
        the future-dated staged item — added back), so successive plans of
        one producer see a consistent budget no matter how far ahead of
        the wall clock earlier windows committed.
        """
        self._trim_reserved(now)
        reserved = self._reserved
        paired = self._reserved_paired
        free = (self.capacity - len(self._visible) - len(self._staged)
                - len(reserved) + paired)
        if paired:
            return free, list(islice(reserved, paired, None))
        return free, list(reserved)

    @property
    def present_count(self) -> int:
        """Items physically in the FIFO (visible + staged, not reserved)."""
        return len(self._visible) + len(self._staged)

    def wait_writable(self):
        """Condition to yield while not writable (see also Link pacing)."""
        return self.can_push

    def wait_readable(self):
        """Condition to yield while not readable."""
        return self.can_pop

    def __len__(self) -> int:
        self._promote()
        return len(self._visible)

    # ------------------------------------------------------------------
    # Raw single-cycle operations (used by the handshake helpers below and
    # by modules that interleave several FIFO operations in one cycle).
    # ------------------------------------------------------------------
    def _reject_flow_dead(self) -> None:
        raise SimulationError(
            f"fifo {self.name!r}: staged but marked flow-dead — an "
            "OpDecl.peer declaration does not match actual traffic, or "
            "the builder's flow-liveness analysis missed a route"
        )

    def _reject_foreign_producer(self, proc) -> None:
        raise SimulationError(
            f"fifo {self.name!r}: staged by process {proc.name!r} which is "
            "not in the registered producer set — the supply-schedule "
            "contract assumed a closed set of writers, so planner horizons "
            "derived from it would silently diverge"
        )

    def _check_stage_allowed(self) -> None:
        if self._flow_dead:
            self._reject_flow_dead()
        producers = self.producers
        if producers is not None:
            cur = self.engine._current_proc
            if cur is not None and cur not in producers:
                self._reject_foreign_producer(cur)

    def stage(self, item: Any) -> None:
        """Stage one item this cycle; it becomes visible ``latency`` later.

        The caller must have checked :attr:`writable`; staging into a full
        FIFO is a simulation bug and raises.
        """
        if not self.writable:
            raise SimulationError(f"fifo {self.name!r}: stage() while full")
        if self._stage_guard:
            self._check_stage_allowed()
        now = self.engine.cycle
        ready = now + self.latency
        self._staged.append((ready, item))
        if self._stage_log is not None:
            self._stage_log.append((item, ready))
        if self.can_pop.waiters:
            self.engine._schedule_commit(self._staged[0][0], self)
        self.pushes += 1
        if self.first_push_cycle is None:
            self.first_push_cycle = now
        self._occ_stages.append(now)
        if len(self._occ_stages) > _OCC_FOLD_LIMIT:
            self._occ_fold()
        trace = self.engine.trace
        if trace is not None:
            trace.emit(now, "stage", self.name, "stage")
            trace.sample(f"fifo_occ/{self.name}", now,
                         len(self._visible) + len(self._staged))

    def take(self) -> Any:
        """Remove and return the oldest visible item (must be readable)."""
        if not self._visible:
            self._promote()
        if not self._visible:
            raise SimulationError(f"fifo {self.name!r}: take() while empty")
        item = self._visible.popleft()
        self.pops += 1
        now = self.engine.cycle
        self.last_pop_cycle = now
        if self._take_log is not None:
            self._take_log.append(now)
        self._occ_takes.append(now)
        if len(self._occ_takes) > _OCC_FOLD_LIMIT:
            self._occ_fold()
        trace = self.engine.trace
        if trace is not None:
            trace.emit(now, "take", self.name, "take")
            trace.sample(f"fifo_occ/{self.name}", now,
                         len(self._visible) + len(self._staged))
        # Space freed: wake any blocked producers (registered flag -> next
        # cycle, handled by the engine's wake scheduling).
        if self.can_push.waiters:
            self.engine._wake_all(self.can_push, delay=1)
        return item

    def peek(self) -> Any:
        """Return (without removing) the oldest visible item."""
        if not self._visible:
            self._promote()
        if not self._visible:
            raise SimulationError(f"fifo {self.name!r}: peek() while empty")
        return self._visible[0]

    # ------------------------------------------------------------------
    # Burst fast path: move runs of items in one engine event with
    # analytically computed per-item cycles (see module docstring).
    # ------------------------------------------------------------------
    def iter_present(self) -> Iterator[tuple[Any, int]]:
        """Yield ``(item, ready_cycle)`` oldest-first over visible + staged.

        Visible items report the current cycle (they are takeable now);
        staged items report the future cycle they become visible. Burst
        planners walk this to compute exact per-flit schedules.
        """
        now = self.engine.cycle
        return chain(
            ((item, now) for item in self._visible),
            ((item, ready) for ready, item in self._staged),
        )

    def present_schedule(self, now: int, limit: int = 0) -> tuple[list, list]:
        """``(items, ready_cycles)`` oldest-first over visible + staged.

        The list form of :meth:`iter_present`, built with minimal overhead
        for the burst planner's per-window snapshot. A positive ``limit``
        truncates the snapshot (planners treat the cut as an unknown-future
        boundary, which is always sound — a deep link FIFO would otherwise
        be copied wholesale to serve a handful of takes).
        """
        visible = self._visible
        nv = len(visible)
        if not nv and not self._staged:
            return (), ()
        if limit and nv >= limit:
            return list(islice(visible, limit)), [now] * limit
        items = list(visible)
        ready = [now] * nv
        staged = self._staged
        if limit and nv + len(staged) > limit:
            staged = islice(staged, limit - nv)
        for r, item in staged:
            items.append(item)
            ready.append(r)
        return items, ready

    def stage_burst(self, items: Sequence[Any], cycles: Sequence[int],
                    verify_occupancy: bool = True) -> None:
        """Stage ``items[i]`` as if at ``cycles[i]`` (visible ``latency``
        later), all within the current engine event.

        ``cycles`` must be non-decreasing and start at or after the current
        cycle; the caller must have checked ``free_space >= len(items)``
        (the per-flit path would not have staged a run it cannot fit — a
        burst that overcommits is a planner bug and raises).
        ``verify_occupancy=False`` skips the per-item occupancy-trajectory
        tripwire: the window planner paces every stage against
        :meth:`slot_plan`'s release schedule (with persistent pairing
        bookkeeping), and re-walking the trajectory on its long
        reserved/paired lists every commit would dominate the fast path
        the planner exists to provide.
        """
        k = len(items)
        if k == 0:
            return
        if len(cycles) != k:
            raise SimulationError(
                f"fifo {self.name!r}: stage_burst items/cycles length mismatch"
            )
        now = self.engine.cycle
        if cycles[0] < now:
            raise SimulationError(
                f"fifo {self.name!r}: stage_burst cycle {cycles[0]} is in "
                f"the past (now {now})"
            )
        if self._stage_guard:
            self._check_stage_allowed()
        staged = self._staged
        latency = self.latency
        prev = cycles[0]
        # Walk the per-flit occupancy at each stage instant: reserved slots
        # release over time, so a burst may stage beyond the instantaneous
        # free space as long as every stage lands in a slot that is free by
        # its own cycle (the planner paced it against slot_plan releases).
        reserved = self._reserved
        n_res = len(reserved)
        base = len(self._visible) + len(staged)
        capacity = self.capacity
        if (n_res == 0 and base + k <= capacity) or not verify_occupancy:
            # Fast path: no reserved slots and the whole run fits (or the
            # caller is the planner, which already paced each stage) — the
            # monotonicity check runs at C speed over cycle pairs.
            if k > 2048:
                cyc_arr = np.asarray(cycles, dtype=np.int64)
                if np.any(cyc_arr[1:] < cyc_arr[:-1]):
                    raise SimulationError(
                        f"fifo {self.name!r}: stage_burst cycles not monotone"
                    )
                staged.extend(zip((cyc_arr + latency).tolist(), items))
            else:
                if k > 1 and any(map(gt, cycles, islice(cycles, 1, None))):
                    raise SimulationError(
                        f"fifo {self.name!r}: stage_burst cycles not monotone"
                    )
                staged.extend(zip([cyc + latency for cyc in cycles], items))
        else:
            res_idx = 0
            paired = self._reserved_paired
            for item, cyc in zip(items, cycles):
                if cyc < prev:
                    raise SimulationError(
                        f"fifo {self.name!r}: stage_burst cycles not monotone"
                    )
                prev = cyc
                staged.append((cyc + latency, item))
                base += 1
                # Strict: a pre-committed release frees its slot for
                # stages from release + 1 on (the per-flit wake cycle).
                while res_idx < n_res and reserved[res_idx] < cyc:
                    res_idx += 1
                # Pending *paired* reservations back items already counted
                # in ``base`` (committed future stages), so they net out.
                occ = base + (n_res - res_idx) - (
                    paired - res_idx if paired > res_idx else 0
                )
                if occ > capacity:
                    raise SimulationError(
                        f"fifo {self.name!r}: stage_burst overcommits at "
                        f"cycle {cyc} ({occ} slots in a {capacity}-deep FIFO)"
                    )
        if self._stage_log is not None:
            self._stage_log.extend(
                zip(items, (cyc + latency for cyc in cycles)))
        occ_stages = self._occ_stages
        if occ_stages and cycles[0] < occ_stages[-1]:
            raise SimulationError(
                f"fifo {self.name!r}: stage_burst at cycle {cycles[0]} "
                f"behind an already-recorded stage at {occ_stages[-1]} — "
                "the single-producer monotonicity the occupancy log relies "
                "on does not hold here"
            )
        occ_stages.extend(cycles)
        if len(occ_stages) > _OCC_FOLD_LIMIT:
            self._occ_fold()
        if self.can_pop.waiters:
            self.engine._schedule_commit(self._staged[0][0], self)
        self.pushes += k
        if self.first_push_cycle is None:
            self.first_push_cycle = cycles[0]
        if k > 1:
            self.burst_stats.record(k)
        trace = self.engine.trace
        if trace is not None:
            trace.emit(cycles[0], "stage", self.name, "stage-burst",
                       dur=cycles[-1] - cycles[0], args={"n": k})
            trace.sample(f"fifo_occ/{self.name}", cycles[-1],
                         len(self._visible) + len(self._staged))

    def take_burst(self, cycles: Sequence[int], collect: bool = True) -> list:
        """Remove the ``len(cycles)`` oldest items as if taken one per
        ``cycles[i]``, all within the current engine event.

        Items may still be staged as long as they are visible by their take
        cycle. Each freed slot stays *reserved* until its take cycle, so
        producers see the per-flit ``writable`` trajectory; the engine
        releases the slot (and wakes blocked producers) on schedule.
        ``collect=False`` skips building the result list (for callers that
        already hold the item identities from their planning snapshot).
        """
        k = len(cycles)
        if k == 0:
            return []
        now = self.engine.cycle
        if cycles[0] < now:
            raise SimulationError(
                f"fifo {self.name!r}: take_burst cycle {cycles[0]} is in "
                f"the past (now {now})"
            )
        if k > 1 and any(map(gt, cycles, islice(cycles, 1, None))):
            raise SimulationError(
                f"fifo {self.name!r}: take_burst cycles not monotone"
            )
        visible = self._visible
        staged = self._staged
        out: list = []
        nv = min(k, len(visible))
        if collect:
            for _ in range(nv):
                out.append(visible.popleft())
        elif nv == len(visible):
            visible.clear()
        else:
            for _ in range(nv):
                visible.popleft()
        rem = k - nv
        if rem:
            if rem > len(staged):
                raise SimulationError(
                    f"fifo {self.name!r}: take_burst ran out of items"
                )
            if not collect and rem > 2048:
                # Bulk path (a macro-cruise fast-forward commits tens of
                # thousands of takes in one burst): the per-item
                # visibility tripwire runs vectorised over the staged
                # ready cycles, then the consumed prefix drops in one
                # C-level operation.
                ready_arr = np.fromiter(
                    map(itemgetter(0), islice(staged, rem)),
                    dtype=np.int64, count=rem)
                late = np.nonzero(
                    ready_arr > np.asarray(cycles[nv:], dtype=np.int64))[0]
                if late.size:
                    b = int(late[0])
                    raise SimulationError(
                        f"fifo {self.name!r}: take_burst at cycle "
                        f"{cycles[nv + b]} but next item is only visible "
                        f"at {staged[b][0]}"
                    )
                if rem == len(staged):
                    staged.clear()
                else:
                    tail = list(islice(staged, rem, None))
                    staged.clear()
                    staged.extend(tail)
            else:
                # Visibility check fused into the pop loop: staged item i
                # must be ready by its take cycle. (The raise aborts the
                # whole simulation, so the partial mutation before it is
                # moot.)
                i = nv
                if collect:
                    for _ in range(rem):
                        ready, item = staged.popleft()
                        if ready > cycles[i]:
                            raise SimulationError(
                                f"fifo {self.name!r}: take_burst at cycle "
                                f"{cycles[i]} but next item is only visible "
                                f"at {ready}"
                            )
                        out.append(item)
                        i += 1
                else:
                    for _ in range(rem):
                        ready = staged.popleft()[0]
                        if ready > cycles[i]:
                            raise SimulationError(
                                f"fifo {self.name!r}: take_burst at cycle "
                                f"{cycles[i]} but next item is only visible "
                                f"at {ready}"
                            )
                        i += 1
        # Slot bookkeeping: every take — current-cycle ones included —
        # holds its slot *reserved* until the cycle after its take cycle
        # (the strict ``_trim_reserved`` boundary). Producers therefore
        # observe a freed slot at ``take + 1`` — the cycle a blocked
        # per-flit producer would wake — regardless of how this commit's
        # engine event happens to be ordered against a producer event in
        # the same cycle. (A per-flit ``take()`` keeps its immediate-free
        # semantics: it *is* the reference, and per-flit producers racing
        # it are always parked, never polling mid-cycle.)
        if self.can_push.waiters:
            if cycles[0] == now:
                self.engine._wake_all(self.can_push, delay=1)
            else:
                # A blocked producer needs its wake at the first release.
                self.engine._schedule_commit(cycles[0], self)
        self._reserved.extend(cycles)
        self.pops += k
        self.last_pop_cycle = cycles[-1]
        if self._take_log is not None:
            self._take_log.extend(cycles)
        occ_takes = self._occ_takes
        if occ_takes and cycles[0] < occ_takes[-1]:
            raise SimulationError(
                f"fifo {self.name!r}: take_burst at cycle {cycles[0]} "
                f"behind an already-recorded take at {occ_takes[-1]} — "
                "the single-consumer monotonicity the occupancy log relies "
                "on does not hold here"
            )
        occ_takes.extend(cycles)
        if len(occ_takes) > _OCC_FOLD_LIMIT:
            self._occ_fold()
        if k > 1:
            self.burst_stats.record(k)
        trace = self.engine.trace
        if trace is not None:
            trace.emit(cycles[0], "take", self.name, "take-burst",
                       dur=cycles[-1] - cycles[0], args={"n": k})
            trace.sample(f"fifo_occ/{self.name}", cycles[-1],
                         len(self._visible) + len(self._staged))
        return out

    # ------------------------------------------------------------------
    # Exact occupancy accounting (time-indexed delta log)
    # ------------------------------------------------------------------
    def _occ_sweep(self, stop: int) -> tuple[int, int, int, int]:
        """Prefix-sum sweep of both sorted cycle logs over cycles < stop.

        Returns ``(occ, peak, stages_consumed, takes_consumed)``. Events
        of one cycle net out before the peak check — the registered-FIFO
        view, where everything on one clock edge commits together.
        """
        stages = self._occ_stages
        takes = self._occ_takes
        occ = self._occ_base
        peak = self._occ_peak
        ns_w = bisect_right(stages, stop - 1)
        nt_w = bisect_right(takes, stop - 1)
        if ns_w + nt_w > 4096:
            # Bulk path for large windows (a macro-cruise fast-forward
            # commits tens of thousands of per-item cycles in one event):
            # group both sorted logs by unique cycle, net each cycle's
            # stages against its takes, and take the running peak — the
            # same registered-FIFO view as the scalar merge below.
            # Occupancy only rises at stage cycles, so the end-of-cycle
            # peak is attained at some stage cycle c with value
            # ``#stages <= c  -  #takes <= c`` — two C-speed binary-search
            # sweeps over the already-sorted logs.
            if ns_w:
                cs = np.array(stages[:ns_w], dtype=np.int64)
                ct = np.array(takes[:nt_w], dtype=np.int64)
                hi = occ + int(np.max(
                    np.searchsorted(cs, cs, side="right")
                    - np.searchsorted(ct, cs, side="right")
                ))
                if hi > peak:
                    peak = hi
            return occ + ns_w - nt_w, peak, ns_w, nt_w
        i = j = 0
        ns = len(stages)
        nt = len(takes)
        while True:
            s = stages[i] if i < ns else stop
            t = takes[j] if j < nt else stop
            cyc = s if s <= t else t
            if cyc >= stop:
                break
            while i < ns and stages[i] == cyc:
                occ += 1
                i += 1
            while j < nt and takes[j] == cyc:
                occ -= 1
                j += 1
            if occ > peak:
                peak = occ
        return occ, peak, i, j

    def _occ_fold(self) -> None:
        """Fold log entries strictly before the current cycle into
        ``(base, peak)`` — they are final, since every logging path stamps
        cycles at or after the wall clock.

        Bulk cruise/replication commits can push the logs past the fold
        limit with *future-dated* entries only (whole trains commit in
        one engine event); nothing is foldable then, so bail before the
        sweep instead of re-walking the log on every subsequent burst.

        Under a sharded backend the engine carries a ``stats_fold_limit``
        watermark (a proven lower bound on the global end cycle): folds
        never cross it, so even on a shard whose clock runs ahead of the
        eventual global end, every folded entry provably lies at or
        before that end and :meth:`counts_at` stays exact.
        """
        now = self.engine.cycle
        limit = self.engine.stats_fold_limit
        if limit is not None and limit + 1 < now:
            now = limit + 1
        stages = self._occ_stages
        takes = self._occ_takes
        if (not stages or stages[0] >= now) and (not takes or
                                                 takes[0] >= now):
            return
        occ, peak, i, j = self._occ_sweep(now)
        self._occ_base = occ
        self._occ_peak = peak
        if now > self._occ_folded_through:
            self._occ_folded_through = now
        if i:
            self._occ_folded_stages += i
            del self._occ_stages[:i]
        if j:
            self._occ_folded_takes += j
            del self._occ_takes[:j]

    @property
    def max_occupancy(self) -> int:
        """Exact peak occupancy (items in flight plus reserved slots).

        The maximum *end-of-cycle* prefix sum of the stage/take cycle logs
        up to the current cycle. Because the logs hold exact per-item
        cycles in burst and per-flit mode alike, the statistic is
        burst-invariant (the equivalence suite asserts it) — committed
        future events beyond the wall clock are excluded until the clock
        reaches them.
        """
        return self._occ_sweep(self.engine.cycle + 1)[1]

    # ------------------------------------------------------------------
    # Supply-schedule contract (consumed by the burst planner)
    # ------------------------------------------------------------------
    def register_producer(self, proc) -> None:
        """Add ``proc`` to this FIFO's *closed* producer set.

        Registration is a contract: once any producer is registered, only
        registered processes may stage here (a stage-time tripwire
        enforces it), which is what makes :meth:`supply_horizon` sound.
        The transport builder registers the structurally closed sets
        (CK-to-CK FIFOs, links, receive endpoints, support-kernel
        outputs); app-written endpoints stay unregistered because kernels
        may push from helper processes the metadata cannot see.
        """
        if proc is None:
            return
        if self.producers is None:
            self.producers = (proc,)
        elif proc not in self.producers:
            self.producers = self.producers + (proc,)
        self._stage_guard = True

    def supply_horizon(self, memo: dict | None = None, depth: int = 0) -> int:
        """Exclusive cycle below which no *unknown* arrival can be visible.

        The planner's "provably unreadable" bound for a drained input:
        flow-dead FIFOs never see traffic; a registered producer set
        yields a producer-sleep horizon (earliest producer wake, via
        :meth:`Engine.process_floor`, plus this FIFO's latency); unknown
        writers degrade to ``now + latency`` (a stage this cycle turns
        visible no earlier than that).

        A *pinned* horizon (the sharded backend's proxy contract) takes
        precedence over producer floors: the pin is the remote shard's
        published visibility bound for this boundary FIFO, valid for the
        whole epoch regardless of the local clock — returning it even
        when it is below ``now + latency`` is merely conservative, while
        a clock-relative bound could over-claim silence past the epoch.
        A flow-dead boundary FIFO still reports FOREVER (injections into
        one trip the same guard as stages, so the claim stays honest).
        """
        if self._flow_dead:
            return FOREVER
        pin = self.horizon_pin
        if pin is not None:
            return pin
        producers = self.producers
        now = self.engine.cycle
        if producers is None:
            return now + self.latency
        floor = FOREVER
        engine = self.engine
        for proc in producers:
            f = engine.process_floor(proc, memo, depth)
            if f < floor:
                floor = f
                if floor <= now:
                    break
        if floor >= FOREVER:
            return FOREVER
        return floor + self.latency

    def earliest_readable(self, memo: dict | None = None,
                          depth: int = 0) -> int:
        """Lower bound on the next cycle this FIFO can be readable.

        With items present the head's visibility cycle is exact (FIFO
        order: nothing behind the head can overtake it); drained FIFOs
        fall back to the supply horizon. Used by
        :meth:`Engine.process_floor` to bound the wake of a process
        parked on ``CanPop`` conditions.
        """
        now = self.engine.cycle
        if self._visible:
            return now
        staged = self._staged
        if staged:
            ready = staged[0][0]
            return ready if ready > now else now
        return self.supply_horizon(memo, depth)

    # ------------------------------------------------------------------
    # Sharded-backend proxy contract (see repro.shard.proxy)
    # ------------------------------------------------------------------
    def pin_horizon(self, cycle: int) -> None:
        """Pin (or raise) the supply horizon to ``cycle``.

        Consumer side of a boundary link: the remote shard published
        that no stage beyond the already-shipped ones can be visible
        before ``cycle``. Pins are monotone — an older pin bounded a
        superset of the still-unknown arrivals, so keeping the max of
        the two is always sound.
        """
        pin = self.horizon_pin
        if pin is None or cycle > pin:
            self.horizon_pin = cycle

    def record_boundary_stages(self) -> None:
        """Start logging ``(item, visible_cycle)`` for every stage."""
        if self._stage_log is None:
            self._stage_log = []

    def record_boundary_takes(self) -> None:
        """Start logging the exact cycle of every take."""
        if self._take_log is None:
            self._take_log = []

    def drain_stage_log(self) -> list:
        """Return and reset the boundary stage log (exchange helper)."""
        log = self._stage_log
        self._stage_log = []
        return log

    def drain_take_log(self) -> list:
        """Return and reset the boundary take log (exchange helper)."""
        log = self._take_log
        self._take_log = []
        return log

    def inject_staged(self, items: Sequence[Any],
                      visible_cycles: Sequence[int]) -> None:
        """Materialise a remote producer's committed stages locally.

        The consumer-side half of a boundary link's supply schedule:
        ``items[i]`` becomes visible at ``visible_cycles[i]`` exactly as
        if the (remote) producer had staged it ``latency`` cycles
        earlier. Unlike :meth:`stage_burst` this bypasses the capacity
        walk — the remote producer already enforced capacity against the
        acked take schedule, and the local container may transiently
        hold more than ``capacity`` items because the takes that
        interleave in *cycle* time have not been simulated yet (the
        time-indexed occupancy log stays exact regardless).

        Soundness relies on the epoch protocol: every visibility cycle
        is at or past the horizon previously pinned on this FIFO, which
        in turn is past the local clock — injections never rewrite the
        simulated past.
        """
        k = len(items)
        if k == 0:
            return
        if self._flow_dead:
            self._reject_flow_dead()
        now = self.engine.cycle
        vis0 = visible_cycles[0]
        if vis0 <= now:
            raise SimulationError(
                f"fifo {self.name!r}: boundary injection visible at "
                f"{vis0} but the local clock already passed it ({now})"
            )
        pin = self.horizon_pin
        if pin is not None and vis0 < pin:
            raise SimulationError(
                f"fifo {self.name!r}: boundary injection visible at "
                f"{vis0} violates the pinned horizon {pin}"
            )
        if k > 1 and any(map(gt, visible_cycles,
                             islice(visible_cycles, 1, None))):
            raise SimulationError(
                f"fifo {self.name!r}: injected cycles not monotone"
            )
        staged = self._staged
        if staged and vis0 < staged[-1][0]:
            raise SimulationError(
                f"fifo {self.name!r}: boundary injection at {vis0} behind "
                f"already-staged item at {staged[-1][0]}"
            )
        staged.extend(zip(visible_cycles, items))
        latency = self.latency
        stage_cycles = [v - latency for v in visible_cycles]
        occ_stages = self._occ_stages
        if occ_stages and stage_cycles[0] < occ_stages[-1]:
            raise SimulationError(
                f"fifo {self.name!r}: injected stage cycles regress behind "
                f"the occupancy log"
            )
        occ_stages.extend(stage_cycles)
        if len(occ_stages) > _OCC_FOLD_LIMIT:
            self._occ_fold()
        self.pushes += k
        if self.first_push_cycle is None:
            self.first_push_cycle = stage_cycles[0]
        if self.can_pop.waiters:
            self.engine._schedule_commit(self._staged[0][0], self)
        # No burst_stats: an injection batch reflects epoch pacing, not
        # the data plane's batching (and the transmitting half of this
        # boundary FIFO — the stats-authoritative one — already records
        # the producer's real bursts).

    def apply_remote_takes(self, cycles: Sequence[int]) -> None:
        """Apply a boundary consumer's take schedule (acks) locally.

        Like :meth:`take_burst` with ``collect=False``, but tolerant of
        take cycles in the *simulated past*: the epoch synchroniser's
        slot-budget bound (``tx_self_sufficiency``) lets the producing
        shard run ahead of unreported takes precisely when it can prove
        no local event could observe the freed slots — so a past-dated
        take just removes its item and frees the slot with no wake (the
        wake cycle, ``take + 1``, provably had no waiter). A producer
        blocked on this FIFO while past-dated acks arrive would falsify
        that proof, and trips loudly.
        """
        if not cycles:
            return
        now = self.engine.cycle
        split = bisect_right(cycles, now - 1)
        past = cycles[:split]
        if past:
            # Waiter entries can be stale (a preempted process bumps its
            # token but leaves the entry); only a *live* waiter falsifies
            # the self-sufficiency proof.
            for proc, token in self.can_push.waiters:
                if not proc.finished and token == proc._token:
                    raise SimulationError(
                        f"fifo {self.name!r}: past-dated boundary takes "
                        f"(first {past[0]}, now {now}) with blocked "
                        f"producer {proc.name!r} — the self-sufficiency "
                        "bound was unsound"
                    )
            k = len(past)
            visible = self._visible
            staged = self._staged
            nv = min(k, len(visible))
            for _ in range(nv):
                visible.popleft()
            for i in range(nv, k):
                if not staged:
                    raise SimulationError(
                        f"fifo {self.name!r}: boundary takes ran out of "
                        "items"
                    )
                ready = staged.popleft()[0]
                if ready > past[i]:
                    raise SimulationError(
                        f"fifo {self.name!r}: boundary take at {past[i]} "
                        f"but the item is only visible at {ready}"
                    )
            self.pops += k
            self.last_pop_cycle = past[-1]
            occ_takes = self._occ_takes
            if occ_takes and past[0] < occ_takes[-1]:
                raise SimulationError(
                    f"fifo {self.name!r}: boundary takes regress behind "
                    "the occupancy log"
                )
            occ_takes.extend(past)
            if len(occ_takes) > _OCC_FOLD_LIMIT:
                self._occ_fold()
            # No burst_stats: ack batches reflect epoch pacing, not the
            # consumer's real burst structure.
        rest = cycles[split:]
        if rest:
            self.take_burst(rest, collect=False)

    def max_occupancy_at(self, cycle: int) -> int:
        """Exact peak occupancy with an explicit sweep end (inclusive).

        The sharded backend's stats merge: each shard's clock stops at
        its own last event, so the per-shard peaks must all be swept to
        the *global* end cycle to match a sequential run's
        :attr:`max_occupancy` (which sweeps to the single engine's
        clock).
        """
        self._check_fold_watermark(cycle)
        return self._occ_sweep(cycle + 1)[1]

    def _check_fold_watermark(self, cycle: int) -> None:
        """Refuse time-filtered queries below the folded log prefix.

        Folds run up to ``min(engine.cycle, stats_fold_limit + 1)``; a
        bulk clock jump (a macro-cruise train committing a long span in
        one event, or a sharded ``run_until`` bound) can land that
        boundary far past any cycle a caller saw earlier. A query below
        the boundary cannot be answered exactly — the folded counts are
        one lump — so failing loudly here is what keeps ``counts_at`` /
        ``max_occupancy_at`` trustworthy instead of silently drifting.
        Sharded backends stay queryable at the global end because their
        ``stats_fold_limit`` watermark never exceeds it.
        """
        if cycle + 1 < self._occ_folded_through:
            raise SimulationError(
                f"fifo {self.name!r}: time-filtered stats at cycle "
                f"{cycle} but the occupancy log is folded through "
                f"{self._occ_folded_through - 1} (raise the engine's "
                "stats_fold_limit before the clock jumps past the "
                "query point)")

    def counts_at(self, cycle: int) -> tuple[int, int]:
        """Exact ``(pushes, pops)`` counting only events at or before
        ``cycle``.

        The raw :attr:`pushes`/:attr:`pops` counters tally every event
        ever executed or committed; a shard that ran ahead of the global
        end cycle may have executed trailing events (in-flight credit
        packets, post-completion forwards) a sequential run never
        reached. Filtering by the per-item cycle logs at the global end
        restores exact equality — sound because folds never cross the
        engine's ``stats_fold_limit`` watermark, which is always at or
        below the global end (queries below an already-folded prefix
        raise instead of returning lumped counts).
        """
        self._check_fold_watermark(cycle)
        return (
            self._occ_folded_stages + bisect_right(self._occ_stages, cycle),
            self._occ_folded_takes + bisect_right(self._occ_takes, cycle),
        )

    # ------------------------------------------------------------------
    # Handshake helpers: one item per cycle, blocking on full/empty.
    # ------------------------------------------------------------------
    def push(self, item: Any) -> Generator:
        """Generator: block until writable, stage ``item``, spend one cycle."""
        while not self.writable:
            yield self.can_push
        self.stage(item)
        yield TICK

    def pop(self) -> Generator:
        """Generator: block until readable, take one item, spend one cycle."""
        while not self.readable:
            yield self.can_pop
        item = self.take()
        yield TICK
        return item

    def push_many(self, items) -> Generator:
        """Push a sequence of items, one per cycle."""
        for item in items:
            while not self.writable:
                yield self.can_push
            self.stage(item)
            yield TICK

    def pop_many(self, count: int) -> Generator:
        """Pop ``count`` items (one per cycle) and return them as a list."""
        out = []
        for _ in range(count):
            while not self.readable:
                yield self.can_pop
            out.append(self.take())
            yield TICK
        return out

    def push_burst(self, items) -> Generator:
        """Burst-mode ``push_many``: identical cycle behaviour, one engine
        event per run of ``min(remaining, free_space)`` items."""
        items = list(items)
        i = 0
        n = len(items)
        while i < n:
            free = self.free_space
            if free == 0:
                yield self.can_push
                continue
            k = min(free, n - i)
            start = self.engine.cycle
            self.stage_burst(items[i : i + k], range(start, start + k))
            i += k
            yield WaitCycles(k)

    def pop_burst(self, count: int) -> Generator:
        """Burst-mode ``pop_many``: identical cycle behaviour, draining every
        present item (visible *and* staged, via its known ready cycle) in one
        engine event per run."""
        out: list = []
        while len(out) < count:
            if not self.present_count:
                yield self.can_pop
                continue
            cycles = []
            c = self.engine.cycle
            for _item, ready in self.iter_present():
                if len(out) + len(cycles) >= count:
                    break
                c = max(c, ready)
                cycles.append(c)
                c += 1
            out.extend(self.take_burst(cycles))
            end = cycles[-1] + 1
            if end > self.engine.cycle:
                yield WaitCycles(end - self.engine.cycle)
        return out

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------
    def _commit(self, cycle: int) -> None:
        """Wake waiters whose condition has come true with the clock.

        Item visibility and reserved-slot release are computed lazily from
        the current cycle (:attr:`readable` / :attr:`occupancy`), so commit
        events exist purely to wake blocked processes. They are scheduled
        only when a process blocks (``Engine._block``) or when state changes
        while waiters exist; if a wake target is still unsatisfied (e.g. a
        second producer refilled the space), re-arm at the next deadline.
        """
        if self.can_pop.waiters:
            if self.readable:
                self.engine._wake_all(self.can_pop, delay=0)
            elif self._staged:
                self.engine._schedule_commit(self._staged[0][0], self)
        if self.can_push.waiters:
            reserved = self._reserved
            if self.writable or (reserved and
                                 reserved[0] <= self.engine.cycle):
                # Same wake timing as a take() in this cycle: producers
                # run next cycle (registered full flag). A reserved slot
                # releasing *this* cycle wakes them for the next one too
                # — the strict trim keeps it counted until then, so the
                # woken producer is the first observer to see it free.
                self.engine._wake_all(self.can_push, delay=1)
            elif reserved:
                self.engine._schedule_commit(reserved[0], self)

    def _next_commit_cycle(self) -> int | None:
        """Cycle of the earliest pending staged item, if any (test helper)."""
        return self._staged[0][0] if self._staged else None

    def _arm_waiter_wake(self, cond) -> None:
        """Schedule the commit a newly-blocked waiter of ``cond`` needs."""
        if cond is self.can_pop:
            if self._staged:
                self.engine._schedule_commit(self._staged[0][0], self)
        elif self._reserved:
            self.engine._schedule_commit(self._reserved[0], self)

    def drain(self) -> list:
        """Remove and return all items (visible and staged); test helper."""
        items = list(self._visible) + [item for _, item in self._staged]
        self._visible.clear()
        self._staged.clear()
        self._reserved.clear()
        self._reserved_paired = 0
        if items:
            takes = self._occ_takes
            # Keep the log sorted even past already-recorded future takes.
            cyc = max(self.engine.cycle, takes[-1] if takes else 0)
            takes.extend([cyc] * len(items))
        return items

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Fifo({self.name}, {len(self._visible)}+{len(self._staged)}"
            f"/{self.capacity})"
        )
