"""Off-chip DRAM bank model.

The applications of §5.4 are memory-bandwidth-bound. This module models an
FPGA board's DDR banks at the granularity the paper uses: a bank delivers a
fixed number of elements per kernel cycle to the modules reading from it
(e.g. "16 elements per cycle from a single DDR bank", §5.4.2), and
concurrent readers of the same bank share that budget — which is exactly why
the single-FPGA GESUMMV is bottlenecked when two GEMV kernels contend for the
same board's bandwidth (§5.4.1).

The model is deliberately simple (streaming access, per-cycle budget,
first-come arbitration) because the paper's kernels stream sequentially; no
row/bank conflicts are modelled.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..core.errors import ConfigurationError, SimulationError
from .conditions import TICK


class MemoryBank:
    """One DDR bank with a per-cycle element budget shared by its ports."""

    __slots__ = ("engine", "name", "width_elements", "_budget_cycle", "_budget",
                 "total_granted", "busy_cycles")

    def __init__(self, engine, name: str, width_elements: int) -> None:
        if width_elements < 1:
            raise ConfigurationError("width_elements must be >= 1")
        self.engine = engine
        self.name = name
        self.width_elements = width_elements
        self._budget_cycle = -1
        self._budget = 0
        self.total_granted = 0
        self.busy_cycles = 0

    def grant(self, requested: int) -> int:
        """Grant up to ``requested`` elements from this cycle's budget."""
        if requested < 0:
            raise SimulationError("negative memory request")
        cycle = self.engine.cycle
        if cycle != self._budget_cycle:
            self._budget_cycle = cycle
            self._budget = self.width_elements
            self.busy_cycles += 1
        granted = min(requested, self._budget)
        self._budget -= granted
        self.total_granted += granted
        return granted

    def utilization(self, cycles: int) -> float:
        """Fraction of peak bandwidth used over ``cycles`` cycles."""
        if cycles <= 0:
            return 0.0
        return self.total_granted / (cycles * self.width_elements)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MemoryBank({self.name}, {self.width_elements}/cycle)"


class MemoryPort:
    """A kernel-side streaming port into a :class:`MemoryBank`.

    ``read``/``write`` are generators that consume simulation cycles
    according to the bank's bandwidth (and contention from other ports).
    """

    __slots__ = ("bank", "name", "elements_read", "elements_written")

    def __init__(self, bank: MemoryBank, name: str) -> None:
        self.bank = bank
        self.name = name
        self.elements_read = 0
        self.elements_written = 0

    def read(self, array: np.ndarray, start: int, count: int) -> Generator:
        """Stream ``count`` elements from ``array[start:]``; returns a copy."""
        if start < 0 or start + count > len(array):
            raise SimulationError(
                f"port {self.name!r}: read [{start}, {start + count}) out of "
                f"bounds for array of length {len(array)}"
            )
        remaining = count
        while remaining > 0:
            granted = self.bank.grant(remaining)
            remaining -= granted
            yield TICK
        self.elements_read += count
        return np.array(array[start : start + count], copy=True)

    def write(self, array: np.ndarray, start: int, values: np.ndarray) -> Generator:
        """Stream ``values`` into ``array[start:]`` at bank bandwidth."""
        count = len(values)
        if start < 0 or start + count > len(array):
            raise SimulationError(
                f"port {self.name!r}: write [{start}, {start + count}) out of "
                f"bounds for array of length {len(array)}"
            )
        remaining = count
        while remaining > 0:
            granted = self.bank.grant(remaining)
            remaining -= granted
            yield TICK
        array[start : start + count] = values
        self.elements_written += count


class BoardMemory:
    """All DDR banks of one FPGA board."""

    def __init__(self, engine, rank: int, num_banks: int, width_elements: int) -> None:
        self.rank = rank
        self.banks = [
            MemoryBank(engine, f"rank{rank}.ddr{i}", width_elements)
            for i in range(num_banks)
        ]

    def port(self, bank_index: int, name: str) -> MemoryPort:
        """Open a named streaming port on one bank."""
        return MemoryPort(self.banks[bank_index], name)

    @property
    def total_width_elements(self) -> int:
        """Aggregate elements/cycle across all banks."""
        return sum(b.width_elements for b in self.banks)
