"""Wait conditions yielded by simulated hardware processes.

A simulated module is a Python generator. Each ``yield`` hands control back
to the engine together with a *condition* describing when the process wants
to run again:

* :data:`TICK` — run again next cycle (models one clock cycle of work).
* :class:`WaitCycles` — sleep a fixed number of cycles.
* ``fifo.can_pop`` / ``fifo.can_push`` — run when the FIFO becomes readable /
  writable (interned per FIFO; see :mod:`repro.simulation.fifo`).
* :class:`SimEvent` — a broadcast event other processes can trigger.

Processes normally do not yield FIFO conditions directly; they use the
``yield from fifo.push(x)`` / ``item = yield from fifo.pop()`` helpers which
implement the one-item-per-cycle handshake of a hardware FIFO port.
"""

from __future__ import annotations


class _Tick:
    """Singleton condition: resume the process on the next clock cycle."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "TICK"


#: The unique "advance one cycle" condition.
TICK = _Tick()


class WaitCycles:
    """Condition: resume the process after ``cycles`` clock cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 1:
            raise ValueError(f"WaitCycles needs cycles >= 1, got {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"WaitCycles({self.cycles})"


class CanPop:
    """Condition: resume when the FIFO has at least one visible item.

    Interned: obtain via ``fifo.can_pop``, never constructed by user code.
    """

    __slots__ = ("fifo", "waiters")

    def __init__(self, fifo) -> None:
        self.fifo = fifo
        self.waiters: list = []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CanPop({self.fifo.name})"


class CanPush:
    """Condition: resume when the FIFO has free space.

    Interned: obtain via ``fifo.can_push``, never constructed by user code.
    """

    __slots__ = ("fifo", "waiters")

    def __init__(self, fifo) -> None:
        self.fifo = fifo
        self.waiters: list = []

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"CanPush({self.fifo.name})"


class SimEvent:
    """A one-shot broadcast event.

    Processes wait on it by yielding the event; :meth:`set` wakes all current
    and future waiters (waiting on a set event resumes on the next cycle).
    """

    __slots__ = ("name", "waiters", "_set", "set_at_cycle")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self.waiters: list = []
        self._set = False
        self.set_at_cycle: int | None = None

    @property
    def is_set(self) -> bool:
        """Whether the event has been triggered."""
        return self._set

    def __repr__(self) -> str:  # pragma: no cover - trivial
        state = "set" if self._set else "unset"
        return f"SimEvent({self.name}, {state})"
