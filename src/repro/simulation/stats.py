"""Measurement utilities for simulation runs.

The microbenchmarks of §5.3 report bandwidth (payload bits over wall time),
latency (half a ping-pong round trip) and injection rate (cycles per accepted
packet). These helpers convert raw cycle counts and FIFO counters into those
figures so benchmark code stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import HardwareConfig


@dataclass
class Stopwatch:
    """Records start/stop cycles inside a simulated process."""

    start_cycle: int | None = None
    stop_cycle: int | None = None

    def start(self, cycle: int) -> None:
        self.start_cycle = cycle

    def stop(self, cycle: int) -> None:
        self.stop_cycle = cycle

    @property
    def cycles(self) -> int:
        if self.start_cycle is None or self.stop_cycle is None:
            raise ValueError("stopwatch not started/stopped")
        return self.stop_cycle - self.start_cycle

    def seconds(self, config: HardwareConfig) -> float:
        return config.cycles_to_seconds(self.cycles)

    def us(self, config: HardwareConfig) -> float:
        return config.cycles_to_us(self.cycles)


def payload_bandwidth_gbit_s(
    payload_bytes: int, cycles: int, config: HardwareConfig
) -> float:
    """Payload bandwidth in Gbit/s given bytes moved and cycles elapsed.

    Matches the paper's Fig. 9 metric: "considering only the payload as data
    exchanged".
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive: {cycles}")
    seconds = config.cycles_to_seconds(cycles)
    return payload_bytes * 8 / seconds / 1e9


def link_utilization(packets: int, cycles: int) -> float:
    """Fraction of cycles a link carried a packet (1 packet/cycle peak)."""
    if cycles <= 0:
        return 0.0
    return packets / cycles


@dataclass
class CycleHistogram:
    """Histogram of inter-event gaps in cycles (used for injection rate)."""

    last_cycle: int | None = None
    gaps: list[int] = field(default_factory=list)

    def record(self, cycle: int) -> None:
        if self.last_cycle is not None:
            self.gaps.append(cycle - self.last_cycle)
        self.last_cycle = cycle

    @property
    def count(self) -> int:
        return len(self.gaps)

    @property
    def mean_gap(self) -> float:
        if not self.gaps:
            raise ValueError("no gaps recorded")
        return sum(self.gaps) / len(self.gaps)
