"""Measurement utilities for simulation runs.

The microbenchmarks of §5.3 report bandwidth (payload bits over wall time),
latency (half a ping-pong round trip) and injection rate (cycles per accepted
packet). These helpers convert raw cycle counts and FIFO counters into those
figures so benchmark code stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import HardwareConfig


@dataclass
class Stopwatch:
    """Records start/stop cycles inside a simulated process."""

    start_cycle: int | None = None
    stop_cycle: int | None = None

    def start(self, cycle: int) -> None:
        self.start_cycle = cycle

    def stop(self, cycle: int) -> None:
        self.stop_cycle = cycle

    @property
    def cycles(self) -> int:
        if self.start_cycle is None or self.stop_cycle is None:
            raise ValueError("stopwatch not started/stopped")
        return self.stop_cycle - self.start_cycle

    def seconds(self, config: HardwareConfig) -> float:
        return config.cycles_to_seconds(self.cycles)

    def us(self, config: HardwareConfig) -> float:
        return config.cycles_to_us(self.cycles)


def payload_bandwidth_gbit_s(
    payload_bytes: int, cycles: int, config: HardwareConfig
) -> float:
    """Payload bandwidth in Gbit/s given bytes moved and cycles elapsed.

    Matches the paper's Fig. 9 metric: "considering only the payload as data
    exchanged".
    """
    if cycles <= 0:
        raise ValueError(f"cycles must be positive: {cycles}")
    seconds = config.cycles_to_seconds(cycles)
    return payload_bytes * 8 / seconds / 1e9


def link_utilization(packets: int, cycles: int) -> float:
    """Fraction of cycles a link carried a packet (1 packet/cycle peak)."""
    if cycles <= 0:
        return 0.0
    return packets / cycles


@dataclass
class CycleHistogram:
    """Histogram of inter-event gaps in cycles (used for injection rate)."""

    last_cycle: int | None = None
    gaps: list[int] = field(default_factory=list)

    def record(self, cycle: int) -> None:
        if self.last_cycle is not None:
            self.gaps.append(cycle - self.last_cycle)
        self.last_cycle = cycle

    @property
    def count(self) -> int:
        return len(self.gaps)

    @property
    def mean_gap(self) -> float:
        if not self.gaps:
            raise ValueError("no gaps recorded")
        return sum(self.gaps) / len(self.gaps)


@dataclass
class GapHistogram:
    """Bounded histogram of inter-event gaps in cycles.

    Unlike :class:`CycleHistogram` this stores one counter per *distinct*
    gap value rather than one entry per event, so it stays O(distinct gaps)
    no matter how many packets flow through — safe to leave attached to a
    long-running arbiter (the unbounded per-packet list it replaces grew by
    one int per accepted packet forever).
    """

    last_cycle: int | None = None
    counts: dict[int, int] = field(default_factory=dict)

    def record(self, cycle: int) -> None:
        if self.last_cycle is not None:
            gap = cycle - self.last_cycle
            self.counts[gap] = self.counts.get(gap, 0) + 1
        self.last_cycle = cycle

    @property
    def count(self) -> int:
        """Number of gaps recorded (events - 1)."""
        return sum(self.counts.values())

    @property
    def mean_gap(self) -> float:
        total = self.count
        if not total:
            raise ValueError("no gaps recorded")
        return sum(g * n for g, n in self.counts.items()) / total

    @property
    def max_gap(self) -> int:
        if not self.counts:
            raise ValueError("no gaps recorded")
        return max(self.counts)

    def percentile(self, q: float) -> int:
        """Smallest gap g with at least ``q`` of all gaps <= g (0 < q <= 1).

        Computed from the bounded per-value counters, so percentiles stay
        available without keeping the raw per-event list around.

        Raises
        ------
        ValueError
            If ``q`` is outside ``(0, 1]``, or if the histogram is empty
            (fewer than two events recorded — a single event defines no
            gap, so every percentile is undefined).
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile fraction must be in (0, 1]: {q}")
        total = self.count
        if not total:
            raise ValueError(
                "percentile of an empty GapHistogram: no gaps recorded "
                "(at least two events are needed to define a gap)"
            )
        need = q * total
        running = 0
        for gap in sorted(self.counts):
            running += self.counts[gap]
            if running >= need:
                return gap
        return max(self.counts)  # pragma: no cover - q <= 1 always returns

    @property
    def p50(self) -> int:
        """Median inter-event gap."""
        return self.percentile(0.50)

    @property
    def p99(self) -> int:
        """99th-percentile inter-event gap."""
        return self.percentile(0.99)


@dataclass
class BurstStats:
    """Counters for the burst fast path (bursts taken, items moved)."""

    bursts: int = 0
    items: int = 0

    def record(self, length: int) -> None:
        self.bursts += 1
        self.items += length

    @property
    def mean_length(self) -> float:
        return self.items / self.bursts if self.bursts else 0.0

    def merge(self, other: "BurstStats") -> "BurstStats":
        return BurstStats(self.bursts + other.bursts, self.items + other.items)


def collect_burst_stats(engine) -> BurstStats:
    """Aggregate burst counters over every FIFO owned by ``engine``."""
    total = BurstStats()
    for fifo in engine.fifos:
        total.bursts += fifo.burst_stats.bursts
        total.items += fifo.burst_stats.items
    return total


@dataclass
class PlannerStats:
    """Counters for one CK's burst window planner (supply-schedule plane).

    ``attempts``/``windows`` count planning tried/committed from the CK's
    own engine events; ``extensions`` are cascade re-plans that stretched
    an already-committed window (same engine event, new supply); and
    ``coplans`` are windows planned *for* this CK by a peer CK's cascade
    while this CK was parked or sleeping. ``window_cycles``/``takes``
    cover every committed window regardless of who planned it.

    The steady-state replication plane adds three counters:
    ``pattern_checks`` counts the times a confirmed periodic pattern was
    tried against live supply/slot state, ``replications`` the times at
    least one round was committed from it, and ``replicated_rounds`` the
    total number of Δ-shifted pattern rounds committed in bulk (the sum
    of all train lengths).

    Cruise-mode induction adds three more: ``cruise_checks`` counts the
    times a validated round armed the induction and the arithmetic bound
    scan ran, ``cruise_commits`` the scans that proved at least one
    further round (K >= 1), and ``cruise_rounds`` the total rounds
    committed by cruise (a subset of ``replicated_rounds`` — every
    cruise round is a replicated round, committed without the per-round
    validation walk).

    Macro-cruise (whole-program fast-forward) adds four: ``ff_windows``
    counts trains that extended at least one app-side channel lane,
    ``ff_cycles`` the cycle span those trains committed in closed form
    (the engine dispatched no events inside it), ``ff_takes`` the packet
    takes committed inside fast-forward windows, and ``lane_extends``
    the app-lane extension calls that produced work. All four are
    recorded on the train origin's arbiter only, so fleet-wide sums are
    double-count-free. ``ff_bulk_rounds`` counts the pattern rounds
    committed by the analytic stream fast-forward (the tier-2 macro
    path: whole steady-state spans extrapolated as Δ-shift lattices with
    no per-packet replay), summed over every session of the train; it is
    a subset of ``replicated_rounds``, disjoint from ``cruise_rounds``.

    The generalized relay-chain resolver adds two: ``ff_jumps`` counts
    the analytic jumps that landed (at most one per train), and
    ``ff_chain_hops`` the total relay sessions those jumps spanned, so
    ``mean_ff_chain_len`` reports how deep the chains that actually
    fast-forwarded were (a 4-hop deep stream resolves as one chain of 8
    relay sessions: CKS and CKR at every hop).

    ``ff_disarms`` counts permanent resolve refusals (each sets
    ``SupplyPlanner.ff_disarmed``; at most one per planner, so the
    fleet-wide sum reads "how many shards disarmed"), and
    ``ff_disarm_reason`` carries the resolver's reason string — merged
    first-non-empty-wins so reports can say *why* a plane permanently
    refused instead of showing zero ff counters as "never tried".
    """

    attempts: int = 0
    windows: int = 0
    window_cycles: int = 0
    takes: int = 0
    extensions: int = 0
    coplans: int = 0
    pattern_checks: int = 0
    replications: int = 0
    replicated_rounds: int = 0
    cruise_checks: int = 0
    cruise_commits: int = 0
    cruise_rounds: int = 0
    ff_windows: int = 0
    ff_cycles: int = 0
    ff_takes: int = 0
    lane_extends: int = 0
    ff_bulk_rounds: int = 0
    ff_jumps: int = 0
    ff_chain_hops: int = 0
    ff_disarms: int = 0
    ff_disarm_reason: str = ""

    @property
    def hit_rate(self) -> float:
        """Committed windows per planning attempt (own events only)."""
        return self.windows / self.attempts if self.attempts else 0.0

    @property
    def mean_window(self) -> float:
        """Mean committed window length in cycles."""
        committed = (self.windows + self.extensions + self.coplans
                     + self.replications)
        return self.window_cycles / committed if committed else 0.0

    @property
    def replication_hit_rate(self) -> float:
        """Replicated trains committed per confirmed-pattern attempt."""
        return (self.replications / self.pattern_checks
                if self.pattern_checks else 0.0)

    @property
    def mean_train_rounds(self) -> float:
        """Mean committed train length, in pattern rounds per train."""
        return (self.replicated_rounds / self.replications
                if self.replications else 0.0)

    @property
    def cruise_hit_rate(self) -> float:
        """Cruise commits per induction attempt (the induction hit-rate)."""
        return (self.cruise_commits / self.cruise_checks
                if self.cruise_checks else 0.0)

    @property
    def mean_ff_span(self) -> float:
        """Mean fast-forwarded span per macro-cruise window, in cycles."""
        return self.ff_cycles / self.ff_windows if self.ff_windows else 0.0

    @property
    def mean_ff_chain_len(self) -> float:
        """Mean relay sessions per landed analytic jump (chain depth)."""
        return self.ff_chain_hops / self.ff_jumps if self.ff_jumps else 0.0

    def merge(self, other: "PlannerStats") -> "PlannerStats":
        return PlannerStats(
            self.attempts + other.attempts,
            self.windows + other.windows,
            self.window_cycles + other.window_cycles,
            self.takes + other.takes,
            self.extensions + other.extensions,
            self.coplans + other.coplans,
            self.pattern_checks + other.pattern_checks,
            self.replications + other.replications,
            self.replicated_rounds + other.replicated_rounds,
            self.cruise_checks + other.cruise_checks,
            self.cruise_commits + other.cruise_commits,
            self.cruise_rounds + other.cruise_rounds,
            self.ff_windows + other.ff_windows,
            self.ff_cycles + other.ff_cycles,
            self.ff_takes + other.ff_takes,
            self.lane_extends + other.lane_extends,
            self.ff_bulk_rounds + other.ff_bulk_rounds,
            self.ff_jumps + other.ff_jumps,
            self.ff_chain_hops + other.ff_chain_hops,
            self.ff_disarms + other.ff_disarms,
            self.ff_disarm_reason or other.ff_disarm_reason,
        )


def collect_planner_stats(transport) -> PlannerStats:
    """Aggregate planner counters over every CK of a built transport.

    A sharded run's transport facade carries a pre-merged snapshot
    instead of live CK objects (the process backend's CKs live in worker
    processes); honour it when present.
    """
    snapshot = getattr(transport, "planner_stats_snapshot", None)
    if snapshot is not None:
        return snapshot
    total = PlannerStats()
    for rt in transport.ranks.values():
        for ck in list(rt.cks.values()) + list(rt.ckr.values()):
            total = total.merge(ck.arbiter.planner_stats)
    return total
