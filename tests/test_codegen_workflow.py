"""Tests for the Fig. 8 workflow: generator report + route-generator CLI."""

import json

import pytest

from repro import SMI_ADD, SMI_FLOAT, SMI_INT, bus, noctua_torus
from repro.codegen import OpDecl, ProgramPlan, generate, generate_routes, load_routes
from repro.codegen.routes import main as routes_main
from repro.core.config import NOCTUA


def _sample_plan() -> ProgramPlan:
    plan = ProgramPlan(4)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    plan.add(1, OpDecl("recv", 0, SMI_INT))
    for rank in range(4):
        plan.add(rank, OpDecl("reduce", 1, SMI_FLOAT, reduce_op=SMI_ADD))
    return plan


def test_generation_report_structure():
    report = generate(_sample_plan(), noctua_torus(), NOCTUA)
    assert report.num_ranks == 4
    r0 = report.ranks[0]
    # Torus rank: all 4 interfaces active => 4 CKS + 4 CKR modules.
    assert len(r0.cks_modules) == 4
    assert len(r0.ckr_modules) == 4
    assert 0 in r0.send_endpoints
    assert 0 not in r0.recv_endpoints  # rank 0 only sends on port 0
    assert r0.support_kernels[1].startswith("smi_reduce")
    # Collective port owns both directions.
    assert 1 in r0.send_endpoints and 1 in r0.recv_endpoints


def test_generation_report_ports_assigned_round_robin():
    plan = ProgramPlan(2)
    for port in range(6):
        plan.add(0, OpDecl("send", port, SMI_INT))
    report = generate(plan, bus(2), NOCTUA)
    ifaces = report.ranks[0].port_interface
    active = report.ranks[0].active_interfaces
    # Bus endpoint rank: one wired interface only... rank 0 of bus(2) has 1.
    assert set(ifaces.values()) <= set(active)


def test_generation_report_includes_resources():
    report = generate(_sample_plan(), noctua_torus(), NOCTUA)
    res = report.ranks[0].resources
    assert res is not None
    assert res.total.luts > 0
    # Reduce support kernel contributes its DSPs.
    assert res.total.dsps >= 6


def test_generation_report_json_roundtrip():
    report = generate(_sample_plan(), noctua_torus(), NOCTUA)
    data = json.loads(report.to_json())
    assert data["num_ranks"] == 4
    assert data["ranks"][0]["resources"]["luts"] > 0


def test_route_files_written_and_loadable(tmp_path):
    top = noctua_torus()
    routes = generate_routes(top, tmp_path / "routes")
    for rank in range(8):
        table_file = tmp_path / "routes" / f"rank{rank}.json"
        assert table_file.exists()
        table = json.loads(table_file.read_text())
        assert len(table) == 8  # entry per destination (incl. self: null)
    summary = json.loads((tmp_path / "routes" / "summary.json").read_text())
    assert summary["num_ranks"] == 8
    assert summary["verified_deadlock_free"] == summary["deadlock_free"]

    loaded = load_routes(top, tmp_path / "routes")
    for src in range(8):
        for dst in range(8):
            assert loaded.egress(src, dst) == routes.egress(src, dst)


def test_routes_cli_end_to_end(tmp_path, capsys):
    top_file = tmp_path / "top.json"
    noctua_torus().to_json(top_file)
    rc = routes_main([
        "--topology", str(top_file),
        "--out", str(tmp_path / "r"),
        "--scheme", "tree",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "deadlock_free=True" in out
    assert (tmp_path / "r" / "rank7.json").exists()


def test_routes_cli_rejects_bad_scheme(tmp_path):
    top_file = tmp_path / "top.json"
    bus(2).to_json(top_file)
    with pytest.raises(SystemExit):
        routes_main(["--topology", str(top_file), "--out", str(tmp_path),
                     "--scheme", "warp"])


def test_reloaded_routes_drive_a_program(tmp_path):
    """Change the routes without 'recompiling': run a program whose routing
    tables were loaded from files generated for a *degraded* wiring."""
    from repro.codegen.metadata import OpDecl as OD
    from repro.core.program import SMIProgram
    from repro.network.topology import bus as bus_builder

    top = bus_builder(4)
    generate_routes(top, tmp_path / "r", scheme="tree")
    loaded = load_routes(top, tmp_path / "r")

    # Wire the loaded tables in by monkeypatching compute_routes scope:
    # SMIProgram recomputes routes; instead drive the transport directly.
    from repro.simulation.engine import Engine
    from repro.transport.builder import build_transport

    engine = Engine()
    plan = ProgramPlan(4)
    plan.add(0, OD("send", 0, SMI_INT))
    plan.add(3, OD("recv", 0, SMI_INT))
    transport = build_transport(engine, plan, loaded, NOCTUA)

    from repro.core.comm import SMIComm
    from repro.core.context import SMIContext

    stores: dict = {}
    ctx0 = SMIContext(0, transport.rank(0), NOCTUA, engine,
                      SMIComm.world(4), stores)
    ctx3 = SMIContext(3, transport.rank(3), NOCTUA, engine,
                      SMIComm.world(4), stores)

    def sender(smi):
        ch = smi.open_send_channel(10, SMI_INT, 3, 0)
        for i in range(10):
            yield from smi.push(ch, i)

    def receiver(smi):
        ch = smi.open_recv_channel(10, SMI_INT, 0, 0)
        got = []
        for _ in range(10):
            v = yield from smi.pop(ch)
            got.append(int(v))
        smi.store("out", got)

    engine.spawn(sender(ctx0), "sender")
    engine.spawn(receiver(ctx3), "receiver")
    result = engine.run(max_cycles=100_000)
    assert result.completed
    assert stores[(3, "out")] == list(range(10))
