"""Unit tests for the DRAM bank bandwidth model."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.simulation import Engine
from repro.simulation.memory import BoardMemory, MemoryBank, MemoryPort


def test_single_reader_rate_limited_by_bank_width():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=16)
    port = MemoryPort(bank, "r0")
    data = np.arange(1600, dtype=np.float32)
    out = {}

    def reader():
        chunk = yield from port.read(data, 0, 1600)
        out["chunk"] = chunk
        out["cycles"] = eng.cycle

    eng.spawn(reader, "r")
    eng.run()
    np.testing.assert_array_equal(out["chunk"], data)
    # 1600 elements at 16/cycle = 100 cycles.
    assert out["cycles"] == 100


def test_two_readers_share_bank_bandwidth():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=16)
    data = np.arange(800, dtype=np.float32)
    ends = {}

    def reader(tag):
        port = MemoryPort(bank, tag)

        def proc():
            yield from port.read(data, 0, 800)
            ends[tag] = eng.cycle

        return proc

    eng.spawn(reader("a"), "a")
    eng.spawn(reader("b"), "b")
    eng.run()
    # Two streams of 800 elements over a 16/cycle bank: ~100 cycles total,
    # i.e. each stream effectively sees half the bandwidth.
    assert max(ends.values()) == pytest.approx(100, abs=2)


def test_two_banks_are_independent():
    eng = Engine()
    board = BoardMemory(eng, rank=0, num_banks=2, width_elements=16)
    data = np.arange(800, dtype=np.float32)
    ends = {}

    def reader(bank_idx, tag):
        port = board.port(bank_idx, tag)

        def proc():
            yield from port.read(data, 0, 800)
            ends[tag] = eng.cycle

        return proc

    eng.spawn(reader(0, "a"), "a")
    eng.spawn(reader(1, "b"), "b")
    eng.run()
    # No contention: both finish in ~50 cycles.
    assert max(ends.values()) == pytest.approx(50, abs=2)


def test_write_stores_values_at_bandwidth():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=8)
    port = MemoryPort(bank, "w0")
    dest = np.zeros(64, dtype=np.float32)
    values = np.arange(64, dtype=np.float32)
    cycles = {}

    def writer():
        yield from port.write(dest, 0, values)
        cycles["end"] = eng.cycle

    eng.spawn(writer, "w")
    eng.run()
    np.testing.assert_array_equal(dest, values)
    assert cycles["end"] == 8  # 64 / 8 per cycle


def test_read_returns_copy():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=4)
    port = MemoryPort(bank, "r0")
    data = np.arange(8, dtype=np.int32)
    out = {}

    def reader():
        chunk = yield from port.read(data, 0, 8)
        out["chunk"] = chunk

    eng.spawn(reader, "r")
    eng.run()
    out["chunk"][0] = 999
    assert data[0] == 0


def test_out_of_bounds_access_rejected():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=4)
    port = MemoryPort(bank, "r0")
    data = np.zeros(10)

    def bad_reader():
        yield from port.read(data, 5, 10)

    eng.spawn(bad_reader, "r")
    with pytest.raises(SimulationError, match="out of bounds"):
        eng.run()


def test_bank_utilization_metric():
    eng = Engine()
    bank = MemoryBank(eng, "b0", width_elements=10)
    port = MemoryPort(bank, "r0")
    data = np.zeros(50)

    def reader():
        yield from port.read(data, 0, 50)

    eng.spawn(reader, "r")
    eng.run()
    assert bank.total_granted == 50
    assert bank.utilization(eng.cycle) == pytest.approx(1.0)
    assert bank.utilization(0) == 0.0
