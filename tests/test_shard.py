"""Sharded parallel backend: partitioning, epoch sync, cycle-exactness.

The acceptance bar for ``HardwareConfig.backend`` in ``{"sharded",
"process"}`` is the same as for every other data-plane flag: *nothing*
observable changes. Sharded runs must produce identical
``ProgramResult.cycles``, identical per-rank stores, and identical
per-FIFO push/pop counts and occupancy peaks versus the sequential
single-engine reference — the 3-way (per-flit / burst / sharded-burst)
equality the burst equivalence suite pins, extended across the fabric
cut. ``tests/test_burst_fuzz.py`` additionally sweeps random cuts.
"""

import multiprocessing
import time

import numpy as np
import pytest

from repro import (
    NOCTUA,
    NOCTUA_DEEP,
    SMI_FLOAT,
    SMI_INT,
    DeadlockError,
    SMIProgram,
    bus,
    noctua_bus,
    ring,
    torus2d,
)
from repro.codegen.metadata import OpDecl
from repro.core.errors import ConfigurationError, TopologyError
from repro.core.ops import SMI_ADD
from repro.shard import Partition, partition_topology, validate_cut
from repro.simulation import Engine
from repro.simulation.conditions import WaitCycles

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def _fifo_counts(engine):
    return {
        name: (s["pushes"], s["pops"], s["max_occupancy"])
        for name, s in engine.fifo_stats().items()
    }


def _assert_sharded_equal(build, shard_configs):
    """``build(config)`` under sequential flit/burst vs each shard config."""
    flit = build(NOCTUA.with_(burst_mode=False))
    ref = build(NOCTUA)
    assert ref.cycles == flit.cycles
    ref_counts = _fifo_counts(ref.engine)
    assert ref_counts == _fifo_counts(flit.engine)
    for config in shard_configs:
        fast = build(config)
        assert fast.cycles == ref.cycles, config.backend
        assert _fifo_counts(fast.engine) == ref_counts, config.backend
    return ref


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
def test_partition_bus_contiguous_min_cut():
    part = partition_topology(noctua_bus(), 2)
    assert part.num_shards == 2
    assert sorted(len(s) for s in part.shards) == [4, 4]
    # A balanced bisection of a bus cuts exactly one cable.
    assert len(part.cut) == 1
    shard_of = part.shard_of()
    assert sorted(shard_of) == list(range(8))
    (conn,) = part.cut
    assert shard_of[conn.a[0]] != shard_of[conn.b[0]]


def test_partition_torus_balanced():
    topo = torus2d(2, 4)
    for k in (2, 4):
        part = partition_topology(topo, k)
        sizes = [len(s) for s in part.shards]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 8
        # Strictly fewer cut cables than total cables.
        assert 0 < len(part.cut) < len(topo.connections)


def test_partition_swap_refinement_beats_bfs_split():
    """At exact balance only pair swaps can improve the cut: on a ladder
    the BFS split cuts 4 cables, the refined bisection cuts 2."""
    from repro.network.topology import Connection, Topology

    ladder = Topology(
        8,
        [Connection((i, 1), (i + 1, 0)) for i in range(3)]        # rail A
        + [Connection((i, 1), (i + 1, 0)) for i in range(4, 7)]   # rail B
        + [Connection((i, 2), (i + 4, 2)) for i in range(4)],     # rungs
        name="ladder",
    )
    part = partition_topology(ladder, 2)
    assert sorted(len(s) for s in part.shards) == [4, 4]
    assert len(part.cut) == 2  # {0,1,4,5} | {2,3,6,7}: one cut per rail


def test_partition_rank_lists_and_overrides():
    topo = noctua_bus()
    part = partition_topology(topo, 2, rank_lists=[[0, 1, 2], [3, 4, 5, 6, 7]])
    assert part.shards == ((0, 1, 2), (3, 4, 5, 6, 7))
    part = partition_topology(topo, 2, overrides={0: 1})
    assert part.shard_of()[0] == 1
    validate_cut(part, topo, NOCTUA)


def test_partition_validation_errors():
    topo = bus(4)
    with pytest.raises(TopologyError, match="1 <= k"):
        partition_topology(topo, 5)
    with pytest.raises(TopologyError, match="not assigned"):
        partition_topology(topo, 2, rank_lists=[[0], [1, 2]])
    with pytest.raises(TopologyError, match="assigned to shards"):
        partition_topology(topo, 2, rank_lists=[[0, 1], [1, 2, 3]])
    with pytest.raises(TopologyError, match="empty"):
        partition_topology(topo, 2, rank_lists=[[], [0, 1, 2, 3]])
    with pytest.raises(TopologyError, match="out of range"):
        partition_topology(topo, 2, overrides={9: 0})
    with pytest.raises(ConfigurationError, match="not a connection"):
        bad = Partition(shards=((0, 1), (2, 3)),
                        cut=(topo.connections[0].__class__((0, 3), (3, 3)),))
        validate_cut(bad, topo, NOCTUA)


def test_backend_config_validation():
    with pytest.raises(ConfigurationError, match="unknown backend"):
        NOCTUA.with_(backend="threads")
    with pytest.raises(ConfigurationError, match="shards"):
        NOCTUA.with_(shards=0)
    with pytest.raises(ConfigurationError, match="requires backend"):
        NOCTUA.with_(shards=2)
    cfg = NOCTUA.with_(backend="sharded", shards=2)
    assert cfg.shards == 2


# ----------------------------------------------------------------------
# Engine.run_until (incremental resume)
# ----------------------------------------------------------------------
def test_run_until_bound_and_resume():
    eng = Engine()
    trace = []

    def worker():
        for i in range(5):
            trace.append((i, eng.cycle))
            yield WaitCycles(10)

    eng.spawn(worker(), "w")
    reason, executed = eng.run_until(25)
    assert reason == "bound"
    assert trace == [(0, 0), (1, 10), (2, 20)]
    assert executed == 3
    reason, executed = eng.run_until(25)
    assert (reason, executed) == ("bound", 0)  # nothing below the bound
    reason, _ = eng.run_until(1_000)
    assert reason == "idle"  # worker finished; calendar empty
    assert trace[-1] == (4, 40)
    assert eng.live_workers == 0
    assert eng.last_worker_finish == 50


def test_run_until_serves_daemons_without_workers():
    eng = Engine()
    f = eng.fifo("f", capacity=4)
    seen = []

    def daemon():
        while True:
            while not f.readable:
                yield f.can_pop
            seen.append(f.take())
            yield from ()

    eng.spawn(daemon(), "d", daemon=True)
    reason, _ = eng.run_until(100)
    assert reason == "idle"  # parked daemon, no workers: idle, not deadlock
    f.inject_staged(["x"], [eng.cycle + 5])
    reason, executed = eng.run_until(100)
    assert reason == "idle"
    assert seen == ["x"] and executed > 0


def test_inject_staged_guards():
    eng = Engine()
    f = eng.fifo("f", capacity=4, latency=3)
    f.pin_horizon(10)
    with pytest.raises(Exception, match="pinned horizon"):
        f.inject_staged(["a"], [5])
    f.inject_staged(["a", "b"], [10, 11])
    assert f.pushes == 2
    assert f.supply_horizon() == 10  # pin overrides the latency bound
    f.pin_horizon(8)  # pins never regress
    assert f.supply_horizon() == 10
    with pytest.raises(Exception, match="not monotone"):
        f.inject_staged(["c", "d"], [20, 15])


# ----------------------------------------------------------------------
# Sharded-vs-sequential 3-way equality
# ----------------------------------------------------------------------
def _shard_configs(*shard_counts, base=NOCTUA):
    return [base.with_(backend="sharded", shards=k) for k in shard_counts]


@pytest.mark.parametrize("hops", [1, 4, 6])
def test_p2p_stream_sharded_equivalence(hops):
    n = 512
    data = np.arange(n, dtype=np.float32)

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            out = yield from ch.pop_vec(n, width=8)
            smi.store("out", [float(v) for v in out])
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref = _assert_sharded_equal(build, _shard_configs(2, 4))
    sharded = build(NOCTUA.with_(backend="sharded", shards=2))
    assert sharded.store(hops, "end") == ref.store(hops, "end")
    assert sharded.store(hops, "out") == [float(v) for v in data]


def test_p2p_deep_buffers_sharded_equivalence():
    """Deep buffers: replication trains and cruise commits cross epochs."""
    n = 2048
    hops = 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        data = np.arange(n, dtype=np.float32)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            yield from ch.pop_vec(n, width=8)
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0,
                        ops=[OpDecl("send", 0, SMI_FLOAT, peer=hops)])
        prog.add_kernel(rcv, rank=hops,
                        ops=[OpDecl("recv", 0, SMI_FLOAT, peer=0)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    flit = build(NOCTUA_DEEP.with_(burst_mode=False))
    ref = build(NOCTUA_DEEP)
    sharded = build(NOCTUA_DEEP.with_(backend="sharded", shards=2))
    assert flit.cycles == ref.cycles == sharded.cycles
    assert _fifo_counts(sharded.engine) == _fifo_counts(ref.engine)


def _collective_build(kind, n=64, num_ranks=4):
    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        op = (OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD)
              if kind == "reduce" else OpDecl(kind, 0, SMI_FLOAT))

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            out = []
            if kind == "bcast":
                chan = smi.open_bcast_channel(n, SMI_FLOAT, 0, 0, comm)
                for i in range(n):
                    v = yield from chan.bcast(
                        float(i) if smi.rank == 0 else None)
                    out.append(float(v))
            elif kind == "reduce":
                chan = smi.open_reduce_channel(n, SMI_FLOAT, SMI_ADD,
                                               0, 0, comm)
                for i in range(n):
                    v = yield from chan.reduce(float(smi.rank + i))
                    if smi.rank == 0:
                        out.append(float(v))
            else:  # scatter
                chan = smi.open_scatter_channel(n, SMI_FLOAT, 0, 0, comm)
                if smi.rank == 0:
                    vals = [float(i) for i in range(n * num_ranks)]
                    out = yield from chan.stream_root(vals)
                else:
                    for _ in range(n):
                        out.append(float((yield from chan.pop())))
            smi.store("out", [float(v) for v in out])
            smi.store("end", smi.cycle)

        prog.add_kernel(kernel, ranks="all", ops=[op])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    return build, num_ranks


@pytest.mark.parametrize("kind", ["bcast", "reduce", "scatter"])
def test_collective_sharded_equivalence(kind):
    build, num_ranks = _collective_build(kind)
    ref = _assert_sharded_equal(build, _shard_configs(2, 4))
    sharded = build(NOCTUA.with_(backend="sharded", shards=2))
    for rank in range(num_ranks):
        assert sharded.store(rank, "end") == ref.store(rank, "end")
        assert sharded.store(rank, "out") == ref.store(rank, "out")


def test_mixed_workload_sharded_equivalence():
    """p2p halo ring + bcast sharing the fabric, across a cut."""
    n_halo, n_bcast, num_ranks = 96, 32, 3

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)

        def kernel(smi):
            comm = smi.comm_world.sub(list(range(num_ranks)))
            if not comm.contains(smi.rank):
                return
                yield  # pragma: no cover
            right = (smi.rank + 1) % num_ranks
            left = (smi.rank - 1) % num_ranks
            data = np.full(n_halo, float(smi.rank), dtype=np.float32)

            def exchange():
                snd = smi.open_send_channel(n_halo, SMI_FLOAT, right, 1)
                yield from snd.push_vec(data, width=8)
                rcv = smi.open_recv_channel(n_halo, SMI_FLOAT, left, 1)
                halo = yield from rcv.pop_vec(n_halo, width=8)
                smi.store("halo", [float(v) for v in halo])

            smi.engine.spawn(exchange(), f"halo{smi.rank}")
            chan = smi.open_bcast_channel(n_bcast, SMI_FLOAT, 0, 0, comm)
            got = []
            for i in range(n_bcast):
                v = yield from chan.bcast(float(i) if smi.rank == 0 else None)
                got.append(float(v))
            smi.store("bcast", got)
            smi.store("end", smi.cycle)

        prog.add_kernel(
            kernel, ranks=list(range(num_ranks)),
            ops=[OpDecl("bcast", 0, SMI_FLOAT),
                 OpDecl("send", 1, SMI_FLOAT),
                 OpDecl("recv", 1, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref = _assert_sharded_equal(build, _shard_configs(2, 3))
    sharded = build(NOCTUA.with_(backend="sharded", shards=3))
    for rank in range(num_ranks):
        assert sharded.store(rank, "end") == ref.store(rank, "end")
        assert sharded.store(rank, "halo") == ref.store(rank, "halo")


def test_credited_p2p_sharded_equivalence():
    n, window, hops = 120, 2, 3

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        ops = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)]

        def sender(smi):
            ch = smi.open_credited_send_channel(n, SMI_INT, hops, 0,
                                                window_packets=window)
            for i in range(n):
                yield from smi.push(ch, i)

        def receiver(smi):
            ch = smi.open_credited_recv_channel(n, SMI_INT, 0, 0,
                                                window_packets=window)
            yield smi.wait(150)
            out = []
            for _ in range(n):
                out.append(int((yield from smi.pop(ch))))
            smi.store("out", out)
            smi.store("end", smi.cycle)

        prog.add_kernel(sender, rank=0, ops=ops)
        prog.add_kernel(receiver, rank=hops, ops=ops)
        res = prog.run(max_cycles=10_000_000)
        assert res.completed, res.reason
        return res

    ref = _assert_sharded_equal(build, _shard_configs(2, 4))
    sharded = build(NOCTUA.with_(backend="sharded", shards=2))
    assert sharded.store(hops, "out") == list(range(n))
    assert sharded.store(hops, "end") == ref.store(hops, "end")


def test_explicit_partition_and_unbalanced_cut():
    """A deliberately lopsided explicit cut stays cycle-exact."""
    n, hops = 256, 5

    def build(config, partition=None):
        prog = SMIProgram(noctua_bus(), config=config, partition=partition)
        data = np.arange(n, dtype=np.float32)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            yield from ch.pop_vec(n, width=8)
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref = build(NOCTUA)
    for lists in ([[0], [1, 2, 3, 4, 5, 6, 7]],
                  [[0, 2, 4, 6], [1, 3, 5, 7]],   # worst cut: every link
                  [[0, 1], [2, 3], [4, 5], [6, 7]]):
        cfg = NOCTUA.with_(backend="sharded", shards=len(lists))
        fast = build(cfg, partition=lists)
        assert fast.cycles == ref.cycles, lists
        assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine), lists


# ----------------------------------------------------------------------
# Process backend (forked workers, packed boundary records)
# ----------------------------------------------------------------------
#: Both boundary transports of the process backend: shared-memory rings
#: (self-paced mid-epoch exchange) and the coordinator pipe (PR-5 round
#: discipline over the packed codec).
TRANSPORTS = ("shm", "pipe")


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_process_backend_equivalence(transport):
    n, hops = 1024, 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        data = np.arange(n, dtype=np.float32)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            out = yield from ch.pop_vec(n, width=8)
            smi.store("sum", float(np.sum(out)))
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref = build(NOCTUA_DEEP)
    fast = build(NOCTUA_DEEP.with_(backend="process", shards=2,
                                   shard_transport=transport))
    assert fast.cycles == ref.cycles
    assert fast.store(hops, "end") == ref.store(hops, "end")
    assert fast.store(hops, "sum") == ref.store(hops, "sum")
    assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine)
    # Every worker reported its wall-clock phase breakdown.
    timing = fast.transport.shard_timing
    assert len(timing) == 2
    for t in timing:
        assert set(t) == {"compute_s", "serialize_s", "ipc_wait_s",
                          "inner_rounds", "outer_rounds"}
        assert t["outer_rounds"] > 0


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_process_backend_collective(transport):
    build, num_ranks = _collective_build("reduce", n=48)
    ref = build(NOCTUA)
    fast = build(NOCTUA.with_(backend="process", shards=2,
                              shard_transport=transport))
    assert fast.cycles == ref.cycles
    for rank in range(num_ranks):
        assert fast.store(rank, "end") == ref.store(rank, "end")
    assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_process_backend_tiny_rings_split_and_backlog():
    """A minimum-size ring forces record splitting and backlog retries.

    With 4 KiB rings a few-thousand-element stream cannot ship an
    epoch's batch in one record — it must split, fill the ring, backlog
    the remainder and retry across inner rounds — and the run must stay
    cycle-exact through all of it.
    """
    n, hops = 2048, 4

    def build(config):
        prog = SMIProgram(noctua_bus(), config=config)
        data = np.arange(n, dtype=np.float32)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            out = yield from ch.pop_vec(n, width=8)
            smi.store("sum", float(np.sum(out)))

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    ref = build(NOCTUA_DEEP)
    fast = build(NOCTUA_DEEP.with_(backend="process", shards=2,
                                   shard_transport="shm",
                                   shard_ring_bytes=4096))
    assert fast.cycles == ref.cycles
    assert fast.store(hops, "sum") == ref.store(hops, "sum")
    assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine)


# ----------------------------------------------------------------------
# Worker lifecycle: no forked process may outlive its run
# ----------------------------------------------------------------------
def _assert_no_live_workers():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        alive = [p for p in multiprocessing.active_children()
                 if p.name.startswith("smi-shard-")]
        if not alive:
            return
        time.sleep(0.01)
    raise AssertionError(f"leaked shard workers: {alive}")


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_no_worker_leak_on_kernel_exception(transport):
    """A kernel raising mid-run must not leave forked workers behind."""
    n, hops = 256, 4

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(np.zeros(n, dtype=np.float32), width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        yield from ch.pop_vec(64, width=8)
        raise RuntimeError("injected mid-run failure")

    prog = SMIProgram(noctua_bus(),
                      config=NOCTUA.with_(backend="process", shards=2,
                                          shard_transport=transport))
    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
    with pytest.raises(RuntimeError, match="injected mid-run failure"):
        prog.run(max_cycles=50_000_000)
    _assert_no_live_workers()


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_no_worker_leak_on_partial_construction(monkeypatch):
    """A handle failing to start must tear down the already-forked ones.

    Regression: handle construction used to run in a list comprehension
    *outside* the try/finally, so shard 0's forked worker leaked if
    shard 1's fork failed. Handles now enter an ExitStack one by one.
    """
    from repro.shard import backend as backend_mod

    real_init = backend_mod.ProcessHandle.__init__
    started = []

    def failing_init(self, runtime, ctx, transport="pipe"):
        if runtime.index == 1:
            raise OSError("injected fork failure")
        real_init(self, runtime, ctx, transport)
        started.append(self)

    monkeypatch.setattr(backend_mod.ProcessHandle, "__init__", failing_init)
    n, hops = 64, 4
    prog = SMIProgram(noctua_bus(),
                      config=NOCTUA.with_(backend="process", shards=2))

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(np.zeros(n, dtype=np.float32), width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        yield from ch.pop_vec(n, width=8)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
    with pytest.raises(OSError, match="injected fork failure"):
        prog.run(max_cycles=50_000_000)
    assert started, "shard 0's handle never started — test is vacuous"
    _assert_no_live_workers()


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_process_backend_deadlock_detected(transport):
    with pytest.raises(DeadlockError, match="Blocked processes"):
        _deadlocking_program(
            NOCTUA.with_(backend="process", shards=2,
                         shard_transport=transport)
        ).run(max_cycles=1_000_000)
    _assert_no_live_workers()


# ----------------------------------------------------------------------
# Termination semantics: deadlocks and max_cycles
# ----------------------------------------------------------------------
def _deadlocking_program(config):
    """Both ranks pop before pushing: the §3.3 cyclic dependency."""
    prog = SMIProgram(bus(2), config=config)
    ops = [OpDecl("send", 0, SMI_INT), OpDecl("recv", 1, SMI_INT)]

    def kernel(smi):
        peer = 1 - smi.rank
        r = smi.open_recv_channel(1, SMI_INT, peer, 1)
        s = smi.open_send_channel(1, SMI_INT, peer, 0)
        v = yield from smi.pop(r)     # blocks forever: nobody pushed yet
        yield from smi.push(s, v)

    prog.add_kernel(kernel, ranks="all", ops=ops)
    return prog


def test_sharded_deadlock_detected_like_sequential():
    with pytest.raises(DeadlockError, match="§3.3"):
        _deadlocking_program(NOCTUA).run(max_cycles=1_000_000)
    with pytest.raises(DeadlockError, match="Blocked processes"):
        _deadlocking_program(
            NOCTUA.with_(backend="sharded", shards=2)
        ).run(max_cycles=1_000_000)


def _run_truncated(config):
    """An 8-element stream whose sender then sleeps past the cycle cap."""
    prog = SMIProgram(bus(2), config=config)

    def snd(smi):
        ch = smi.open_send_channel(8, SMI_INT, 1, 0)
        for i in range(8):
            yield from smi.push(ch, i)
        yield smi.wait(10_000_000)  # outlives the cap

    def rcv(smi):
        ch = smi.open_recv_channel(8, SMI_INT, 0, 0)
        for _ in range(8):
            yield from smi.pop(ch)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(rcv, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    return prog.run(max_cycles=5_000)


def test_sharded_max_cycles():
    ref = _run_truncated(NOCTUA)
    fast = _run_truncated(NOCTUA.with_(backend="sharded", shards=2))
    # Truncated runs pin cycles and reason. Per-FIFO counters are NOT an
    # invariant at an arbitrary cap (they tally committed events, and
    # the planes commit different distances past it — sequential burst
    # vs per-flit already differ there); see docs/ARCHITECTURE.md.
    assert ref.reason == fast.reason == "max_cycles"
    assert ref.cycles == fast.cycles == 5_000


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
@pytest.mark.parametrize("transport", TRANSPORTS)
def test_process_backend_max_cycles(transport):
    ref = _run_truncated(NOCTUA)
    fast = _run_truncated(
        NOCTUA.with_(backend="process", shards=2,
                     shard_transport=transport))
    assert ref.reason == fast.reason == "max_cycles"
    assert ref.cycles == fast.cycles == 5_000
    _assert_no_live_workers()


def test_sharded_planner_stats_populated():
    """The merged transport facade reports cluster-wide planner counters."""
    from repro.simulation.stats import collect_planner_stats

    n, hops = 1024, 4
    prog = SMIProgram(noctua_bus(),
                      config=NOCTUA.with_(backend="sharded", shards=2))
    data = np.arange(n, dtype=np.float32)

    def snd(smi):
        ch = smi.open_send_channel(n, SMI_FLOAT, hops, 0)
        yield from ch.push_vec(data, width=8)

    def rcv(smi):
        ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
        yield from ch.pop_vec(n, width=8)

    prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
    prog.add_kernel(rcv, rank=hops, ops=[OpDecl("recv", 0, SMI_FLOAT)])
    res = prog.run(max_cycles=50_000_000)
    assert res.completed
    stats = collect_planner_stats(res.transport)
    assert stats.windows > 0 and stats.takes > 0


def test_sharded_on_ring_topology():
    """A ring cut into 2 shards has two boundary cables (4 directed)."""
    n = 128
    topo = ring(6)

    def build(config):
        prog = SMIProgram(topo, config=config)
        data = np.arange(n, dtype=np.float32)

        def snd(smi):
            ch = smi.open_send_channel(n, SMI_FLOAT, 3, 0)
            yield from ch.push_vec(data, width=8)

        def rcv(smi):
            ch = smi.open_recv_channel(n, SMI_FLOAT, 0, 0)
            yield from ch.pop_vec(n, width=8)
            smi.store("end", smi.cycle)

        prog.add_kernel(snd, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
        prog.add_kernel(rcv, rank=3, ops=[OpDecl("recv", 0, SMI_FLOAT)])
        res = prog.run(max_cycles=50_000_000)
        assert res.completed, res.reason
        return res

    part = partition_topology(topo, 2)
    assert len(part.cut) == 2
    ref = build(NOCTUA)
    fast = build(NOCTUA.with_(backend="sharded", shards=2))
    assert fast.cycles == ref.cycles
    assert _fifo_counts(fast.engine) == _fifo_counts(ref.engine)
