"""Unit tests for topology descriptions and builders."""

import pytest

from repro.core.errors import TopologyError
from repro.network.topology import (
    Connection,
    Topology,
    bus,
    noctua_bus,
    noctua_torus,
    ring,
    torus2d,
)


def test_bus_structure():
    top = bus(4)
    assert top.num_ranks == 4
    assert len(top.connections) == 3
    assert top.neighbors_of(0) == {1}
    assert top.neighbors_of(1) == {0, 2}
    assert top.is_connected()


def test_bus_hop_matrix_is_linear_distance():
    top = bus(8)
    hops = top.hop_matrix()
    for i in range(8):
        for j in range(8):
            assert hops[i][j] == abs(i - j)
    assert top.diameter() == 7


def test_ring_wraps():
    top = ring(6)
    assert len(top.connections) == 6
    assert top.neighbors_of(0) == {1, 5}
    assert top.diameter() == 3


def test_ring_requires_three_ranks():
    with pytest.raises(TopologyError):
        ring(2)


def test_noctua_torus_shape():
    top = noctua_torus()
    # 8 FPGAs, every one of the 4 QSFP ports wired (§5.1).
    assert top.num_ranks == 8
    assert len(top.connections) == 16  # 32 ports / 2
    for rank in range(8):
        assert top.interfaces_of(rank) == [0, 1, 2, 3]
    assert top.is_connected()
    # 2x4 torus diameter: <= 1 (rows) + 2 (cols) hops.
    assert top.diameter() <= 3


def test_torus_4x4_neighbor_count():
    top = torus2d(4, 4)
    for rank in range(16):
        assert len(top.neighbors_of(rank)) == 4


def test_torus_two_rows_has_parallel_links():
    # With 2 rows, north and south wrap to the same neighbour: the two
    # cables exist in parallel on distinct interfaces.
    top = torus2d(2, 2)
    for rank in range(4):
        assert top.interfaces_of(rank) == [0, 1, 2, 3]
        # Only 2 distinct neighbours (vertical + horizontal partner).
        assert len(top.neighbors_of(rank)) == 2


def test_torus_1xN_is_a_ring():
    top = torus2d(1, 5)
    assert top.num_ranks == 5
    for rank in range(5):
        assert len(top.neighbors_of(rank)) == 2


def test_peer_lookup_symmetry():
    top = noctua_torus()
    for rank in range(top.num_ranks):
        for iface in top.interfaces_of(rank):
            peer = top.peer(rank, iface)
            assert peer is not None
            back = top.peer(*peer)
            assert back == (rank, iface)


def test_unconnected_port_returns_none():
    top = bus(3)
    assert top.peer(0, 3) is None
    assert top.peer(0, 0) is None  # bus uses iface 1 downstream of rank 0


def test_duplicate_port_rejected():
    with pytest.raises(TopologyError, match="wired more than once"):
        Topology(3, [Connection((0, 0), (1, 0)), Connection((0, 0), (2, 0))])


def test_self_connection_rejected():
    with pytest.raises(TopologyError, match="same FPGA"):
        Topology(2, [Connection((0, 0), (0, 1))])


def test_out_of_range_rank_rejected():
    with pytest.raises(TopologyError, match="out of range"):
        Topology(2, [Connection((0, 0), (5, 0))])


def test_out_of_range_interface_rejected():
    with pytest.raises(TopologyError, match="interface"):
        Topology(2, [Connection((0, 9), (1, 0))], num_interfaces=4)


def test_too_many_ranks_rejected():
    with pytest.raises(TopologyError, match="256"):
        Topology(300, [])


def test_json_roundtrip(tmp_path):
    top = noctua_torus()
    path = tmp_path / "torus.json"
    top.to_json(path)
    loaded = Topology.from_json(path)
    assert loaded.num_ranks == top.num_ranks
    assert {str(c) for c in loaded.connections} == {str(c) for c in top.connections}


def test_from_json_string():
    text = bus(3).to_json()
    loaded = Topology.from_json(text)
    assert loaded.num_ranks == 3


def test_from_dict_malformed():
    with pytest.raises(TopologyError, match="malformed"):
        Topology.from_dict({"connections": []})


def test_from_text_parses_paper_format():
    text = """
    # FPGA wiring list (Fig. 8 style)
    0:0 - 1:0
    1:1 - 2:0
    """
    top = Topology.from_text(text)
    assert top.num_ranks == 3
    assert top.neighbors_of(1) == {0, 2}


def test_from_text_rejects_garbage():
    with pytest.raises(TopologyError, match="line 1"):
        Topology.from_text("zero to one")


def test_disconnected_topology_detected():
    top = Topology(4, [Connection((0, 0), (1, 0)), Connection((2, 0), (3, 0))])
    assert not top.is_connected()


def test_bus_and_torus_builders_used_in_paper():
    assert noctua_bus().num_ranks == 8
    assert noctua_bus().diameter() == 7
    assert noctua_torus().diameter() <= 3
