"""Checked predictions: the analytical perfmodel pinned to the simulator.

``perfmodel/streams.py`` and ``perfmodel/collectives.py`` price the
points the cycle simulator cannot reach (paper-scale sweeps) and the
macro-cruise fast-forward windows, so they must not drift from the
simulator they extend. This suite makes them *checked* predictions:

* **exact** on the paper's microbenchmarks — link-paced p2p streams at
  any size/hop-count/app-width, and the single-element bus-chain
  bcast/reduce latencies (the collective analogue of the Table 3
  latency microbenchmark);
* within a **documented bound** elsewhere — +-2 cycles for p2p sizes
  whose last packet lands off the poll alignment, +-4 cycles on the
  Fig. 10 bcast grid, 8% relative on the Fig. 11 reduce grid (credit
  tile boundaries interact with the combine pipeline).

``benchmarks/run_smoke.py`` records the same residuals in its headline
(``perfmodel_residual_{p2p,bcast,reduce}``) so drift shows up in the
perf trajectory too.
"""

import pytest

from repro.core.config import NOCTUA
from repro.core.datatypes import SMI_FLOAT
from repro.harness.runners import (
    measure_bcast_sim_us,
    measure_reduce_sim_us,
    measure_stream_sim,
)
from repro.network.topology import noctua_bus
from repro.perfmodel import bcast_cycles, p2p_stream, reduce_cycles


def _sim_collective_cycles(measure, n, num_ranks):
    us = measure(n, noctua_bus(), num_ranks, NOCTUA)
    return round(us / NOCTUA.cycles_to_us(1))


# ---------------------------------------------------------------------
# p2p streams: exact on link-paced streams
# ---------------------------------------------------------------------
@pytest.mark.parametrize("width", [1, 8])
@pytest.mark.parametrize("hops", [1, 2, 4])
@pytest.mark.parametrize("n", [1, 7, 14, 70, 1022])
def test_p2p_model_exact(n, hops, width):
    sim = measure_stream_sim(n, hops, SMI_FLOAT, NOCTUA, app_width=width)
    model = p2p_stream(n, SMI_FLOAT, hops, NOCTUA, app_width=width).cycles
    assert model == sim, (n, hops, width, sim, model)


@pytest.mark.parametrize("config", [
    NOCTUA.with_(endpoint_latency_cycles=20),
    NOCTUA.with_(link_latency_cycles=100),
    NOCTUA.with_(link_cycles_per_packet=4),
    NOCTUA.with_(read_burst=4),
], ids=["ep20", "lat100", "lcp4", "rb4"])
def test_p2p_model_exact_across_configs(config):
    """The formula tracks the config knobs, not just the NOCTUA numbers."""
    for n, hops, width in ((1, 1, 8), (14, 1, 8), (70, 2, 8), (1022, 1, 1)):
        sim = measure_stream_sim(n, hops, SMI_FLOAT, config, app_width=width)
        model = p2p_stream(n, SMI_FLOAT, hops, config,
                           app_width=width).cycles
        assert model == sim, (n, hops, width, sim, model)


@pytest.mark.parametrize("n", [8, 15, 63, 256, 1023])
def test_p2p_model_poll_alignment_bound(n):
    """Sizes whose last packet lands off the CKS poll alignment drift by
    at most 2 cycles (the model cannot see the R-burst phase)."""
    sim = measure_stream_sim(n, 1, SMI_FLOAT, NOCTUA)
    model = p2p_stream(n, SMI_FLOAT, 1, NOCTUA, app_width=8).cycles
    assert abs(model - sim) <= 2, (n, sim, model)


# ---------------------------------------------------------------------
# Collectives: exact single-element chain latency, bounded on the grid
# ---------------------------------------------------------------------
@pytest.mark.parametrize("num_ranks", [2, 3, 4, 5])
def test_bcast_model_exact_single_element(num_ranks):
    sim = _sim_collective_cycles(measure_bcast_sim_us, 1, num_ranks)
    model = bcast_cycles(1, SMI_FLOAT, num_ranks, 1.0, NOCTUA)
    assert model == sim, (num_ranks, sim, model)


@pytest.mark.parametrize("num_ranks", [2, 3, 4, 5])
def test_reduce_model_exact_single_element(num_ranks):
    sim = _sim_collective_cycles(measure_reduce_sim_us, 1, num_ranks)
    model = reduce_cycles(1, SMI_FLOAT, num_ranks, 1.0, NOCTUA)
    assert model == sim, (num_ranks, sim, model)


@pytest.mark.parametrize("n", [4, 16, 64, 256, 1024])
def test_bcast_model_bound_on_grid(n):
    sim = _sim_collective_cycles(measure_bcast_sim_us, n, 4)
    model = bcast_cycles(n, SMI_FLOAT, 4, 1.0, NOCTUA)
    assert abs(model - sim) <= 4, (n, sim, model)


@pytest.mark.parametrize("n,num_ranks", [
    (64, 2), (64, 4), (128, 3), (192, 4), (256, 4), (512, 4),
])
def test_reduce_model_bound_on_grid(n, num_ranks):
    sim = _sim_collective_cycles(measure_reduce_sim_us, n, num_ranks)
    model = reduce_cycles(n, SMI_FLOAT, num_ranks, 1.0, NOCTUA)
    assert model == pytest.approx(sim, rel=0.08), (n, num_ranks, sim, model)
