"""Tests for the GESUMMV application (§5.4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.blas import gesummv_reference
from repro.apps.gesummv import GesummvModel, run_distributed_sim, run_single_sim
from repro.core.config import MemoryConfig


def _random_problem(n, seed=0, m=None):
    rng = np.random.default_rng(seed)
    m = m or n
    A = rng.normal(size=(n, m)).astype(np.float32)
    B = rng.normal(size=(n, m)).astype(np.float32)
    x = rng.normal(size=m).astype(np.float32)
    return A, B, x


def test_single_fpga_matches_numpy():
    A, B, x = _random_problem(48, seed=1)
    y, _us = run_single_sim(2.0, -1.0, A, B, x)
    np.testing.assert_allclose(y, gesummv_reference(2.0, -1.0, A, B, x),
                               rtol=1e-4)


def test_distributed_matches_numpy():
    A, B, x = _random_problem(48, seed=2)
    y, _us = run_distributed_sim(0.5, 3.0, A, B, x)
    np.testing.assert_allclose(y, gesummv_reference(0.5, 3.0, A, B, x),
                               rtol=1e-4)


def test_rectangular_matrices():
    A, B, x = _random_problem(24, seed=3, m=56)
    y, _us = run_distributed_sim(1.0, 1.0, A, B, x)
    np.testing.assert_allclose(y, gesummv_reference(1.0, 1.0, A, B, x),
                               rtol=1e-4)


@settings(deadline=None, max_examples=8)
@given(
    n=st.integers(min_value=2, max_value=40),
    alpha=st.floats(-3, 3, allow_nan=False),
    beta=st.floats(-3, 3, allow_nan=False),
    seed=st.integers(0, 1000),
)
def test_property_distributed_equals_reference(n, alpha, beta, seed):
    A, B, x = _random_problem(n, seed=seed)
    y, _us = run_distributed_sim(alpha, beta, A, B, x)
    ref = gesummv_reference(alpha, beta, A, B, x)
    np.testing.assert_allclose(y, ref, rtol=1e-3, atol=1e-4)


def test_single_and_distributed_agree():
    A, B, x = _random_problem(32, seed=4)
    y1, _ = run_single_sim(1.0, 2.0, A, B, x)
    y2, _ = run_distributed_sim(1.0, 2.0, A, B, x)
    np.testing.assert_allclose(y1, y2, rtol=1e-5)


def test_distributed_speedup_when_memory_bound():
    # Long rows => row streaming dominates => ~2x from doubled bandwidth
    # (enough rows that the one-off SMI channel latency amortises).
    A, B, x = _random_problem(192, seed=5, m=512)
    _, t_single = run_single_sim(1.0, 1.0, A, B, x)
    _, t_dist = run_distributed_sim(1.0, 1.0, A, B, x)
    assert t_single / t_dist > 1.6


# ----------------------------------------------------------------------
# Flow model (Fig. 13)
# ----------------------------------------------------------------------
def test_model_square_times_match_paper_anchors():
    model = GesummvModel()
    # Paper-annotated distributed times (ms): 0.7 / 2.8 / 10.8 / 51.1.
    assert model.distributed_time_s(2048, 2048) * 1e3 == pytest.approx(0.7, rel=0.05)
    assert model.distributed_time_s(4096, 4096) * 1e3 == pytest.approx(2.8, rel=0.05)
    assert model.distributed_time_s(8192, 8192) * 1e3 == pytest.approx(10.8, rel=0.1)
    assert model.distributed_time_s(16384, 16384) * 1e3 == pytest.approx(51.1, rel=0.15)


def test_model_speedup_is_two():
    model = GesummvModel()
    for n, m in [(2048, 2048), (2048, 8192), (16384, 2048)]:
        assert model.speedup(n, m) == pytest.approx(2.0, rel=0.05)


def test_model_scales_with_bandwidth():
    fast = GesummvModel(memory=MemoryConfig(gesummv_stream_bandwidth_Bps=48e9))
    slow = GesummvModel(memory=MemoryConfig(gesummv_stream_bandwidth_Bps=12e9))
    assert fast.distributed_time_s(4096, 4096) < slow.distributed_time_s(4096, 4096)


def test_model_rectangular_symmetry():
    model = GesummvModel()
    assert model.distributed_time_s(2048, 8192) == pytest.approx(
        model.distributed_time_s(8192, 2048), rel=1e-6
    )
