"""Unit tests for op metadata declarations and plan validation."""

import pytest

from repro import SMI_ADD, SMI_FLOAT, SMI_INT
from repro.codegen.metadata import OpDecl, ProgramPlan, RankPlan
from repro.core.errors import CodegenError


def test_opdecl_endpoint_requirements():
    send = OpDecl("send", 0, SMI_INT)
    assert send.needs_send_endpoint and not send.needs_recv_endpoint
    recv = OpDecl("recv", 0, SMI_INT)
    assert recv.needs_recv_endpoint and not recv.needs_send_endpoint
    bc = OpDecl("bcast", 1, SMI_FLOAT)
    assert bc.needs_send_endpoint and bc.needs_recv_endpoint
    assert bc.is_collective and not send.is_collective


def test_opdecl_validation():
    with pytest.raises(CodegenError, match="unknown op kind"):
        OpDecl("teleport", 0, SMI_INT)
    with pytest.raises(CodegenError, match="1-byte"):
        OpDecl("send", 300, SMI_INT)
    with pytest.raises(CodegenError, match="reduce_op"):
        OpDecl("reduce", 0, SMI_INT)
    with pytest.raises(CodegenError, match="must not declare"):
        OpDecl("send", 0, SMI_INT, reduce_op=SMI_ADD)
    with pytest.raises(CodegenError, match="buffer_depth"):
        OpDecl("send", 0, SMI_INT, buffer_depth=0)


def test_rankplan_allows_send_and_recv_on_same_port():
    plan = RankPlan(0, [OpDecl("send", 1, SMI_INT), OpDecl("recv", 1, SMI_INT)])
    plan.validate()  # Listing-3 style halo exchange: legal


def test_rankplan_rejects_duplicate_send():
    plan = RankPlan(0, [OpDecl("send", 1, SMI_INT), OpDecl("send", 1, SMI_INT)])
    with pytest.raises(CodegenError, match="duplicate"):
        plan.validate()


def test_rankplan_rejects_collective_port_sharing():
    plan = RankPlan(0, [OpDecl("bcast", 2, SMI_INT), OpDecl("send", 2, SMI_INT)])
    with pytest.raises(CodegenError, match="collective"):
        plan.validate()
    plan = RankPlan(0, [OpDecl("send", 2, SMI_INT), OpDecl("bcast", 2, SMI_INT)])
    with pytest.raises(CodegenError, match="exclusive"):
        plan.validate()


def test_rankplan_rejects_two_collectives_one_port():
    plan = RankPlan(0, [
        OpDecl("bcast", 0, SMI_INT),
        OpDecl("reduce", 0, SMI_FLOAT, reduce_op=SMI_ADD),
    ])
    with pytest.raises(CodegenError):
        plan.validate()


def test_rankplan_rejects_conflicting_dtypes_on_port():
    plan = RankPlan(0, [OpDecl("send", 3, SMI_INT), OpDecl("recv", 3, SMI_FLOAT)])
    with pytest.raises(CodegenError, match="conflicting"):
        plan.validate()


def test_rankplan_port_queries():
    plan = RankPlan(0, [
        OpDecl("send", 5, SMI_INT),
        OpDecl("recv", 2, SMI_INT),
        OpDecl("gather", 9, SMI_FLOAT),
    ])
    assert plan.ports == [2, 5, 9]
    assert set(plan.send_ports()) == {5, 9}
    assert set(plan.recv_ports()) == {2, 9}
    assert [op.kind for op in plan.collective_ops()] == ["gather"]


def test_programplan_add_and_validate():
    plan = ProgramPlan(4)
    plan.add(0, OpDecl("send", 0, SMI_INT))
    plan.add(1, OpDecl("recv", 0, SMI_INT))
    plan.validate()
    assert plan.total_ops() == 2
    with pytest.raises(CodegenError, match="out of range"):
        plan.add(9, OpDecl("send", 0, SMI_INT))
