"""Packed boundary wire format and shared-memory rings (repro.shard.wire).

The process backend's correctness rests on this layer being *faithful*:
every batch that crosses a ring or the control pipe must come back
bit-identical — packets (payloads included, for every registered
datatype), visibility cycles, and the horizon/slack/floor bounds the
epoch protocol computes bounds from. These tests pin the codec round
trip, the pickle fallback for non-fast-path items, record splitting,
ring wraparound and full-ring refusal, and the fabric lifecycle.
"""

import numpy as np
import pytest

from repro.core.datatypes import DATATYPES, PACKET_BYTES
from repro.core.errors import SimulationError
from repro.network.packet import OpType, Packet
from repro.shard.proxy import AckBatch, ShipBatch
from repro.shard.wire import (
    KIND_SHIP,
    KIND_SHIP_PICKLE,
    RECORD_HEADER,
    ShmFabric,
    ShmRing,
    decode_exchange,
    encode_exchange,
    pack_ack_records,
    pack_ship_records,
    unpack_record,
)

KEYS = [(0, 0), (0, 1), (3, 0)]
KEY_IDS = {key: i for i, key in enumerate(KEYS)}


def _data_packet(dtype, seed=0):
    count = min(dtype.elements_per_packet, 5) - (seed % 2)
    rng = np.random.default_rng(seed)
    if dtype.np_dtype.kind == "f":
        payload = rng.standard_normal(count).astype(dtype.np_dtype)
    else:
        payload = rng.integers(-100, 100, count).astype(dtype.np_dtype)
    return Packet(src=seed % 8, dst=(seed + 1) % 8, port=seed % 3,
                  op=OpType.DATA, count=count, payload=payload, dtype=dtype)


def _control_packet(op, seed=0):
    return Packet(src=seed % 8, dst=(seed + 3) % 8, port=1, op=op)


def _assert_packets_equal(a, b):
    assert a.encode() == b.encode()
    assert (a.dtype.name if a.dtype else None) == \
        (b.dtype.name if b.dtype else None)
    if a.dtype is not None and a.count:
        np.testing.assert_array_equal(a.payload[: a.count],
                                      b.payload[: b.count])


def _assert_ship_equal(a, b):
    assert a.key == b.key
    assert a.cycles == b.cycles
    assert a.horizon == b.horizon
    assert a.slack == b.slack
    assert len(a.items) == len(b.items)
    for pa, pb in zip(a.items, b.items):
        _assert_packets_equal(pa, pb)


# ----------------------------------------------------------------------
# Record codec round trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(DATATYPES))
def test_ship_roundtrip_every_datatype(name):
    dtype = DATATYPES[name]
    items = tuple(_data_packet(dtype, seed) for seed in range(4))
    ship = ShipBatch((0, 1), items, (10, 11, 13, 20), horizon=37, slack=19)
    record = ship.pack(KEY_IDS[(0, 1)])
    assert RECORD_HEADER.unpack_from(record)[0] == KIND_SHIP
    _assert_ship_equal(ship, ShipBatch.unpack(record, KEYS))


def test_ship_roundtrip_control_packets():
    """CREDIT/SYNC packets (count 0, no dtype) take the fast path."""
    items = tuple(_control_packet(op, seed)
                  for seed, op in enumerate((OpType.CREDIT, OpType.DATA,
                                             OpType.PING, OpType.PONG)))
    ship = ShipBatch((3, 0), items, (5, 5, 6, 9), horizon=12)
    record = ship.pack(KEY_IDS[(3, 0)])
    assert RECORD_HEADER.unpack_from(record)[0] == KIND_SHIP
    _assert_ship_equal(ship, ShipBatch.unpack(record, KEYS))


def test_empty_ship_roundtrip():
    ship = ShipBatch((0, 0), (), (), horizon=64, slack=128)
    got = ShipBatch.unpack(ship.pack(0), KEYS)
    _assert_ship_equal(ship, got)


def test_ack_roundtrip():
    ack = AckBatch((0, 1), tuple(range(100, 164)), floor=163)
    got = AckBatch.unpack(ack.pack(KEY_IDS[(0, 1)]), KEYS)
    assert got.key == ack.key
    assert got.cycles == ack.cycles
    assert got.floor == ack.floor


def test_pickle_fallback_for_non_packet_items():
    """Anything but plain registered-dtype Packets survives via pickle."""
    items = ({"not": "a packet"}, (1, 2, 3))
    ship = ShipBatch((0, 0), items, (7, 8), horizon=20, slack=3)
    record = ship.pack(0)
    assert RECORD_HEADER.unpack_from(record)[0] == KIND_SHIP_PICKLE
    got = ShipBatch.unpack(record, KEYS)
    assert got.items == items
    assert got.cycles == ship.cycles
    assert got.horizon == 20 and got.slack == 3


def test_unpack_kind_mismatch_raises():
    ship = ShipBatch((0, 0), (), (), horizon=1)
    with pytest.raises(TypeError, match="not an ack"):
        AckBatch.unpack(ship.pack(0), KEYS)
    ack = AckBatch((0, 0), (), floor=1)
    with pytest.raises(TypeError, match="not a ship"):
        ShipBatch.unpack(ack.pack(0), KEYS)


def test_exchange_blob_roundtrip():
    dtype = DATATYPES["SMI_INT"]
    ships = {
        (0, 0): ShipBatch((0, 0), (_data_packet(dtype, 1),), (4,), 9, 2),
        (0, 1): ShipBatch((0, 1), (), (), 11),
    }
    acks = {(3, 0): AckBatch((3, 0), (5, 6), 6)}
    blob = encode_exchange(ships, acks, KEY_IDS)
    got_ships, got_acks = decode_exchange(blob, KEYS)
    assert set(got_ships) == set(ships) and set(got_acks) == set(acks)
    for key in ships:
        _assert_ship_equal(ships[key], got_ships[key])
    assert got_acks[(3, 0)].cycles == (5, 6)
    assert decode_exchange(b"", KEYS) == ({}, {})


# ----------------------------------------------------------------------
# Record splitting
# ----------------------------------------------------------------------
def test_ship_record_splitting_roundtrip():
    dtype = DATATYPES["SMI_FLOAT"]
    items = tuple(_data_packet(dtype, seed) for seed in range(32))
    ship = ShipBatch((0, 1), items, tuple(range(32)), horizon=99, slack=7)
    whole = ship.pack(1)
    max_bytes = len(whole) // 3
    records = pack_ship_records(1, ship, max_bytes)
    assert len(records) > 1
    assert all(len(r) <= max_bytes for r, _ in records)
    assert sum(count for _, count in records) == 32
    rebuilt_items, rebuilt_cycles = [], []
    segments = [ShipBatch.unpack(record, KEYS) for record, _ in records]
    for i, seg in enumerate(segments):
        assert seg.slack == 7
        # A segment may only promise up to the next segment's earliest
        # cycle — a backlogged tail must never be outrun by its head's
        # published horizon.
        if i + 1 < len(segments):
            assert seg.horizon <= segments[i + 1].cycles[0]
        rebuilt_items.extend(seg.items)
        rebuilt_cycles.extend(seg.cycles)
    assert segments[-1].horizon == 99  # final segment restores the bound
    _assert_ship_equal(ship, ShipBatch((0, 1), tuple(rebuilt_items),
                                       tuple(rebuilt_cycles), 99, 7))


def test_ack_record_splitting_roundtrip():
    ack = AckBatch((0, 0), tuple(range(64)), floor=70)
    records = pack_ack_records(0, ack, max_bytes=128)
    assert len(records) > 1
    assert sum(count for _, count in records) == 64
    cycles = []
    segments = [AckBatch.unpack(record, KEYS) for record, _ in records]
    for i, seg in enumerate(segments):
        if i + 1 < len(segments):
            assert seg.floor < segments[i + 1].cycles[0]
        cycles.extend(seg.cycles)
    assert segments[-1].floor == 70  # final segment restores the bound
    assert tuple(cycles) == ack.cycles


def test_unsplittable_record_raises():
    """A single item that cannot fit the ring is a hard config error."""
    ship = ShipBatch((0, 0), ({"blob": "x" * 4096},), (1,), horizon=2)
    with pytest.raises(SimulationError, match="shard_ring_bytes"):
        pack_ship_records(0, ship, max_bytes=256)


# ----------------------------------------------------------------------
# Shared-memory rings
# ----------------------------------------------------------------------
def test_ring_wraparound_preserves_records():
    """Records crossing the physical end of the buffer come back intact."""
    buf = bytearray(ShmRing.CTRL_BYTES + 64)
    ring = ShmRing(memoryview(buf), 0, 64)
    payloads = [bytes([i]) * (11 + (i * 7) % 23) for i in range(64)]
    popped = []
    pending = list(payloads)
    while pending or popped != payloads:
        while pending and ring.try_push(pending[0]):
            pending.pop(0)
        record = ring.try_pop()
        assert record is not None, "ring stuck with records pending"
        popped.append(record)
    assert popped == payloads
    assert ring.try_pop() is None


def test_ring_full_refuses_without_corruption():
    buf = bytearray(ShmRing.CTRL_BYTES + 32)
    ring = ShmRing(memoryview(buf), 0, 32)
    assert ring.record_capacity == 28
    assert ring.try_push(b"a" * 20)
    assert not ring.try_push(b"b" * 20)   # 4 + 20 does not fit the rest
    assert not ring.try_push(b"c" * 29)   # never fits at all
    assert ring.try_pop() == b"a" * 20
    assert ring.try_push(b"b" * 28)       # exactly record_capacity
    assert ring.try_pop() == b"b" * 28
    assert ring.try_pop() is None


def test_fabric_rings_are_independent_and_closeable():
    fabric = ShmFabric(KEYS, ring_bytes=4096)
    try:
        assert fabric.keys_by_id == sorted(KEYS)
        assert fabric.key_ids[(0, 0)] == 0
        fabric.ship_rings[(0, 0)].try_push(b"ship00")
        fabric.ack_rings[(0, 0)].try_push(b"ack00")
        fabric.ship_rings[(3, 0)].try_push(b"ship30")
        assert fabric.ship_rings[(0, 1)].try_pop() is None
        assert fabric.ship_rings[(0, 0)].try_pop() == b"ship00"
        assert fabric.ack_rings[(0, 0)].try_pop() == b"ack00"
        assert fabric.ship_rings[(3, 0)].try_pop() == b"ship30"
    finally:
        fabric.close()  # must not raise BufferError (views released)
