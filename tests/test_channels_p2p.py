"""Integration tests: point-to-point transient channels end to end (§3.1).

These run full programs on the cycle simulator: application kernels,
endpoint FIFOs, CKS/CKR communication kernels, routing tables and links.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    NOCTUA,
    SMI_DOUBLE,
    SMI_FLOAT,
    SMI_INT,
    ChannelError,
    MessageOverrunError,
    SMIProgram,
    TypeMismatchError,
    bus,
    noctua_torus,
    torus2d,
)
from repro.codegen.metadata import OpDecl


def _pipe(topology, n, src, dst, dtype=SMI_INT, port=0, payload=None,
          config=NOCTUA, max_cycles=2_000_000):
    """Build and run a src->dst stream of n elements; return (result, data)."""
    prog = SMIProgram(topology, config=config)
    data = payload if payload is not None else list(range(n))

    def sender(smi):
        ch = smi.open_send_channel(n, dtype, dst, port)
        for v in data:
            yield from smi.push(ch, v)

    def receiver(smi):
        ch = smi.open_recv_channel(n, dtype, src, port)
        out = []
        for _ in range(n):
            v = yield from smi.pop(ch)
            out.append(v)
        smi.store("out", out)

    prog.add_kernel(sender, rank=src,
                    ops=[OpDecl("send", port, dtype)])
    prog.add_kernel(receiver, rank=dst,
                    ops=[OpDecl("recv", port, dtype)])
    res = prog.run(max_cycles=max_cycles)
    assert res.completed, res.reason
    return res, res.store(dst, "out")


def test_one_hop_delivery_in_order():
    res, out = _pipe(bus(2), 40, 0, 1)
    assert [int(v) for v in out] == list(range(40))


def test_multi_hop_delivery_bus():
    # 0 -> 4 over the linear bus: 4 hops of store-and-forward CK routing.
    res, out = _pipe(bus(8), 25, 0, 4)
    assert [int(v) for v in out] == list(range(25))
    assert res.routes.hops(0, 4) == 4


def test_seven_hop_delivery():
    res, out = _pipe(bus(8), 10, 0, 7)
    assert [int(v) for v in out] == list(range(10))
    assert res.routes.hops(0, 7) == 7


def test_torus_delivery():
    res, out = _pipe(noctua_torus(), 30, 1, 6)
    assert [int(v) for v in out] == list(range(30))


def test_reverse_direction():
    res, out = _pipe(bus(4), 15, 3, 0)
    assert [int(v) for v in out] == list(range(15))


def test_float_payload():
    data = [0.5 * i for i in range(21)]
    _, out = _pipe(bus(2), 21, 0, 1, dtype=SMI_FLOAT, payload=data)
    np.testing.assert_allclose(out, data)


def test_double_payload_fewer_elements_per_packet():
    data = [1e-3 * i for i in range(10)]
    _, out = _pipe(bus(2), 10, 0, 1, dtype=SMI_DOUBLE, payload=data)
    np.testing.assert_allclose(out, data)


def test_non_multiple_of_packet_size():
    # 7 int32 per packet: 20 elements = 2 full + 1 partial packet.
    _, out = _pipe(bus(2), 20, 0, 1)
    assert [int(v) for v in out] == list(range(20))


def test_single_element_message():
    _, out = _pipe(bus(2), 1, 0, 1)
    assert [int(v) for v in out] == [0]


def test_self_send_loopback():
    """A rank can stream to itself using matching ports (§3.1.1)."""
    prog = SMIProgram(bus(2))
    n = 12

    def kernel(smi):
        chs = smi.open_send_channel(n, SMI_INT, 0, 0)
        chr_ = smi.open_recv_channel(n, SMI_INT, 0, 0)
        for i in range(n):
            yield from smi.push(chs, i)
        out = []
        for _ in range(n):
            v = yield from smi.pop(chr_)
            out.append(int(v))
        smi.store("out", out)

    prog.add_kernel(kernel, rank=0, ops=[
        OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)
    ])
    res = prog.run(max_cycles=200_000)
    assert res.completed
    assert res.store(0, "out") == list(range(n))


def test_two_parallel_channels_distinct_ports():
    """Ports operate fully in parallel (§2.2)."""
    prog = SMIProgram(bus(3))
    n = 30

    def sender(smi):
        a = smi.open_send_channel(n, SMI_INT, 1, 0)
        b = smi.open_send_channel(n, SMI_INT, 2, 1)
        for i in range(n):
            yield from smi.push(a, i)
            yield from smi.push(b, 100 + i)

    def make_receiver(port, src):
        def receiver(smi):
            ch = smi.open_recv_channel(n, SMI_INT, src, port)
            out = []
            for _ in range(n):
                v = yield from smi.pop(ch)
                out.append(int(v))
            smi.store("out", out)

        return receiver

    prog.add_kernel(sender, rank=0, ops=[
        OpDecl("send", 0, SMI_INT), OpDecl("send", 1, SMI_INT)
    ])
    prog.add_kernel(make_receiver(0, 0), rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    prog.add_kernel(make_receiver(1, 0), rank=2, ops=[OpDecl("recv", 1, SMI_INT)])
    res = prog.run(max_cycles=500_000)
    assert res.completed
    assert res.store(1, "out") == list(range(n))
    assert res.store(2, "out") == [100 + i for i in range(n)]


def test_bidirectional_exchange_same_port():
    """Two ranks exchange messages on the same port simultaneously, like
    the stencil's halo exchange (Listing 3)."""
    prog = SMIProgram(bus(2))
    n = 20

    def make_kernel(me, other):
        def kernel(smi):
            chs = smi.open_send_channel(n, SMI_INT, other, 0)
            chr_ = smi.open_recv_channel(n, SMI_INT, other, 0)
            out = []
            for i in range(n):
                yield from smi.push(chs, me * 1000 + i)
            for _ in range(n):
                v = yield from smi.pop(chr_)
                out.append(int(v))
            smi.store("out", out)

        return kernel

    for me, other in ((0, 1), (1, 0)):
        prog.add_kernel(make_kernel(me, other), rank=me, name=f"k{me}", ops=[
            OpDecl("send", 0, SMI_INT), OpDecl("recv", 0, SMI_INT)
        ])
    res = prog.run(max_cycles=500_000)
    assert res.completed
    assert res.store(0, "out") == [1000 + i for i in range(n)]
    assert res.store(1, "out") == [0 + i for i in range(n)]


def test_push_beyond_count_raises():
    prog = SMIProgram(bus(2))

    def sender(smi):
        ch = smi.open_send_channel(2, SMI_INT, 1, 0)
        for i in range(3):
            yield from smi.push(ch, i)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    with pytest.raises(MessageOverrunError):
        prog.run(max_cycles=10_000)


def test_pop_beyond_count_raises():
    prog = SMIProgram(bus(2))

    def sender(smi):
        ch = smi.open_send_channel(2, SMI_INT, 1, 0)
        for i in range(2):
            yield from smi.push(ch, i)

    def receiver(smi):
        ch = smi.open_recv_channel(2, SMI_INT, 0, 0)
        for _ in range(3):
            yield from smi.pop(ch)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    with pytest.raises(MessageOverrunError):
        prog.run(max_cycles=100_000)


def test_type_mismatch_detected_at_receiver():
    prog = SMIProgram(bus(2))

    def sender(smi):
        ch = smi.open_send_channel(7, SMI_FLOAT, 1, 0)
        for i in range(7):
            yield from smi.push(ch, float(i))

    def receiver(smi):
        ch = smi.open_recv_channel(7, SMI_INT, 0, 0)  # wrong type
        yield from smi.pop(ch)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_FLOAT)])
    prog.add_kernel(receiver, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    with pytest.raises(TypeMismatchError):
        prog.run(max_cycles=100_000)


def test_vector_push_pop_roundtrip():
    prog = SMIProgram(bus(2))
    n = 64
    data = np.arange(n, dtype=np.int32) * 3

    def sender(smi):
        ch = smi.open_send_channel(n, SMI_INT, 1, 0)
        yield from ch.push_vec(data, width=8)

    def receiver(smi):
        ch = smi.open_recv_channel(n, SMI_INT, 0, 0)
        out = yield from ch.pop_vec(n, width=8)
        smi.store("out", out)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    prog.add_kernel(receiver, rank=1, ops=[OpDecl("recv", 0, SMI_INT)])
    res = prog.run(max_cycles=200_000)
    assert res.completed
    np.testing.assert_array_equal(res.store(1, "out"), data)


def test_undeclared_port_raises():
    prog = SMIProgram(bus(2))

    def sender(smi):
        ch = smi.open_send_channel(1, SMI_INT, 1, 9)  # port 9 undeclared
        yield from smi.push(ch, 1)

    prog.add_kernel(sender, rank=0, ops=[OpDecl("send", 0, SMI_INT)])
    with pytest.raises(Exception, match="port 9"):
        prog.run(max_cycles=10_000)


@settings(deadline=None, max_examples=15)
@given(
    n=st.integers(min_value=1, max_value=80),
    src=st.integers(min_value=0, max_value=7),
    dst=st.integers(min_value=0, max_value=7),
)
def test_property_any_pair_any_size_delivers_in_order(n, src, dst):
    """Property: every (src, dst, n) combination on the torus delivers the
    exact element sequence, including self-sends."""
    _, out = _pipe(torus2d(2, 4), n, src, dst) if src != dst else (None, None)
    if src == dst:
        return  # covered by the loopback test; sender/receiver share a rank
    assert [int(v) for v in out] == list(range(n))
